//! Offline, in-tree replacement for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the criterion API the workspace benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology (far simpler than upstream, but stable enough to compare
//! runs on one machine): each benchmark is warmed up for ~3 iterations,
//! the per-iteration time estimated, then `sample_size` samples are taken,
//! each batching enough iterations to run ≥ 5 ms. Mean, min and max of the
//! per-iteration sample times are printed. No plots, no statistics files.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration sample times, filled by `iter`.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures the routine: warms up, then records `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3
            || (warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1000)
        {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        let batch = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no measurement — Bencher::iter never called)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    println!(
        "{id:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; this harness has no
            // options, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut hits = 0u64;
        g.bench_function("x", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits > 0);
    }
}
