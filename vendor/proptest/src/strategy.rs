//! Value-generation strategies (subset of `proptest::strategy` +
//! `proptest::arbitrary`).

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// A recipe for generating random values of type `Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from an RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Generates an arbitrary value of a primitive type (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitive types with a full-domain uniform distribution.
pub trait Arbitrary: Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_map_and_union() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = (2u32..6, 0u8..4).prop_map(|(a, b)| a as u64 + b as u64);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v));
        }
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..50 {
            seen[u.generate(&mut rng) as usize - 1] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = any::<bool>();
        let trues = (0..100).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 20 && trues < 80);
    }
}
