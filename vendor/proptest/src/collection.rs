//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// Generates a `Vec` whose length is drawn from `len` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = if self.len.is_empty() {
            self.len.start
        } else {
            rng.random_range(self.len.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = vec(0u32..5, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut rng = StdRng::seed_from_u64(12);
        let s = vec((0u32..8, vec(0u32..8, 0..3)), 0..8);
        let v = s.generate(&mut rng);
        assert!(v.len() < 8);
    }
}
