//! Test execution plumbing (`proptest::test_runner`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Configuration for a `proptest!` block, mirroring the fields the
/// workspace uses from `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the cases of one property: owns the RNG.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded deterministically from the
    /// property name (XORed with `PROPTEST_SEED` if that env var is set, so
    /// CI can explore different regions of the input space).
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        let mut seed = h.finish();
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                seed ^= extra;
            }
        }
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The RNG for drawing case inputs.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
