//! Offline, in-tree replacement for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of the proptest API the workspace uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just`/`any` strategies,
//! [`collection::vec`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   panic message but is not minimised.
//! * **Deterministic seeding.** Each property's RNG is seeded from a hash of
//!   the test name (plus `PROPTEST_SEED` if set), so runs are reproducible
//!   by default.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-based test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its generated inputs reported) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Builds a [`strategy::Union`] choosing uniformly among the given
/// strategies (all must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property-based tests. Each `fn name(arg in strategy, ...) {...}`
/// item becomes a `#[test]` running `cases` random instantiations of the
/// body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..config.cases {
                let inputs = ($($crate::strategy::Strategy::generate(
                    &($strat),
                    runner.rng(),
                )),+ ,);
                let debug_inputs = format!("{:?}", &inputs);
                let ($($arg),+ ,) = inputs;
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        debug_inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
