//! Concrete generators (`rand::rngs`).

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna), seeded by
/// expanding a 64-bit seed through SplitMix64 as the xoshiro authors
/// recommend. Not bit-compatible with upstream `rand`'s `StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one fixed point of xoshiro; SplitMix64 cannot
        // produce four zero words from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_sequence_from_splitmix_seed() {
        // First outputs for seed 0 — pinned so the generator can never drift
        // silently (every golden number in the workspace depends on it).
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
