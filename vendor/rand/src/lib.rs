//! Offline, in-tree replacement for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the subset of the `rand` 0.9 API the workspace actually uses is
//! re-implemented here behind the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`, `rand::seq::*`).
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64.
//! It is a high-quality, deterministic PRNG, but it is **not** bit-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`: any golden numbers derived
//! from specific seeds differ from what the upstream crate would produce.
//! Within this repository the vendored generator is canonical — all tests and
//! recorded experiment outputs are derived from it.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A source of random 32/64-bit words. Mirror of `rand_core::RngCore`
/// (infallible subset).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided —
/// it is the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types that can be sampled uniformly. Mirror of
/// `rand::distr::uniform::SampleRange` for the integer and float ranges the
/// workspace uses.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire-style widening multiply maps a 64-bit word onto
                // [0, span) with bias below 2^-64 * span — negligible here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]: {p}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Draws a uniform sample from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0u8..=255);
            let _ = y;
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn random_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }
}
