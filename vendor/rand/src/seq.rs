//! Sequence-related random operations (`rand::seq`).

use crate::{Rng, RngCore};

/// In-place slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Uniform element selection, mirroring `rand::seq::IndexedRandom`.
pub trait IndexedRandom {
    /// The element type.
    type Output;

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10u32, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
