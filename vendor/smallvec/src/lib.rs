//! Offline, in-tree replacement for the `smallvec` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `SmallVec<[T; N]>` API surface the workspace uses, backed by a plain
//! `Vec<T>`. The inline-storage optimisation is intentionally absent — the
//! type exists for API compatibility; profiling never showed these small
//! vectors on a hot allocation path at current scales. If that changes, this
//! is the one file to optimise.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Marker trait tying `SmallVec<A>` to its element type, mirroring
/// `smallvec::Array`.
pub trait Array {
    /// The element type.
    type Item;
    /// The (nominal) inline capacity.
    fn size() -> usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    fn size() -> usize {
        N
    }
}

/// A `Vec`-backed stand-in for `smallvec::SmallVec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// Creates an empty vector with at least `cap` capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends an element.
    pub fn push(&mut self, value: A::Item) {
        self.inner.push(value);
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Clears the vector.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Retains only elements matching the predicate.
    pub fn retain(&mut self, f: impl FnMut(&mut A::Item) -> bool) {
        let mut f = f;
        let mut i = 0;
        while i < self.inner.len() {
            if f(&mut self.inner[i]) {
                i += 1;
            } else {
                self.inner.remove(i);
            }
        }
    }

    /// Consumes `self`, returning the backing `Vec`.
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    fn from(inner: Vec<A::Item>) -> Self {
        SmallVec { inner }
    }
}

/// Constructs a [`SmallVec`] from a list of elements, mirroring
/// `smallvec::smallvec!`.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($elem:expr; $n:expr) => {
        $crate::SmallVec::from(::std::vec![$elem; $n])
    };
    ($($x:expr),+ $(,)?) => {
        $crate::SmallVec::from(::std::vec![$($x),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_deref_iterate() {
        let mut v: SmallVec<[u32; 4]> = SmallVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.first(), Some(&1));
        assert_eq!(v.iter().sum::<u32>(), 3);
    }

    #[test]
    fn macro_and_collect() {
        let v: SmallVec<[u32; 2]> = smallvec![5, 6, 7];
        assert_eq!(&v[..], &[5, 6, 7]);
        let c: SmallVec<[u32; 2]> = (0..3).collect();
        assert_eq!(&c[..], &[0, 1, 2]);
        let r: SmallVec<[u32; 2]> = smallvec![9; 4];
        assert_eq!(&r[..], &[9, 9, 9, 9]);
    }

    #[test]
    fn equality_and_clone() {
        let a: SmallVec<[u8; 4]> = smallvec![1, 2];
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "[1, 2]");
    }
}
