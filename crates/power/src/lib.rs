//! Analytical router area / power / energy-delay model.
//!
//! The paper reports Nangate-15nm synthesis results (Sec. VI, Fig. 10):
//! a 1-VC mesh router is ~52% smaller and ~50% lower-power than a 3-VC
//! router; SPIN adds ~4% area over a West-first router, Static Bubble ~10%
//! and an escape-VC design ~100%. We cannot run RTL synthesis, so this
//! crate provides a component-level analytical model — buffers, crossbar,
//! allocators, and the SPIN control modules of Table II — with coefficients
//! calibrated so the *ratios* between the paper's design points are
//! reproduced. Absolute units are arbitrary ("area units" / "energy units
//! per cycle"); every reported figure is a normalised comparison, exactly
//! like the paper's.
//!
//! Model structure (per router):
//!
//! * buffer area  ∝ `ports x vnets x VCs x depth x flit_bits` — dominates;
//! * crossbar     ∝ `radix² x flit_bits`;
//! * allocators   ∝ `radix x vnets x VCs`;
//! * SPIN modules (Table II): a fixed FSM + probe/move managers ∝ radix +
//!   the loop buffer of `log2(radix) x N_routers` bits;
//! * Static Bubble: one packet-sized central buffer + a detection FSM;
//! * escape VC: one extra VC per port per vnet, modelled as buffers.
//!
//! # Examples
//!
//! ```
//! use spin_power::{PowerModel, RouterParams};
//!
//! let model = PowerModel::nangate15();
//! let mesh3 = RouterParams::mesh_router(3);
//! let mesh1 = RouterParams::mesh_router(1);
//! let saving = 1.0 - model.router_area(&mesh1) / model.router_area(&mesh3);
//! assert!(saving > 0.4 && saving < 0.6); // the paper reports 52%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Static parameters of one router for the area/power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterParams {
    /// Total ports (local + network).
    pub radix: u32,
    /// Virtual networks.
    pub vnets: u32,
    /// VCs per port per vnet.
    pub vcs_per_vnet: u32,
    /// Buffer depth per VC in flits.
    pub buffer_depth: u32,
    /// Flit width in bits (the paper assumes 128-bit links).
    pub flit_bits: u32,
}

impl RouterParams {
    /// The paper's mesh router: radix 5, 3 vnets, 5-flit-deep VCs, 128-bit
    /// flits.
    pub fn mesh_router(vcs_per_vnet: u32) -> Self {
        RouterParams {
            radix: 5,
            vnets: 3,
            vcs_per_vnet,
            buffer_depth: 5,
            flit_bits: 128,
        }
    }

    /// The paper's dragonfly router: radix 15 (4 local + 7 intra + 4
    /// global), deeper buffers covering the 3-cycle global-link credit
    /// turnaround.
    pub fn dragonfly_router(vcs_per_vnet: u32) -> Self {
        RouterParams {
            radix: 15,
            vnets: 3,
            vcs_per_vnet,
            buffer_depth: 16,
            flit_bits: 128,
        }
    }

    fn buffer_bits(&self) -> f64 {
        (self.radix * self.vnets * self.vcs_per_vnet * self.buffer_depth * self.flit_bits) as f64
    }
}

/// Deadlock-freedom scheme, for the Fig. 10 overhead comparison. All
/// overheads are measured on top of a plain router with the given VC count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Turn-model avoidance (West-first): pure routing restriction, no
    /// hardware beyond the base router.
    TurnModel,
    /// SPIN: counter FSM + probe/move managers + the loop buffer of
    /// `log2(radix) x N` bits (Table II).
    Spin {
        /// Routers in the network (loop-buffer size).
        num_routers: u32,
    },
    /// Static Bubble: one packet-sized central buffer + detection FSM.
    StaticBubble,
    /// Escape VC: one extra VC per port per vnet (datapath buffers).
    EscapeVc,
}

/// Area/power coefficients (arbitrary units), calibrated to the paper's
/// Nangate-15nm ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Area per buffer bit.
    pub a_buf_per_bit: f64,
    /// Area per crossbar crosspoint-bit (`radix² x flit_bits`).
    pub a_xbar_per_bit: f64,
    /// Area per allocator arbiter input (`radix x vnets x vcs`).
    pub a_alloc_per_input: f64,
    /// Leakage power per area unit.
    pub p_leak_per_area: f64,
    /// Dynamic energy per flit buffered (write + read), per bit.
    pub e_buf_per_bit: f64,
    /// Dynamic energy per flit crossing the crossbar, per bit.
    pub e_xbar_per_bit: f64,
}

impl PowerModel {
    /// Coefficients calibrated against the paper's reported Nangate 15nm
    /// ratios (mesh: 1 VC is ~52% smaller / ~50% lower power than 3 VC;
    /// dragonfly: ~53% / ~55%).
    pub fn nangate15() -> Self {
        PowerModel {
            a_buf_per_bit: 1.0,
            // Mesh calibration: non-VC area = 0.846 x per-VC-set buffer
            // area => k_xbar = 0.846 * 9600 / 3200.
            a_xbar_per_bit: 2.54,
            a_alloc_per_input: 8.0,
            p_leak_per_area: 0.05,
            e_buf_per_bit: 1.0,
            e_xbar_per_bit: 0.55,
        }
    }

    /// Router datapath + control area in model units.
    pub fn router_area(&self, p: &RouterParams) -> f64 {
        let buffers = self.a_buf_per_bit * p.buffer_bits();
        let xbar = self.a_xbar_per_bit * (p.radix * p.radix * p.flit_bits) as f64;
        let alloc = self.a_alloc_per_input * (p.radix * p.vnets * p.vcs_per_vnet) as f64;
        buffers + xbar + alloc
    }

    /// Extra area of a deadlock-freedom scheme on top of the base router.
    pub fn scheme_area(&self, p: &RouterParams, scheme: Scheme) -> f64 {
        match scheme {
            Scheme::TurnModel => 0.0,
            Scheme::Spin { num_routers } => {
                // Loop buffer: log2(radix) x N bits on the control path
                // (Table II), plus FSM + probe/move managers.
                let loop_buffer_bits = (p.radix as f64).log2().ceil() * num_routers as f64;
                let managers = self.a_alloc_per_input * (2 * p.radix) as f64;
                let fsm = self.a_alloc_per_input * 16.0;
                self.a_buf_per_bit * loop_buffer_bits + managers + fsm
            }
            Scheme::StaticBubble => {
                // One packet-sized (5-flit) central buffer + detection FSM.
                let central = self.a_buf_per_bit * (5 * p.flit_bits) as f64;
                let fsm = self.a_alloc_per_input * 24.0;
                central + fsm
            }
            Scheme::EscapeVc => {
                // A whole extra VC per port per vnet on the datapath.
                let extra = RouterParams {
                    vcs_per_vnet: 1,
                    ..*p
                };
                self.a_buf_per_bit * extra.buffer_bits()
                    + self.a_alloc_per_input * (p.radix * p.vnets) as f64
            }
        }
    }

    /// Total router area including the scheme hardware.
    pub fn total_area(&self, p: &RouterParams, scheme: Scheme) -> f64 {
        self.router_area(p) + self.scheme_area(p, scheme)
    }

    /// Fig. 10: area overhead of a scheme relative to the turn-model
    /// (West-first) router with the same parameters, as a multiplier
    /// (West-first = 1.0).
    pub fn area_vs_turn_model(&self, p: &RouterParams, scheme: Scheme) -> f64 {
        self.total_area(p, scheme) / self.total_area(p, Scheme::TurnModel)
    }

    /// Router power (model units/cycle) at a given activity: `flit_rate` =
    /// flits traversing the router per cycle on average.
    pub fn router_power(&self, p: &RouterParams, flit_rate: f64) -> f64 {
        let leak = self.p_leak_per_area * self.router_area(p);
        let per_flit = (self.e_buf_per_bit + self.e_xbar_per_bit) * p.flit_bits as f64;
        leak + per_flit * flit_rate
    }

    /// Network energy over a run: `router_flit_rates` can be approximated
    /// by total flit-hops / cycles / routers.
    pub fn network_energy(
        &self,
        p: &RouterParams,
        num_routers: usize,
        cycles: u64,
        total_flit_hops: u64,
    ) -> f64 {
        let rate = if cycles == 0 || num_routers == 0 {
            0.0
        } else {
            total_flit_hops as f64 / (cycles as f64 * num_routers as f64)
        };
        self.router_power(p, rate) * num_routers as f64 * cycles as f64
    }

    /// Energy-delay product for Fig. 8(a): network energy x average packet
    /// latency.
    pub fn network_edp(
        &self,
        p: &RouterParams,
        num_routers: usize,
        cycles: u64,
        total_flit_hops: u64,
        avg_latency: f64,
    ) -> f64 {
        self.network_energy(p, num_routers, cycles, total_flit_hops) * avg_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::nangate15()
    }

    #[test]
    fn mesh_one_vc_saves_about_half_the_area() {
        let m = model();
        let a3 = m.router_area(&RouterParams::mesh_router(3));
        let a1 = m.router_area(&RouterParams::mesh_router(1));
        let saving = 1.0 - a1 / a3;
        assert!(
            (0.45..0.58).contains(&saving),
            "mesh 1VC vs 3VC area saving {saving:.3}, paper reports 0.52"
        );
    }

    #[test]
    fn mesh_two_vc_saving_matches_paper_band() {
        let m = model();
        let a3 = m.router_area(&RouterParams::mesh_router(3));
        let a2 = m.router_area(&RouterParams::mesh_router(2));
        let saving = 1.0 - a2 / a3;
        // Paper: 1-VC is 52% (36%) smaller than 3-VC (2-VC) => 2-VC is
        // ~25% smaller than 3-VC.
        assert!(
            (0.18..0.33).contains(&saving),
            "2VC vs 3VC saving {saving:.3}"
        );
    }

    #[test]
    fn dragonfly_one_vc_saves_about_half() {
        let m = model();
        let a3 = m.router_area(&RouterParams::dragonfly_router(3));
        let a1 = m.router_area(&RouterParams::dragonfly_router(1));
        let saving = 1.0 - a1 / a3;
        assert!(
            (0.45..0.6).contains(&saving),
            "dragonfly 1VC vs 3VC area saving {saving:.3}, paper reports 0.53"
        );
    }

    #[test]
    fn power_savings_track_paper() {
        let m = model();
        // Compare at equal activity.
        let p3 = m.router_power(&RouterParams::mesh_router(3), 1.0);
        let p1 = m.router_power(&RouterParams::mesh_router(1), 1.0);
        let saving = 1.0 - p1 / p3;
        // Leakage scales with area, dynamic with activity: savings land
        // between pure-leakage (52%) and pure-dynamic (0%) depending on
        // activity; at 1 flit/cycle the mix must still save >25%.
        assert!(saving > 0.25, "power saving {saving:.3} too small");
        let p1_idle = m.router_power(&RouterParams::mesh_router(1), 0.0);
        let p3_idle = m.router_power(&RouterParams::mesh_router(3), 0.0);
        let idle_saving = 1.0 - p1_idle / p3_idle;
        assert!((0.45..0.58).contains(&idle_saving));
    }

    #[test]
    fn fig10_ordering_matches_paper() {
        let m = model();
        let p = RouterParams::mesh_router(1);
        let wf = m.area_vs_turn_model(&p, Scheme::TurnModel);
        let spin = m.area_vs_turn_model(&p, Scheme::Spin { num_routers: 64 });
        let bubble = m.area_vs_turn_model(&p, Scheme::StaticBubble);
        let escape = m.area_vs_turn_model(&p, Scheme::EscapeVc);
        assert_eq!(wf, 1.0);
        // Paper: SPIN ~ +4%, Static Bubble ~ +10%, EscapeVC ~ +100%.
        assert!(
            spin > 1.0 && spin < bubble,
            "spin {spin:.3} bubble {bubble:.3}"
        );
        assert!(bubble < escape, "bubble {bubble:.3} escape {escape:.3}");
        assert!(
            spin - 1.0 < 0.10,
            "SPIN overhead {:.3} too large",
            spin - 1.0
        );
        assert!(
            escape - 1.0 > 0.3,
            "escape overhead {:.3} too small",
            escape - 1.0
        );
    }

    #[test]
    fn spin_loop_buffer_scales_with_network_size() {
        let m = model();
        let p = RouterParams::mesh_router(1);
        let small = m.scheme_area(&p, Scheme::Spin { num_routers: 64 });
        let big = m.scheme_area(&p, Scheme::Spin { num_routers: 1024 });
        assert!(big > small);
    }

    #[test]
    fn energy_monotone_in_traffic() {
        let m = model();
        let p = RouterParams::mesh_router(3);
        let quiet = m.network_energy(&p, 64, 10_000, 1_000);
        let busy = m.network_energy(&p, 64, 10_000, 1_000_000);
        assert!(busy > quiet);
        assert_eq!(m.network_energy(&p, 64, 0, 0), 0.0);
    }

    #[test]
    fn edp_composes_energy_and_delay() {
        let m = model();
        let p = RouterParams::mesh_router(2);
        let e = m.network_energy(&p, 64, 1000, 5000);
        let edp = m.network_edp(&p, 64, 1000, 5000, 20.0);
        assert!((edp - e * 20.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Area grows monotonically in every capacity parameter.
        #[test]
        fn prop_area_monotone(
            radix in 2u32..20,
            vnets in 1u32..4,
            vcs in 1u32..6,
            depth in 1u32..20,
        ) {
            let m = PowerModel::nangate15();
            let base = RouterParams { radix, vnets, vcs_per_vnet: vcs, buffer_depth: depth, flit_bits: 128 };
            let a = m.router_area(&base);
            prop_assert!(a > 0.0);
            for grown in [
                RouterParams { radix: radix + 1, ..base },
                RouterParams { vnets: vnets + 1, ..base },
                RouterParams { vcs_per_vnet: vcs + 1, ..base },
                RouterParams { buffer_depth: depth + 1, ..base },
            ] {
                prop_assert!(m.router_area(&grown) > a);
            }
        }

        /// Scheme overheads are non-negative and SPIN's stays small
        /// relative to the router for realistic parameters.
        #[test]
        fn prop_spin_overhead_small(
            radix in 3u32..20,
            vcs in 1u32..4,
            routers in 4u32..2048,
        ) {
            let m = PowerModel::nangate15();
            let p = RouterParams { radix, vnets: 3, vcs_per_vnet: vcs, buffer_depth: 5, flit_bits: 128 };
            let over = m.scheme_area(&p, Scheme::Spin { num_routers: routers });
            prop_assert!(over >= 0.0);
            // The loop buffer is log2(radix) x N bits, so it grows with the
            // network; it must never dominate the router itself, and for
            // paper-sized networks (<= 256 routers) it stays under 10%.
            prop_assert!(over < m.router_area(&p));
            if routers <= 256 && p.vcs_per_vnet >= 1 && p.radix >= 5 {
                let paper = m.scheme_area(&p, Scheme::Spin { num_routers: 64 });
                prop_assert!(paper < 0.10 * m.router_area(&p));
            }
        }

        /// Power is monotone in activity.
        #[test]
        fn prop_power_monotone_in_activity(rate1 in 0.0f64..1.0, rate2 in 0.0f64..1.0) {
            let m = PowerModel::nangate15();
            let p = RouterParams::mesh_router(2);
            let (lo, hi) = if rate1 < rate2 { (rate1, rate2) } else { (rate2, rate1) };
            prop_assert!(m.router_power(&p, lo) <= m.router_power(&p, hi));
        }
    }
}
