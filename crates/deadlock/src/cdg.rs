//! Dally's channel dependency graph (CDG) with a cycle test.
//!
//! A *channel* is a (virtual) buffer class a packet can occupy; a dependency
//! `a -> b` exists when a packet holding `a` may request `b` next. Dally's
//! theorem: a routing function is deadlock-free if its CDG is acyclic. The
//! reproduction uses this to certify the avoidance baselines of Table I.

use std::collections::HashMap;
use std::hash::Hash;

/// A channel dependency graph over caller-defined channel identifiers.
#[derive(Debug, Clone)]
pub struct Cdg<C: Eq + Hash + Clone> {
    index: HashMap<C, usize>,
    channels: Vec<C>,
    edges: Vec<Vec<usize>>,
}

impl<C: Eq + Hash + Clone> Default for Cdg<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Eq + Hash + Clone> Cdg<C> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Cdg {
            index: HashMap::new(),
            channels: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn intern(&mut self, c: C) -> usize {
        if let Some(&i) = self.index.get(&c) {
            return i;
        }
        let i = self.channels.len();
        self.index.insert(c.clone(), i);
        self.channels.push(c);
        self.edges.push(Vec::new());
        i
    }

    /// Registers a channel without dependencies (idempotent).
    pub fn add_channel(&mut self, c: C) {
        self.intern(c);
    }

    /// Adds the dependency `from -> to` (a packet in `from` may wait for
    /// `to`).
    ///
    /// A self-dependency (`from == to`) is *recorded* rather than rejected:
    /// it shows up as a 1-cycle in [`Cdg::find_cycle`] and in
    /// [`Cdg::self_cycles`], so a derived CDG fed a buggy routing function
    /// produces a diagnosis instead of a panic. No legitimate routing
    /// function generates one — a packet cannot re-request the directed
    /// link it already holds — so any 1-cycle means the edge source is
    /// wrong, not the network.
    pub fn add_dependency(&mut self, from: C, to: C) {
        let f = self.intern(from);
        let t = self.intern(to);
        if !self.edges[f].contains(&t) {
            self.edges[f].push(t);
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of dependency edges.
    pub fn num_dependencies(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The interned index of `c`, if it was ever added.
    pub fn index_of(&self, c: &C) -> Option<usize> {
        self.index.get(c).copied()
    }

    /// The channel interned at `index` (indices are dense: `0..num_channels`,
    /// in first-insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_channels()`.
    pub fn channel(&self, index: usize) -> &C {
        &self.channels[index]
    }

    /// All channels in insertion order.
    pub fn channels(&self) -> &[C] {
        &self.channels
    }

    /// Successor indices of the channel at `index` (insertion order, no
    /// duplicates).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_channels()`.
    pub fn deps_of(&self, index: usize) -> &[usize] {
        &self.edges[index]
    }

    /// Channels carrying a self-dependency — each is a reported 1-cycle
    /// (see [`Cdg::add_dependency`]). Empty for every well-formed CDG.
    pub fn self_cycles(&self) -> Vec<&C> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(i, succ)| succ.contains(i))
            .map(|(i, _)| &self.channels[i])
            .collect()
    }

    /// True if the graph has no cycle (Dally's sufficient condition for
    /// deadlock freedom).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Returns some dependency cycle as a channel sequence (first element
    /// repeated at the end), or `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<C>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let n = self.channels.len();
        let mut mark = vec![Mark::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if mark[start] != Mark::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, edge cursor).
            let mut stack = vec![(start, 0usize)];
            mark[start] = Mark::Grey;
            while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
                if *cursor < self.edges[u].len() {
                    let v = self.edges[u][*cursor];
                    *cursor += 1;
                    match mark[v] {
                        Mark::White => {
                            mark[v] = Mark::Grey;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        Mark::Grey => {
                            // Cycle: walk parents from u back to v, then
                            // emit v ... u v in forward order.
                            let mut rev = Vec::new();
                            let mut cur = u;
                            while cur != v {
                                rev.push(cur);
                                cur = parent[cur];
                            }
                            rev.push(v);
                            rev.reverse();
                            let mut cycle: Vec<C> =
                                rev.into_iter().map(|i| self.channels[i].clone()).collect();
                            cycle.push(self.channels[v].clone());
                            return Some(cycle);
                        }
                        Mark::Black => {}
                    }
                } else {
                    mark[u] = Mark::Black;
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_acyclic() {
        let g: Cdg<u32> = Cdg::new();
        assert!(g.is_acyclic());
        assert_eq!(g.num_channels(), 0);
    }

    #[test]
    fn dag_is_acyclic() {
        let mut g = Cdg::new();
        g.add_dependency("a", "b");
        g.add_dependency("b", "c");
        g.add_dependency("a", "c");
        assert!(g.is_acyclic());
        assert_eq!(g.num_channels(), 3);
        assert_eq!(g.num_dependencies(), 3);
    }

    #[test]
    fn triangle_cycle_found() {
        let mut g = Cdg::new();
        g.add_dependency(0, 1);
        g.add_dependency(1, 2);
        g.add_dependency(2, 0);
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert_eq!(cycle.len(), 4); // 3 nodes + repeat
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Cdg::new();
        g.add_dependency(1, 2);
        g.add_dependency(1, 2);
        assert_eq!(g.num_dependencies(), 1);
    }

    /// Regression test for the panic this used to be: a self-dependency is
    /// now recorded and reported as a 1-cycle so callers deriving CDGs from
    /// arbitrary routing functions get a diagnosis instead of an abort.
    #[test]
    fn self_edge_reported_as_unit_cycle() {
        let mut g = Cdg::new();
        g.add_dependency(7, 7);
        assert!(!g.is_acyclic());
        assert_eq!(g.find_cycle(), Some(vec![7, 7]));
        assert_eq!(g.self_cycles(), vec![&7]);
        // A well-formed graph reports no self-cycles.
        let mut ok = Cdg::new();
        ok.add_dependency(1, 2);
        assert!(ok.self_cycles().is_empty());
    }

    #[test]
    fn accessors_expose_interned_graph() {
        let mut g = Cdg::new();
        g.add_dependency("a", "b");
        g.add_dependency("b", "c");
        assert_eq!(g.channels(), &["a", "b", "c"]);
        assert_eq!(g.index_of(&"b"), Some(1));
        assert_eq!(g.index_of(&"z"), None);
        assert_eq!(g.channel(2), &"c");
        assert_eq!(g.deps_of(0), &[1]);
        assert_eq!(g.deps_of(2), &[] as &[usize]);
    }

    #[test]
    fn isolated_channels_ok() {
        let mut g = Cdg::new();
        g.add_channel("x");
        g.add_channel("y");
        assert!(g.is_acyclic());
        assert_eq!(g.num_channels(), 2);
    }

    #[test]
    fn cycle_deep_in_graph_found() {
        let mut g = Cdg::new();
        // Long tail leading into a 2-cycle.
        for i in 0..50u32 {
            g.add_dependency(i, i + 1);
        }
        g.add_dependency(50, 49);
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.contains(&50) && cycle.contains(&49));
    }
}
