//! AND-OR wait-for-graph reduction: the exact deadlocked-packet set.

use spin_types::{PacketId, PortId, RouterId, VcId, Vnet};
use std::collections::HashMap;

/// One buffer (virtual channel) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId {
    /// Owning router.
    pub router: RouterId,
    /// Input port.
    pub port: PortId,
    /// Virtual network.
    pub vnet: Vnet,
    /// VC index within the port and vnet.
    pub vc: VcId,
}

/// An input port's buffer pool within one vnet — the granularity at which
/// free capacity is tracked and waits are expressed.
pub type PortKey = (RouterId, PortId, Vnet);

#[derive(Debug, Clone)]
struct Waiter {
    packet: PacketId,
    at: BufferId,
    /// OR-set of alternatives: the packet can proceed into any free VC at
    /// any of these downstream input ports. Empty = ejecting / free to move
    /// (never deadlocked).
    wants: Vec<PortKey>,
}

/// A snapshot of all blocked packets and free buffer capacity, reducible to
/// the set of truly deadlocked packets.
///
/// Reduction rule (the classic adaptive-routing deadlock condition): a
/// packet is *live* if some alternative port has a free VC, or holds a live
/// occupant (which will eventually vacate its buffer). Iterate to fixpoint;
/// everything not live is deadlocked.
#[derive(Debug, Clone, Default)]
pub struct WaitGraph {
    waiters: Vec<Waiter>,
    free: HashMap<PortKey, usize>,
}

impl WaitGraph {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` free VCs at an input port.
    pub fn add_free_vcs(&mut self, router: RouterId, port: PortId, vnet: Vnet, count: usize) {
        *self.free.entry((router, port, vnet)).or_insert(0) += count;
    }

    /// Records a blocked packet occupying `at`, able to proceed into any
    /// free VC at any of `wants`. An empty `wants` means the packet is
    /// ejecting or otherwise unblocked and can never be deadlocked.
    pub fn add_packet(&mut self, packet: PacketId, at: BufferId, wants: Vec<PortKey>) {
        self.waiters.push(Waiter { packet, at, wants });
    }

    /// Number of recorded packets.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// True if no packets are recorded.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Computes the set of deadlocked packets (sorted by id).
    pub fn deadlocked(&self) -> Vec<PacketId> {
        // occupants[port] = indices of waiters buffered at that port.
        let mut occupants: HashMap<PortKey, Vec<usize>> = HashMap::new();
        for (i, w) in self.waiters.iter().enumerate() {
            occupants
                .entry((w.at.router, w.at.port, w.at.vnet))
                .or_default()
                .push(i);
        }
        let mut live = vec![false; self.waiters.len()];
        // Seed: ejecting packets and packets with an immediately free
        // alternative are live.
        for (i, w) in self.waiters.iter().enumerate() {
            live[i] = w.wants.is_empty()
                || w.wants
                    .iter()
                    .any(|k| self.free.get(k).copied().unwrap_or(0) > 0);
        }
        // Fixpoint: a packet becomes live if some alternative port holds a
        // live occupant (its buffer will free up).
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.waiters.len() {
                if live[i] {
                    continue;
                }
                let becomes_live = self.waiters[i].wants.iter().any(|k| {
                    occupants
                        .get(k)
                        .map(|occ| occ.iter().any(|&j| live[j]))
                        .unwrap_or(false)
                });
                if becomes_live {
                    live[i] = true;
                    changed = true;
                }
            }
        }
        let mut dead: Vec<PacketId> = self
            .waiters
            .iter()
            .zip(&live)
            .filter(|(_, &l)| !l)
            .map(|(w, _)| w.packet)
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// True if the snapshot contains at least one deadlocked packet.
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocked().is_empty()
    }

    /// True if the given packet is in the deadlocked set.
    pub fn is_packet_deadlocked(&self, packet: PacketId) -> bool {
        self.deadlocked().binary_search(&packet).is_ok()
    }

    /// The deadlocked packets with the buffer each occupies and its wait
    /// OR-set, sorted by packet id (one entry per occupied buffer; a packet
    /// split across buffers by a spin appears once per buffer). This is the
    /// interface the static cross-validation hook consumes: the occupied
    /// buffers must map onto a cycle of the statically derived CDG.
    pub fn deadlocked_members(&self) -> Vec<(PacketId, BufferId, Vec<PortKey>)> {
        let dead = self.deadlocked();
        let mut members: Vec<(PacketId, BufferId, Vec<PortKey>)> = self
            .waiters
            .iter()
            .filter(|w| dead.binary_search(&w.packet).is_ok())
            .map(|w| (w.packet, w.at, w.wants.clone()))
            .collect();
        members.sort_unstable_by_key(|(p, at, _)| (*p, *at));
        members
    }

    /// The routers owning at least one deadlocked packet's buffer (sorted).
    pub fn deadlocked_routers(&self) -> Vec<RouterId> {
        let dead = self.deadlocked();
        let mut routers: Vec<RouterId> = self
            .waiters
            .iter()
            .filter(|w| dead.binary_search(&w.packet).is_ok())
            .map(|w| w.at.router)
            .collect();
        routers.sort_unstable();
        routers.dedup();
        routers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(r: u32, p: u8) -> BufferId {
        BufferId {
            router: RouterId(r),
            port: PortId(p),
            vnet: Vnet(0),
            vc: VcId(0),
        }
    }
    fn key(r: u32, p: u8) -> PortKey {
        (RouterId(r), PortId(p), Vnet(0))
    }

    /// Ring of n packets, each waiting on the next buffer.
    fn ring(n: u32) -> WaitGraph {
        let mut g = WaitGraph::new();
        for i in 0..n {
            g.add_packet(PacketId(i as u64), buf(i, 1), vec![key((i + 1) % n, 1)]);
        }
        g
    }

    #[test]
    fn empty_graph_has_no_deadlock() {
        assert!(!WaitGraph::new().has_deadlock());
        assert!(WaitGraph::new().is_empty());
    }

    #[test]
    fn simple_ring_is_deadlocked() {
        let g = ring(4);
        assert_eq!(g.deadlocked().len(), 4);
        assert_eq!(g.deadlocked_routers().len(), 4);
        assert!(g.is_packet_deadlocked(PacketId(2)));
    }

    #[test]
    fn members_report_buffers_and_wants() {
        let g = ring(3);
        let members = g.deadlocked_members();
        assert_eq!(members.len(), 3);
        // Sorted by packet id; each occupies its buffer and wants the next.
        for (i, (pkt, at, wants)) in members.iter().enumerate() {
            assert_eq!(*pkt, PacketId(i as u64));
            assert_eq!(*at, buf(i as u32, 1));
            assert_eq!(wants, &vec![key((i as u32 + 1) % 3, 1)]);
        }
        // Live graphs report no members.
        assert!(WaitGraph::new().deadlocked_members().is_empty());
    }

    #[test]
    fn free_vc_anywhere_on_ring_dissolves_it() {
        for i in 0..4 {
            let mut g = ring(4);
            g.add_free_vcs(RouterId(i), PortId(1), Vnet(0), 1);
            assert!(
                g.deadlocked().is_empty(),
                "free VC at r{i} should break the ring"
            );
        }
    }

    #[test]
    fn ejecting_packet_breaks_chain() {
        // Packet 2 in the ring is replaced by an ejecting packet: the chain
        // behind it can advance once it leaves.
        let mut g = WaitGraph::new();
        g.add_packet(PacketId(0), buf(0, 1), vec![key(1, 1)]);
        g.add_packet(PacketId(1), buf(1, 1), vec![key(2, 1)]);
        g.add_packet(PacketId(2), buf(2, 1), vec![]); // ejecting
        assert!(g.deadlocked().is_empty());
    }

    #[test]
    fn adaptive_alternative_escapes() {
        // A ring, but one packet has a second alternative with free space.
        let mut g = ring(3);
        g.add_packet(PacketId(10), buf(10, 1), vec![key(0, 1), key(99, 1)]);
        g.add_free_vcs(RouterId(99), PortId(1), Vnet(0), 2);
        let dead = g.deadlocked();
        // Packet 10 escapes through r99. But the pure ring 0-1-2 stays
        // deadlocked: packet 10 leaving does not free any ring buffer the
        // ring packets wait on (it occupies r10's buffer, not a ring one).
        assert_eq!(dead, vec![PacketId(0), PacketId(1), PacketId(2)]);
    }

    #[test]
    fn dependent_cycles_both_detected() {
        // Two rings sharing a buffer wait: packets 0..3 in ring A; packet 4
        // waits into ring A's buffer at r0. Packet 4 is blocked forever too.
        let mut g = ring(4);
        g.add_packet(PacketId(4), buf(9, 1), vec![key(0, 1)]);
        let dead = g.deadlocked();
        assert_eq!(dead.len(), 5);
    }

    #[test]
    fn chain_into_live_head_is_live() {
        // A straight dependence chain ending in a free buffer: no deadlock
        // even though every buffer is full.
        let mut g = WaitGraph::new();
        for i in 0..5 {
            g.add_packet(PacketId(i), buf(i as u32, 1), vec![key(i as u32 + 1, 1)]);
        }
        g.add_free_vcs(RouterId(5), PortId(1), Vnet(0), 1);
        assert!(g.deadlocked().is_empty());
    }

    #[test]
    fn and_or_semantics_require_all_alternatives_blocked() {
        // Packet with two alternatives, both into deadlocked rings -> dead.
        let mut g = ring(3);
        // Second ring on routers 10,11,12.
        for i in 0..3u32 {
            g.add_packet(
                PacketId(100 + i as u64),
                buf(10 + i, 1),
                vec![key(10 + (i + 1) % 3, 1)],
            );
        }
        g.add_packet(PacketId(50), buf(50, 1), vec![key(0, 1), key(10, 1)]);
        let dead = g.deadlocked();
        assert!(dead.contains(&PacketId(50)));
        assert_eq!(dead.len(), 7);
    }

    #[test]
    fn multiple_free_vcs_accumulate() {
        let mut g = WaitGraph::new();
        g.add_free_vcs(RouterId(0), PortId(1), Vnet(0), 1);
        g.add_free_vcs(RouterId(0), PortId(1), Vnet(0), 2);
        g.add_packet(PacketId(0), buf(9, 1), vec![key(0, 1)]);
        assert!(!g.has_deadlock());
    }

    #[test]
    fn vnets_are_independent() {
        // Packet waits on vnet 1 of a port that only has free VCs on vnet 0.
        let mut g = WaitGraph::new();
        g.add_free_vcs(RouterId(1), PortId(1), Vnet(0), 3);
        g.add_packet(
            PacketId(0),
            BufferId {
                router: RouterId(0),
                port: PortId(1),
                vnet: Vnet(1),
                vc: VcId(0),
            },
            vec![(RouterId(1), PortId(1), Vnet(1))],
        );
        g.add_packet(
            PacketId(1),
            BufferId {
                router: RouterId(1),
                port: PortId(1),
                vnet: Vnet(1),
                vc: VcId(0),
            },
            vec![(RouterId(0), PortId(1), Vnet(1))],
        );
        assert_eq!(g.deadlocked().len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn key(r: u32) -> PortKey {
        (RouterId(r), PortId(1), Vnet(0))
    }
    fn buf(r: u32) -> BufferId {
        BufferId {
            router: RouterId(r),
            port: PortId(1),
            vnet: Vnet(0),
            vc: VcId(0),
        }
    }

    /// Brute force over subsets: the deadlocked set is the union of all
    /// "closed" sets S — every packet in S has no free alternative and
    /// every alternative port's occupants are all within S... more
    /// precisely, S is closed if no packet in S can become live assuming
    /// everything outside S eventually moves. The fixpoint reduction
    /// computes exactly the complement of the live closure; this re-derives
    /// it independently for small instances.
    fn brute_force_dead(
        packets: &[(u64, u32, Vec<u32>)], // (id, at-router, wants-routers)
        free: &[u32],
    ) -> Vec<PacketId> {
        let n = packets.len();
        // Iteratively grow the live set exactly as the definition states,
        // but scanning in the worst order and restarting from scratch each
        // time (an intentionally different implementation shape).
        let mut live = vec![false; n];
        loop {
            let mut changed = false;
            for i in (0..n).rev() {
                if live[i] {
                    continue;
                }
                let (_, _, wants) = &packets[i];
                let ok = wants.is_empty()
                    || wants.iter().any(|w| {
                        free.contains(w)
                            || packets
                                .iter()
                                .enumerate()
                                .any(|(j, (_, at, _))| at == w && live[j])
                    });
                if ok {
                    live[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut dead: Vec<PacketId> = packets
            .iter()
            .zip(&live)
            .filter(|(_, &l)| !l)
            .map(|((id, _, _), _)| PacketId(*id))
            .collect();
        dead.sort_unstable();
        dead
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The fixpoint reduction agrees with an independently written
        /// reference implementation on random small wait graphs.
        #[test]
        fn prop_reduction_matches_reference(
            edges in proptest::collection::vec((0u32..8, proptest::collection::vec(0u32..8, 0..3)), 0..8),
            free in proptest::collection::vec(0u32..8, 0..3),
        ) {
            let mut g = WaitGraph::new();
            let mut packets = Vec::new();
            for (i, (at, wants)) in edges.iter().enumerate() {
                let wants: Vec<u32> = wants.clone();
                g.add_packet(
                    PacketId(i as u64),
                    buf(*at),
                    wants.iter().map(|&w| key(w)).collect(),
                );
                packets.push((i as u64, *at, wants));
            }
            for &f in &free {
                g.add_free_vcs(RouterId(f), PortId(1), Vnet(0), 1);
            }
            let expected = brute_force_dead(&packets, &free);
            prop_assert_eq!(g.deadlocked(), expected);
        }

        /// Adding free capacity never enlarges the deadlocked set
        /// (monotonicity).
        #[test]
        fn prop_more_freedom_never_hurts(
            edges in proptest::collection::vec((0u32..6, proptest::collection::vec(0u32..6, 1..3)), 1..8),
            extra in 0u32..6,
        ) {
            let build = |with_extra: bool| {
                let mut g = WaitGraph::new();
                for (i, (at, wants)) in edges.iter().enumerate() {
                    g.add_packet(
                        PacketId(i as u64),
                        buf(*at),
                        wants.iter().map(|&w| key(w)).collect(),
                    );
                }
                if with_extra {
                    g.add_free_vcs(RouterId(extra), PortId(1), Vnet(0), 1);
                }
                g.deadlocked()
            };
            let without = build(false);
            let with = build(true);
            prop_assert!(with.iter().all(|p| without.contains(p)));
        }
    }
}
