//! Ground-truth deadlock detection and channel-dependency-graph analysis.
//!
//! Two independent tools used to *validate* the SPIN reproduction (they are
//! not part of the protocol, which is fully distributed):
//!
//! * [`WaitGraph`] — an AND-OR wait-for graph over buffer state, reduced to
//!   the exact set of deadlocked packets. A blocked packet waits on a set of
//!   *alternative* input ports (adaptive routing may choose any of them); an
//!   alternative is satisfiable if the port has a free VC now or some
//!   occupant of that port can itself eventually move. The irreducible
//!   remainder is deadlocked. This drives Fig. 3 (minimum injection rate at
//!   which a topology deadlocks) and the false-positive classification of
//!   Fig. 9.
//! * [`Cdg`] — Dally's channel dependency graph with a cycle test, used to
//!   verify that the avoidance baselines (West-first, escape VC, UGAL's VC
//!   ordering) are in fact deadlock-free by construction (Table I).
//!
//! In the trace stream (the `spin-trace` crate) this crate is the referee:
//! the simulator classifies every probe launch and confirmed recovery
//! against [`WaitGraph::deadlocked_routers`], emitting a `false_positive`
//! event when the protocol fired on a router that ground truth says is not
//! deadlocked, and `Network::run_until_deadlock` emits
//! `ground_truth_deadlock` the cycle this detector first finds one. The
//! protocol-side story — how SPIN itself detects and recovers, and which
//! trace event marks each step — is `docs/PROTOCOL.md` at the repository
//! root.
//!
//! # Examples
//!
//! A two-packet buffer cycle is deadlocked; giving either packet a free
//! alternative dissolves it:
//!
//! ```
//! use spin_deadlock::{BufferId, WaitGraph};
//! use spin_types::{PacketId, PortId, RouterId, VcId, Vnet};
//!
//! let b = |r: u32| BufferId {
//!     router: RouterId(r), port: PortId(1), vnet: Vnet(0), vc: VcId(0),
//! };
//! let mut g = WaitGraph::new();
//! g.add_packet(PacketId(0), b(0), vec![(RouterId(1), PortId(1), Vnet(0))]);
//! g.add_packet(PacketId(1), b(1), vec![(RouterId(0), PortId(1), Vnet(0))]);
//! assert_eq!(g.deadlocked().len(), 2);
//!
//! g.add_free_vcs(RouterId(1), PortId(1), Vnet(0), 1);
//! assert!(g.deadlocked().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod cdg;
mod wait_graph;

pub use cdg::Cdg;
pub use wait_graph::{BufferId, PortKey, WaitGraph};
