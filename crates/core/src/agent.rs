//! The per-router SPIN finite state machine (Fig. 4a of the paper).
//!
//! One [`SpinAgent`] lives in every router. The host (simulator) must, every
//! cycle and in this order:
//!
//! 1. deliver arriving special messages via [`SpinAgent::on_sm`];
//! 2. tick the agent via [`SpinAgent::on_cycle`];
//! 3. apply the returned [`Action`]s: put SMs on links (bufferless, one hop
//!    per link latency, pre-empting flits), mark VCs frozen (switch
//!    allocation disabled) and, on [`Action::StartSpin`], stream every
//!    frozen packet out of its frozen outport one flit per cycle;
//! 4. call [`SpinAgent::notify_spin_complete`] once all frozen packets have
//!    fully streamed out.

use crate::priority::RotatingPriority;
use crate::sm::{LoopPath, Sm, SmKind};
use crate::view::{SpinRouterView, VcStatus};
use crate::SpinConfig;
use smallvec::SmallVec;
use spin_types::{Cycle, PacketId, PortId, RouterId, VcId, Vnet};

/// Extra cycles added to the spin offset so the kill window (one loop
/// traversal starting one cycle after the move timeout) always closes before
/// the spin fires.
const SPIN_SLACK: Cycle = 4;

/// Protocol actions the host must apply. See module docs for the contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Transmit `sm` out of `out_port` this cycle (higher priority than
    /// flits; on SM-vs-SM contention the host keeps the winner per
    /// [`SmKind::priority_class`] then rotating priority, dropping losers).
    SendSm {
        /// The output port to use.
        out_port: PortId,
        /// The message.
        sm: Sm,
    },
    /// Disable switch allocation for this VC and earmark it as the landing
    /// buffer for the spin packet arriving on `in_port`.
    Freeze {
        /// Input port of the frozen VC.
        in_port: PortId,
        /// Vnet of the frozen VC.
        vnet: Vnet,
        /// The frozen VC.
        vc: VcId,
        /// The outport its head packet will spin through.
        out_port: PortId,
    },
    /// Re-enable switch allocation for all frozen VCs of this router.
    UnfreezeAll,
    /// Begin streaming every frozen packet out of its frozen outport, one
    /// flit per cycle, starting this cycle.
    StartSpin,
}

/// A VC frozen for an upcoming spin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenVc {
    /// Input port.
    pub in_port: PortId,
    /// Vnet.
    pub vnet: Vnet,
    /// VC index.
    pub vc: VcId,
    /// Outport the head packet will be pushed through.
    pub out_port: PortId,
}

/// The seven FSM states of Fig. 4a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// All VCs idle; nothing to watch.
    Off,
    /// Watching one VC for a `t_DD` timeout (`S_DD`).
    DeadlockDetection,
    /// Initiator: probe returned, move sent, waiting for it to come back
    /// (`S_Move`).
    Move,
    /// Non-initiator: packet(s) frozen, counting down to the spin cycle
    /// (`S_Frozen`).
    Frozen,
    /// Initiator after a completed spin: scheduling / awaiting a
    /// `probe_move` (`S_Probe_Move`).
    ProbeMove,
    /// Initiator: move returned, own packet frozen, counting down to the
    /// spin cycle (`S_Forward_Progress`).
    ForwardProgress,
    /// Initiator: move/probe_move was lost, `kill_move` circulating
    /// (`S_kill_move`).
    KillMove,
}

/// Counters exposed for the paper's Fig. 9 and link-utilisation accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpinStats {
    /// Probes launched on detection timeouts.
    pub probes_sent: u64,
    /// Probes that returned and confirmed a loop (recoveries started).
    pub loops_confirmed: u64,
    /// Moves sent.
    pub moves_sent: u64,
    /// Probe_moves sent.
    pub probe_moves_sent: u64,
    /// Kill_moves sent.
    pub kills_sent: u64,
    /// Spins this router participated in.
    pub spins: u64,
    /// Spins this router initiated.
    pub spins_initiated: u64,
    /// Probes dropped: TTL exhausted.
    pub drop_ttl: u64,
    /// Probes dropped: this router outranks the sender (Sec. IV-C1).
    pub drop_priority: u64,
    /// Probes dropped: duplicate signature.
    pub drop_dup: u64,
    /// Probes dropped: a free VC at the probed port (congestion, not
    /// deadlock).
    pub drop_free_vc: u64,
    /// Probes dropped: occupants all ejecting/unrouted.
    pub drop_no_dependence: u64,
    /// Own probe returned but acceptance failed (dependence changed).
    pub accept_failed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Watch {
    port: PortId,
    vnet: Vnet,
    vc: VcId,
    packet: PacketId,
}

/// The per-router SPIN protocol engine. See module docs for the host
/// contract and the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct SpinAgent {
    id: RouterId,
    cfg: SpinConfig,
    state: FsmState,
    deadline: Cycle,
    watch: Option<Watch>,
    /// Outport the outstanding probe/move left through at this router.
    origin_out: Option<PortId>,
    /// Vnet of the active recovery.
    origin_vnet: Vnet,
    loop_buffer: Option<LoopPath>,
    loop_latency: Cycle,
    is_deadlock: bool,
    source_id: Option<RouterId>,
    spin_cycle: Cycle,
    frozen: Vec<FrozenVc>,
    spinning: bool,
    /// ProbeMove phase 1 = still to send; phase 2 = awaiting return.
    probe_move_pending_send: bool,
    priority: RotatingPriority,
    /// Signatures (sender, launch cycle, in-port) of probes recently
    /// forwarded, to drop duplicates. A forked probe circulating a
    /// dependence loop re-crosses the same (router, in-port) every lap;
    /// without this filter such ghosts saturate the links and starve every
    /// other router's probes (the paper's rotating-priority epoch bounds
    /// their lifetime but not their bandwidth). A genuine loop probe
    /// crosses each (router, in-port) once, and figure-8 paths cross a
    /// router twice through *different* in-ports, so the filter never drops
    /// a legitimate probe.
    recent_probes: Vec<(RouterId, Cycle, PortId)>,
    /// Probes this router launched and has not yet seen return: (launch
    /// cycle, watched in-port, vnet, vc, outport probed). Launch cycles are
    /// unique, so they identify the probe instance.
    outstanding_probes: Vec<(Cycle, PortId, Vnet, VcId, PortId)>,
    stats: SpinStats,
}

type Actions = SmallVec<[Action; 4]>;

impl SpinAgent {
    /// Creates the agent for router `id`.
    pub fn new(id: RouterId, cfg: SpinConfig) -> Self {
        SpinAgent {
            id,
            cfg,
            state: FsmState::Off,
            deadline: 0,
            watch: None,
            origin_out: None,
            origin_vnet: Vnet(0),
            loop_buffer: None,
            loop_latency: 0,
            is_deadlock: false,
            source_id: None,
            spin_cycle: 0,
            frozen: Vec::new(),
            spinning: false,
            probe_move_pending_send: false,
            priority: RotatingPriority::new(&cfg),
            recent_probes: Vec::new(),
            outstanding_probes: Vec::new(),
            stats: SpinStats::default(),
        }
    }

    /// This router's rotating dynamic priority at `now` (Sec. IV-C1).
    pub fn dynamic_priority(&self, now: Cycle) -> u32 {
        self.priority.priority(self.id, now)
    }

    /// Current FSM state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// The `is_deadlock` architectural bit.
    pub fn is_deadlock(&self) -> bool {
        self.is_deadlock
    }

    /// VCs currently frozen at this router.
    pub fn frozen(&self) -> &[FrozenVc] {
        &self.frozen
    }

    /// Protocol event counters.
    pub fn stats(&self) -> &SpinStats {
        &self.stats
    }

    /// The protocol configuration.
    pub fn config(&self) -> &SpinConfig {
        &self.cfg
    }

    /// True while frozen packets are streaming out.
    pub fn is_spinning(&self) -> bool {
        self.spinning
    }

    // ------------------------------------------------------------------
    // SM arrival
    // ------------------------------------------------------------------

    /// Processes a special message arriving on `in_port`. Must be called
    /// before [`SpinAgent::on_cycle`] within a cycle.
    pub fn on_sm(
        &mut self,
        now: Cycle,
        view: &impl SpinRouterView,
        in_port: PortId,
        sm: Sm,
    ) -> Vec<Action> {
        let mut out = Actions::new();
        match sm.kind {
            SmKind::Probe => self.on_probe(now, view, in_port, sm, &mut out),
            SmKind::Move | SmKind::ProbeMove => self.on_move(now, view, in_port, sm, &mut out),
            SmKind::KillMove => self.on_kill(now, view, in_port, sm, &mut out),
        }
        out.into_vec()
    }

    fn on_probe(
        &mut self,
        now: Cycle,
        view: &impl SpinRouterView,
        in_port: PortId,
        sm: Sm,
        out: &mut Actions,
    ) {
        if sm.sender == self.id {
            #[allow(clippy::match_like_matches_macro, clippy::single_match)]
            match self.state {
                FsmState::DeadlockDetection => {
                    let hit = self
                        .outstanding_probes
                        .iter()
                        .position(|&(l, port, vnet, _, _)| {
                            l == sm.launch_cycle && port == in_port && vnet == sm.vnet
                        });
                    if let Some(i) = hit {
                        // Returned through the probed port: loop confirmed
                        // (if the dependence still holds).
                        let (_, port, vnet, vc, out_port) = self.outstanding_probes.remove(i);
                        self.accept_probe(now, view, sm, port, vnet, vc, out_port, out);
                        return;
                    }
                    // Fig. 5(b) case II: our own probe crossing through us
                    // mid-loop is forwarded like any other probe.
                    self.forward_probe(now, view, in_port, sm, out);
                }
                // A second copy of our own probe while a recovery is in
                // flight is dropped (Sec. IV-C2, last question).
                _ => {}
            }
            return;
        }
        self.forward_probe(now, view, in_port, sm, out);
    }

    /// Probe returned to its sender: latch the loop, send the move.
    #[allow(clippy::too_many_arguments)]
    fn accept_probe(
        &mut self,
        now: Cycle,
        view: &impl SpinRouterView,
        sm: Sm,
        port: PortId,
        vnet: Vnet,
        vc: VcId,
        probed_out: PortId,
        out: &mut Actions,
    ) {
        let status = view.vc_status(port, vnet, vc);
        if status.waiting_on() != Some(probed_out) {
            // The probed dependence vanished or re-routed while the probe
            // was in flight; stay in detection.
            self.stats.accept_failed += 1;
            return;
        }
        let out_port = probed_out;
        // Re-point the watch at the confirmed VC so the move-return freeze
        // finds the right packet.
        if let Some(packet) = view.vc_packet(port, vnet, vc) {
            self.watch = Some(Watch {
                port,
                vnet,
                vc,
                packet,
            });
        } else {
            self.stats.accept_failed += 1;
            return;
        }
        let loop_latency = (now - sm.launch_cycle).max(1);
        self.loop_buffer = Some(sm.path.clone());
        self.loop_latency = loop_latency;
        self.origin_out = Some(out_port);
        self.origin_vnet = sm.vnet;
        self.spin_cycle = now + self.cfg.spin_offset as Cycle * loop_latency + SPIN_SLACK;
        self.state = FsmState::Move;
        self.deadline = now + loop_latency + 1;
        self.stats.loops_confirmed += 1;
        self.stats.moves_sent += 1;
        out.push(Action::SendSm {
            out_port,
            sm: Sm {
                kind: SmKind::Move,
                sender: self.id,
                vnet: sm.vnet,
                path: sm.path,
                spin_cycle: Some(self.spin_cycle),
                launch_cycle: now,
                ttl: self.cfg.ttl(),
            },
        });
    }

    /// Standard probe processing at a non-accepting router: drop or fork.
    fn forward_probe(
        &mut self,
        now: Cycle,
        view: &impl SpinRouterView,
        in_port: PortId,
        sm: Sm,
        out: &mut Actions,
    ) {
        if sm.ttl <= 1 {
            self.stats.drop_ttl += 1;
            return; // TTL exhausted: a forked ghost walking in circles.
        }
        if self.cfg.priority_probe_drop
            && self.priority.priority(self.id, now) > self.priority.priority(sm.sender, now)
        {
            // Sec. IV-C1: a probe is dropped at any router whose dynamic
            // priority exceeds the sender's. Exactly one router per loop -
            // the current loop maximum - can complete its probe, which both
            // serialises initiators and stops probes looping forever.
            self.stats.drop_priority += 1;
            return;
        }
        // Duplicate-suppression (see `recent_probes`).
        let sig = (sm.sender, sm.launch_cycle, in_port);
        let window = 4 * self.cfg.t_dd.max(1);
        self.recent_probes.retain(|&(_, l, _)| l + window >= now);
        if self.recent_probes.contains(&sig) {
            self.stats.drop_dup += 1;
            return;
        }
        self.recent_probes.push(sig);
        let vnet = sm.vnet;
        let nvcs = view.num_vcs(in_port, vnet);
        if nvcs == 0 {
            return;
        }
        let mut outports: SmallVec<[PortId; 8]> = SmallVec::new();
        for vc in 0..nvcs {
            match view.vc_status(in_port, vnet, VcId(vc)) {
                // Any free VC at the probe's port means no hard dependence
                // through this port: drop.
                VcStatus::Empty => {
                    self.stats.drop_free_vc += 1;
                    return;
                }
                VcStatus::Ejecting | VcStatus::Routing => {}
                VcStatus::Waiting(p) => {
                    if !outports.contains(&p) {
                        outports.push(p);
                    }
                }
            }
        }
        if outports.is_empty() {
            // All occupants are ejecting or unrouted: cannot be part of an
            // in-network cycle (walkthrough step 4a).
            self.stats.drop_no_dependence += 1;
            return;
        }
        if !self.cfg.probe_forking && outports.len() > 1 {
            // Ablation mode: no forking; multi-dependence ports drop.
            return;
        }
        for port in outports {
            out.push(Action::SendSm {
                out_port: port,
                sm: Sm {
                    path: sm.path.appended(port),
                    ttl: sm.ttl - 1,
                    ..sm.clone()
                },
            });
        }
    }

    fn on_move(
        &mut self,
        now: Cycle,
        view: &impl SpinRouterView,
        in_port: PortId,
        sm: Sm,
        out: &mut Actions,
    ) {
        if sm.sender == self.id && sm.path.is_empty() {
            self.on_own_move_returned(now, view, sm, out);
            return;
        }
        // Intermediate processing (including our own move crossing through
        // us mid-loop in a figure-8, Fig. 5(b)).
        if self.is_deadlock && self.source_id != Some(sm.sender) {
            // Competing recovery already owns this router: drop; the other
            // sender recovers via kill_move timeout (Fig. 5(a) case II).
            return;
        }
        if sm.sender != self.id {
            match self.state {
                // A router mid-recovery as an initiator must not be hijacked
                // by a foreign move, or its own loop would stay frozen with
                // nobody left to kill it.
                FsmState::Off | FsmState::DeadlockDetection | FsmState::Frozen => {}
                _ => return,
            }
        }
        let Some(first) = sm.path.first() else { return };
        let Some(vc) = self.find_freezable(view, in_port, sm.vnet, first) else {
            // Dependence no longer present: drop the move; the sender's
            // counter will expire and a kill_move will release the loop.
            return;
        };
        let spin_cycle = sm.spin_cycle.unwrap_or(now);
        self.freeze(in_port, sm.vnet, vc, first, out);
        self.is_deadlock = true;
        self.source_id = Some(sm.sender);
        self.spin_cycle = spin_cycle;
        if sm.sender != self.id {
            self.state = FsmState::Frozen;
            self.deadline = spin_cycle;
        }
        out.push(Action::SendSm {
            out_port: first,
            sm: Sm {
                path: sm.path.stripped(),
                ..sm
            },
        });
    }

    /// The initiator received its own move / probe_move back with an empty
    /// path: the whole loop accepted the spin.
    fn on_own_move_returned(
        &mut self,
        now: Cycle,
        view: &impl SpinRouterView,
        sm: Sm,
        out: &mut Actions,
    ) {
        let expected = match (sm.kind, self.state) {
            (SmKind::Move, FsmState::Move) => true,
            (SmKind::ProbeMove, FsmState::ProbeMove) => !self.probe_move_pending_send,
            _ => false,
        };
        if !expected {
            return;
        }
        // Freeze our own packet if its dependence still holds; otherwise
        // the loop must be released again.
        let own = self.find_own_freezable(view);
        match own {
            Some((port, vnet, vc, out_port)) => {
                self.freeze(port, vnet, vc, out_port, out);
                self.is_deadlock = true;
                self.source_id = Some(self.id);
                self.spin_cycle = sm.spin_cycle.unwrap_or(self.spin_cycle);
                self.state = FsmState::ForwardProgress;
                self.deadline = self.spin_cycle;
            }
            None => self.start_kill(now, out),
        }
    }

    /// Locates the initiator's own deadlocked VC: the watched VC for the
    /// first spin, or any VC on the origin port still waiting on the origin
    /// outport for later spins.
    fn find_own_freezable(
        &self,
        view: &impl SpinRouterView,
    ) -> Option<(PortId, Vnet, VcId, PortId)> {
        let origin_out = self.origin_out?;
        if let Some(w) = self.watch {
            if w.vnet == self.origin_vnet
                && view.vc_status(w.port, w.vnet, w.vc) == VcStatus::Waiting(origin_out)
            {
                return Some((w.port, w.vnet, w.vc, origin_out));
            }
            // The watched VC moved on; check siblings at the same port.
            let vc = self.find_freezable(view, w.port, self.origin_vnet, origin_out)?;
            return Some((w.port, self.origin_vnet, vc, origin_out));
        }
        None
    }

    /// Finds a not-yet-frozen VC at (port, vnet) whose head waits on
    /// `out_port`.
    fn find_freezable(
        &self,
        view: &impl SpinRouterView,
        port: PortId,
        vnet: Vnet,
        out_port: PortId,
    ) -> Option<VcId> {
        (0..view.num_vcs(port, vnet)).map(VcId).find(|&vc| {
            view.vc_status(port, vnet, vc) == VcStatus::Waiting(out_port)
                && !self.frozen.contains(&FrozenVc {
                    in_port: port,
                    vnet,
                    vc,
                    out_port,
                })
        })
    }

    fn freeze(
        &mut self,
        in_port: PortId,
        vnet: Vnet,
        vc: VcId,
        out_port: PortId,
        out: &mut Actions,
    ) {
        self.frozen.push(FrozenVc {
            in_port,
            vnet,
            vc,
            out_port,
        });
        out.push(Action::Freeze {
            in_port,
            vnet,
            vc,
            out_port,
        });
    }

    fn on_kill(
        &mut self,
        now: Cycle,
        view: &impl SpinRouterView,
        in_port: PortId,
        sm: Sm,
        out: &mut Actions,
    ) {
        let _ = in_port;
        if sm.sender == self.id && sm.path.is_empty() {
            if self.state == FsmState::KillMove {
                self.full_reset(now, view, out);
            }
            return;
        }
        if self.is_deadlock && self.source_id != Some(sm.sender) {
            return; // source-id mismatch: drop (Fig. 5(a) case II).
        }
        let Some(first) = sm.path.first() else { return };
        if sm.sender != self.id && self.is_deadlock {
            // Release this router and resume normal operation.
            self.unfreeze_all(out);
            self.is_deadlock = false;
            self.source_id = None;
            if matches!(self.state, FsmState::Frozen) {
                self.rearm(now, view);
            }
        }
        out.push(Action::SendSm {
            out_port: first,
            sm: Sm {
                path: sm.path.stripped(),
                ..sm
            },
        });
    }

    // ------------------------------------------------------------------
    // Per-cycle tick
    // ------------------------------------------------------------------

    /// Advances the FSM by one cycle. Must be called after SM deliveries.
    pub fn on_cycle(&mut self, now: Cycle, view: &impl SpinRouterView) -> Vec<Action> {
        let mut out = Actions::new();
        match self.state {
            FsmState::Off => {
                self.rearm(now, view);
            }
            FsmState::DeadlockDetection => {
                self.tick_detection(now, view, &mut out);
            }
            FsmState::Move => {
                if now >= self.deadline {
                    self.start_kill(now, &mut out);
                }
            }
            FsmState::KillMove => {
                if now >= self.deadline {
                    // The kill itself was lost; release locally and retry
                    // detection from scratch.
                    self.full_reset(now, view, &mut out);
                }
            }
            FsmState::Frozen | FsmState::ForwardProgress => {
                if !self.spinning && now >= self.deadline {
                    self.spinning = true;
                    self.stats.spins += 1;
                    if self.state == FsmState::ForwardProgress {
                        self.stats.spins_initiated += 1;
                    }
                    out.push(Action::StartSpin);
                }
            }
            FsmState::ProbeMove => {
                if now >= self.deadline {
                    if self.probe_move_pending_send {
                        self.send_probe_move(now, &mut out);
                    } else {
                        self.start_kill(now, &mut out);
                    }
                }
            }
        }
        out.into_vec()
    }

    fn tick_detection(&mut self, now: Cycle, view: &impl SpinRouterView, out: &mut Actions) {
        // Re-point the counter whenever the watched packet departed.
        let stale = match self.watch {
            None => true,
            Some(w) => {
                let status = view.vc_status(w.port, w.vnet, w.vc);
                !status.is_occupied()
                    || status == VcStatus::Ejecting
                    || view.vc_packet(w.port, w.vnet, w.vc) != Some(w.packet)
            }
        };
        if stale {
            self.rearm(now, view);
            if self.state != FsmState::DeadlockDetection {
                return;
            }
        }
        if now >= self.deadline {
            let w = self.watch.expect("detection state always has a watch");
            if let VcStatus::Waiting(port) = view.vc_status(w.port, w.vnet, w.vc) {
                self.stats.probes_sent += 1;
                let window = 4 * self.cfg.t_dd.max(1);
                self.outstanding_probes.retain(|&(l, ..)| l + window >= now);
                self.outstanding_probes
                    .push((now, w.port, w.vnet, w.vc, port));
                out.push(Action::SendSm {
                    out_port: port,
                    sm: Sm::probe(self.id, w.vnet, now, self.cfg.ttl()),
                });
            }
            // Rotate the watch to the next blocked VC. A probe whose
            // dependence chain merely feeds INTO a cycle circulates and
            // never returns; the router must eventually probe each of its
            // blocked VCs so that every cycle is probed by a VC that lies
            // ON it. (Keeping the counter glued to one stuck VC, read
            // literally from the paper's FSM, leaves cycles containing only
            // tail-watching routers undetectable forever.)
            self.rearm(now, view);
        }
    }

    /// Points the counter at the next occupied, non-ejecting VC on a
    /// network port (round-robin after the current watch), or turns Off.
    fn rearm(&mut self, now: Cycle, view: &impl SpinRouterView) {
        let candidates = self.watch_candidates(view);
        if candidates.is_empty() {
            self.state = FsmState::Off;
            self.watch = None;
            return;
        }
        let next = match self.watch {
            None => candidates[0],
            Some(w) => {
                let key = (w.port, w.vnet, w.vc);
                candidates
                    .iter()
                    .copied()
                    .find(|c| (c.port, c.vnet, c.vc) > key)
                    .unwrap_or(candidates[0])
            }
        };
        self.watch = Some(next);
        self.state = FsmState::DeadlockDetection;
        self.deadline = now + self.cfg.t_dd;
    }

    fn watch_candidates(&self, view: &impl SpinRouterView) -> SmallVec<[Watch; 8]> {
        let mut v = SmallVec::new();
        // Occupied-slot iteration (ascending, like the old full scan) so
        // the per-cycle rearm costs the number of buffered packets, not the
        // router's total slot count.
        view.for_each_occupied(&mut |port, vnet, vc| {
            if !view.is_network_port(port) {
                return;
            }
            let status = view.vc_status(port, vnet, vc);
            if status.is_occupied() && status != VcStatus::Ejecting {
                if let Some(packet) = view.vc_packet(port, vnet, vc) {
                    v.push(Watch {
                        port,
                        vnet,
                        vc,
                        packet,
                    });
                }
            }
        });
        v
    }

    fn start_kill(&mut self, now: Cycle, out: &mut Actions) {
        let (Some(path), Some(origin)) = (self.loop_buffer.clone(), self.origin_out) else {
            // Nothing to kill; just reset locally at the next tick.
            self.state = FsmState::KillMove;
            self.deadline = now;
            return;
        };
        self.stats.kills_sent += 1;
        self.state = FsmState::KillMove;
        self.deadline = now + self.loop_latency + 1;
        // Our own pending freezes (if any) are stale now.
        self.unfreeze_all(out);
        self.is_deadlock = false;
        self.source_id = None;
        out.push(Action::SendSm {
            out_port: origin,
            sm: Sm {
                kind: SmKind::KillMove,
                sender: self.id,
                vnet: self.origin_vnet,
                path,
                spin_cycle: None,
                launch_cycle: now,
                ttl: self.cfg.ttl(),
            },
        });
    }

    fn send_probe_move(&mut self, now: Cycle, out: &mut Actions) {
        let (Some(path), Some(origin)) = (self.loop_buffer.clone(), self.origin_out) else {
            self.state = FsmState::Off;
            return;
        };
        self.probe_move_pending_send = false;
        self.spin_cycle = now + self.cfg.spin_offset as Cycle * self.loop_latency + SPIN_SLACK;
        self.deadline = now + self.loop_latency + 1;
        self.stats.probe_moves_sent += 1;
        out.push(Action::SendSm {
            out_port: origin,
            sm: Sm {
                kind: SmKind::ProbeMove,
                sender: self.id,
                vnet: self.origin_vnet,
                path,
                spin_cycle: Some(self.spin_cycle),
                launch_cycle: now,
                ttl: self.cfg.ttl(),
            },
        });
    }

    /// Host callback: every frozen packet of this router has fully streamed
    /// out. Completes the spin and either schedules a `probe_move`
    /// (initiator, optimisation on) or resumes normal operation.
    pub fn notify_spin_complete(&mut self, now: Cycle, view: &impl SpinRouterView) -> Vec<Action> {
        let mut out = Actions::new();
        self.spinning = false;
        self.unfreeze_all(&mut out);
        self.is_deadlock = false;
        self.source_id = None;
        match self.state {
            FsmState::ForwardProgress if self.cfg.probe_move_opt => {
                self.state = FsmState::ProbeMove;
                self.probe_move_pending_send = true;
                // Give the slowest packet in the loop time to finish its
                // stream, land downstream and recompute its route before
                // re-probing, or the probe_move would race the very
                // dependence it checks.
                self.deadline = now + 2 * self.cfg.max_packet_len as Cycle + 8;
            }
            _ => {
                self.loop_buffer = None;
                self.origin_out = None;
                self.watch = None;
                self.rearm(now, view);
            }
        }
        out.into_vec()
    }

    fn unfreeze_all(&mut self, out: &mut Actions) {
        if !self.frozen.is_empty() {
            self.frozen.clear();
            out.push(Action::UnfreezeAll);
        }
    }

    /// Host callback: a network link incident to this router just died (or
    /// healed). Any in-progress detection or recovery may reference the
    /// changed port — probes describe a loop through it, a move may expect
    /// flits over it — so the only safe reaction is the one already used
    /// when a kill SM is lost: drop all protocol state, unfreeze
    /// everything, and re-arm detection from scratch. Routers elsewhere in
    /// a broken loop recover the same way through their own deadline
    /// timeouts.
    pub fn on_link_fault(&mut self, now: Cycle, view: &impl SpinRouterView) -> Vec<Action> {
        let mut out = Actions::new();
        self.full_reset(now, view, &mut out);
        out.into_vec()
    }

    fn full_reset(&mut self, now: Cycle, view: &impl SpinRouterView, out: &mut Actions) {
        self.unfreeze_all(out);
        self.is_deadlock = false;
        self.source_id = None;
        self.loop_buffer = None;
        self.origin_out = None;
        self.spinning = false;
        self.probe_move_pending_send = false;
        self.watch = None;
        self.rearm(now, view);
    }
}
