//! The SPIN deadlock-recovery protocol (the paper's contribution).
//!
//! SPIN (*Synchronized Progress in Interconnection Networks*, ISCA 2018)
//! treats a routing deadlock not as a lack of buffers but as a lack of
//! coordination: if every router in a deadlocked ring forwards its blocked
//! packet *at exactly the same cycle*, all packets move one hop — a *spin* —
//! without any free buffer existing beforehand. For minimal routing at most
//! `m - 1` spins resolve a deadlocked ring of length `m`; for non-minimal
//! routing with misroute bound `p`, at most `m·p + (m-1)` spins.
//!
//! This crate implements the paper's distributed realisation (Sec. IV) as a
//! pure per-router state machine, [`SpinAgent`]:
//!
//! * a seven-state counter FSM (Fig. 4a) with a configurable deadlock
//!   detection threshold `t_DD`;
//! * four special messages ([`Sm`]): `probe` (trace and confirm the
//!   dependence loop, forking at multi-dependence ports), `move` (announce
//!   the spin cycle and freeze the loop), `probe_move` (re-probe + freeze
//!   for subsequent spins) and `kill_move` (cancel a spin whose loop
//!   dissolved);
//! * the spin-cycle arithmetic: `spin = move-send cycle + 2 × loop latency`,
//!   reserving a kill window equal to one loop traversal;
//! * rotating router priorities for special-message contention.
//!
//! The agent is driven by a host (the simulator): the host delivers special
//! messages and cycle ticks, exposes router buffer state through
//! [`SpinRouterView`], and applies the returned [`Action`]s (send an SM,
//! freeze a VC, start streaming frozen packets). This keeps the protocol
//! fully unit-testable without a network.
//!
//! # Examples
//!
//! Drive a single agent far enough to emit a probe:
//!
//! ```
//! use spin_core::{SpinAgent, SpinConfig, Action, SmKind, TableRouter, VcStatus};
//! use spin_types::{PortId, RouterId, VcId, Vnet};
//!
//! let cfg = SpinConfig { t_dd: 16, ..SpinConfig::default() };
//! let mut agent = SpinAgent::new(RouterId(0), cfg);
//! // One network input port (p1) whose only VC holds a packet stuck on p2.
//! let mut router = TableRouter::new(3, 1, 1);
//! router.set_network_ports(&[PortId(1), PortId(2)]);
//! router.set_status(PortId(1), Vnet(0), VcId(0), VcStatus::Waiting(PortId(2)));
//! router.set_packet(PortId(1), Vnet(0), VcId(0), Some(spin_types::PacketId(7)));
//!
//! let mut probe_sent = false;
//! for now in 0..64 {
//!     for action in agent.on_cycle(now, &router) {
//!         if let Action::SendSm { sm, .. } = action {
//!             assert_eq!(sm.kind, SmKind::Probe);
//!             probe_sent = true;
//!         }
//!     }
//! }
//! assert!(probe_sent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod priority;
mod sm;
mod view;

pub use agent::{Action, FrozenVc, FsmState, SpinAgent, SpinStats};
pub use priority::RotatingPriority;
pub use sm::{LoopPath, Sm, SmKind};
pub use view::{SpinRouterView, TableRouter, VcStatus};

use spin_types::Cycle;

/// Configuration of the SPIN protocol, shared by every router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinConfig {
    /// Deadlock-detection timeout `t_DD` in cycles (paper default 128): how
    /// long the watched packet may sit still before a probe is launched.
    pub t_dd: Cycle,
    /// Number of routers in the network (for rotating priority and the
    /// probe TTL).
    pub num_routers: u32,
    /// Rotating-priority epoch length multiplier: epoch = `epoch_factor ×
    /// t_dd` (paper uses 4).
    pub epoch_factor: u32,
    /// Spin-cycle offset multiplier: spin cycle = send + `spin_offset ×
    /// loop latency` (paper uses 2 to leave a kill_move window; the ablation
    /// bench compares 1).
    pub spin_offset: u32,
    /// Probe time-to-live in hops; forked ghost probes are dropped after
    /// this many hops. Defaults to `4 × num_routers` when 0.
    pub probe_ttl: u32,
    /// Whether probes fork at ports whose VCs wait on several distinct
    /// outports (paper: yes; ablation: no — drop instead).
    pub probe_forking: bool,
    /// Whether a router drops incoming probes whose sender has a lower
    /// rotating dynamic priority than itself (Sec. IV-C1). This is what
    /// guarantees a single initiator per dependence loop; disabling it
    /// (ablation) leaves only the TTL to stop ghost probes.
    pub priority_probe_drop: bool,
    /// Whether the multi-spin `probe_move` optimisation is enabled
    /// (Sec. IV-B4).
    pub probe_move_opt: bool,
    /// Longest packet in flits; used to schedule the post-spin `probe_move`
    /// after every frozen packet has fully streamed out.
    pub max_packet_len: u16,
}

impl SpinConfig {
    /// The paper's defaults for a network of `num_routers` routers.
    pub fn for_network(num_routers: u32) -> Self {
        SpinConfig {
            num_routers,
            ..Self::default()
        }
    }

    /// Effective probe TTL.
    pub fn ttl(&self) -> u32 {
        if self.probe_ttl == 0 {
            4 * self.num_routers.max(1)
        } else {
            self.probe_ttl
        }
    }

    /// Rotating-priority epoch length in cycles.
    pub fn epoch_len(&self) -> Cycle {
        (self.epoch_factor as Cycle).max(1) * self.t_dd.max(1)
    }
}

impl Default for SpinConfig {
    fn default() -> Self {
        SpinConfig {
            t_dd: 128,
            num_routers: 64,
            epoch_factor: 4,
            spin_offset: 2,
            probe_ttl: 0,
            probe_forking: true,
            priority_probe_drop: true,
            probe_move_opt: true,
            max_packet_len: 5,
        }
    }
}
