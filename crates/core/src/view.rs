//! The read-only view of router buffer state the SPIN agent consults, plus a
//! table-driven implementation for tests and examples.

use spin_types::{PacketId, PortId, VcId, Vnet};

/// What a virtual channel at some input port is currently doing, as seen by
/// the SPIN agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcStatus {
    /// No packet buffered.
    Empty,
    /// Head packet is waiting to leave through a local (ejection) port.
    /// Ejecting packets can never be part of an in-network dependence loop
    /// (the paper drops probes at such ports).
    Ejecting,
    /// Head packet is buffered but its route has not been computed yet
    /// (transient, typically one cycle).
    Routing,
    /// Head packet wants the given network output port and is blocked.
    Waiting(PortId),
}

impl VcStatus {
    /// True if a packet occupies the VC.
    pub fn is_occupied(self) -> bool {
        !matches!(self, VcStatus::Empty)
    }

    /// The network outport the head packet waits on, if known.
    pub fn waiting_on(self) -> Option<PortId> {
        match self {
            VcStatus::Waiting(p) => Some(p),
            _ => None,
        }
    }
}

/// Read-only router state exposed to [`SpinAgent`](crate::SpinAgent).
///
/// The simulator implements this on its router structure; tests use
/// [`TableRouter`].
pub trait SpinRouterView {
    /// Total number of ports (local + network).
    fn num_ports(&self) -> u8;
    /// Number of virtual networks.
    fn num_vnets(&self) -> u8;
    /// Number of VCs per (input port, vnet).
    fn num_vcs(&self, port: PortId, vnet: Vnet) -> u8;
    /// True if `port` is a connected network port (only network input ports
    /// can hold deadlocked packets; the detection counter ignores local
    /// ports, per Sec. IV-B).
    fn is_network_port(&self, port: PortId) -> bool;
    /// Status of one VC.
    fn vc_status(&self, port: PortId, vnet: Vnet, vc: VcId) -> VcStatus;
    /// Id of the head packet in the VC, used by the detection counter to
    /// notice that the watched packet moved.
    fn vc_packet(&self, port: PortId, vnet: Vnet, vc: VcId) -> Option<PacketId>;

    /// Calls `f` for every occupied VC, in ascending (port, vnet, vc)
    /// order — the order a full slot scan visits them. The default scans
    /// every slot through [`SpinRouterView::vc_status`]; implementations
    /// backed by an occupancy index (the simulator's router) override it to
    /// visit only occupied slots, which keeps the agent's per-cycle watch
    /// scan proportional to buffered packets rather than router radix.
    fn for_each_occupied(&self, f: &mut dyn FnMut(PortId, Vnet, VcId)) {
        for port in 0..self.num_ports() {
            let port = PortId(port);
            for vnet in 0..self.num_vnets() {
                let vnet = Vnet(vnet);
                for vc in 0..self.num_vcs(port, vnet) {
                    let vc = VcId(vc);
                    if self.vc_status(port, vnet, vc).is_occupied() {
                        f(port, vnet, vc);
                    }
                }
            }
        }
    }
}

/// A simple table-backed [`SpinRouterView`] for unit tests, documentation
/// examples and protocol-level experiments.
#[derive(Debug, Clone)]
pub struct TableRouter {
    ports: u8,
    vnets: u8,
    vcs: u8,
    network: Vec<bool>,
    status: Vec<VcStatus>,
    packet: Vec<Option<PacketId>>,
}

impl TableRouter {
    /// Creates a router with `ports` ports, `vnets` vnets and `vcs` VCs per
    /// (port, vnet), all VCs empty and all ports local.
    pub fn new(ports: u8, vnets: u8, vcs: u8) -> Self {
        let n = ports as usize * vnets as usize * vcs as usize;
        TableRouter {
            ports,
            vnets,
            vcs,
            network: vec![false; ports as usize],
            status: vec![VcStatus::Empty; n],
            packet: vec![None; n],
        }
    }

    fn idx(&self, port: PortId, vnet: Vnet, vc: VcId) -> usize {
        (port.index() * self.vnets as usize + vnet.index()) * self.vcs as usize + vc.index()
    }

    /// Marks the given ports as network ports.
    pub fn set_network_ports(&mut self, ports: &[PortId]) {
        for p in ports {
            self.network[p.index()] = true;
        }
    }

    /// Sets the status of one VC.
    pub fn set_status(&mut self, port: PortId, vnet: Vnet, vc: VcId, s: VcStatus) {
        let i = self.idx(port, vnet, vc);
        self.status[i] = s;
    }

    /// Sets the head packet of one VC.
    pub fn set_packet(&mut self, port: PortId, vnet: Vnet, vc: VcId, p: Option<PacketId>) {
        let i = self.idx(port, vnet, vc);
        self.packet[i] = p;
    }
}

impl SpinRouterView for TableRouter {
    fn num_ports(&self) -> u8 {
        self.ports
    }
    fn num_vnets(&self) -> u8 {
        self.vnets
    }
    fn num_vcs(&self, _port: PortId, _vnet: Vnet) -> u8 {
        self.vcs
    }
    fn is_network_port(&self, port: PortId) -> bool {
        self.network[port.index()]
    }
    fn vc_status(&self, port: PortId, vnet: Vnet, vc: VcId) -> VcStatus {
        self.status[self.idx(port, vnet, vc)]
    }
    fn vc_packet(&self, port: PortId, vnet: Vnet, vc: VcId) -> Option<PacketId> {
        self.packet[self.idx(port, vnet, vc)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates() {
        assert!(!VcStatus::Empty.is_occupied());
        assert!(VcStatus::Ejecting.is_occupied());
        assert!(VcStatus::Routing.is_occupied());
        assert!(VcStatus::Waiting(PortId(2)).is_occupied());
        assert_eq!(VcStatus::Waiting(PortId(2)).waiting_on(), Some(PortId(2)));
        assert_eq!(VcStatus::Ejecting.waiting_on(), None);
    }

    #[test]
    fn table_router_roundtrip() {
        let mut r = TableRouter::new(5, 3, 2);
        r.set_network_ports(&[PortId(1), PortId(2)]);
        r.set_status(PortId(1), Vnet(2), VcId(1), VcStatus::Waiting(PortId(3)));
        r.set_packet(PortId(1), Vnet(2), VcId(1), Some(PacketId(9)));
        assert!(r.is_network_port(PortId(1)));
        assert!(!r.is_network_port(PortId(0)));
        assert_eq!(
            r.vc_status(PortId(1), Vnet(2), VcId(1)),
            VcStatus::Waiting(PortId(3))
        );
        assert_eq!(r.vc_packet(PortId(1), Vnet(2), VcId(1)), Some(PacketId(9)));
        assert_eq!(r.vc_status(PortId(1), Vnet(2), VcId(0)), VcStatus::Empty);
        assert_eq!(r.num_ports(), 5);
        assert_eq!(r.num_vnets(), 3);
        assert_eq!(r.num_vcs(PortId(0), Vnet(0)), 2);
    }
}
