//! The "principle of rotating priority among routers" (Sec. IV-C1).
//!
//! For a network with `N` routers, the system starts with router `N-1`
//! having the highest priority down to router `0`; after every epoch the
//! assignment rotates round-robin so that every router eventually holds the
//! highest priority for a full epoch. The epoch is `4 × t_DD` by default —
//! long enough for the top-priority router to detect a deadlock, send a
//! probe and receive it back without losing a contention.

use crate::SpinConfig;
use spin_types::{Cycle, RouterId};

/// Computes dynamic router priorities for special-message contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotatingPriority {
    num_routers: u32,
    epoch_len: Cycle,
}

impl RotatingPriority {
    /// Builds the priority schedule from the protocol configuration.
    pub fn new(cfg: &SpinConfig) -> Self {
        RotatingPriority {
            num_routers: cfg.num_routers.max(1),
            epoch_len: cfg.epoch_len(),
        }
    }

    /// Builds a schedule directly from a router count and epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `num_routers == 0` or `epoch_len == 0`.
    pub fn with_epoch(num_routers: u32, epoch_len: Cycle) -> Self {
        assert!(num_routers > 0, "need at least one router");
        assert!(epoch_len > 0, "epoch length must be positive");
        RotatingPriority {
            num_routers,
            epoch_len,
        }
    }

    /// Dynamic priority of `router` at cycle `now`; higher wins contention.
    /// Within any single cycle all priorities are distinct.
    pub fn priority(&self, router: RouterId, now: Cycle) -> u32 {
        let epoch = (now / self.epoch_len) % self.num_routers as Cycle;
        ((router.0 as Cycle + epoch) % self.num_routers as Cycle) as u32
    }

    /// The epoch length in cycles.
    pub fn epoch_len(&self) -> Cycle {
        self.epoch_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_distinct_within_a_cycle() {
        let rp = RotatingPriority::with_epoch(8, 16);
        for now in [0u64, 15, 16, 160, 1000] {
            let mut seen: Vec<u32> = (0..8).map(|r| rp.priority(RouterId(r), now)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..8).collect::<Vec<_>>(), "cycle {now}");
        }
    }

    #[test]
    fn every_router_eventually_holds_top_priority() {
        let rp = RotatingPriority::with_epoch(5, 10);
        let mut held = [false; 5];
        for epoch in 0..5u64 {
            let now = epoch * 10;
            for r in 0..5u32 {
                if rp.priority(RouterId(r), now) == 4 {
                    held[r as usize] = true;
                }
            }
        }
        assert!(
            held.iter().all(|&h| h),
            "rotation missed a router: {held:?}"
        );
    }

    #[test]
    fn priority_stable_within_epoch() {
        let rp = RotatingPriority::with_epoch(6, 32);
        for r in 0..6u32 {
            let base = rp.priority(RouterId(r), 64);
            for now in 64..96 {
                assert_eq!(rp.priority(RouterId(r), now), base);
            }
        }
    }

    #[test]
    fn from_config() {
        let cfg = SpinConfig {
            t_dd: 100,
            epoch_factor: 4,
            num_routers: 10,
            ..Default::default()
        };
        let rp = RotatingPriority::new(&cfg);
        assert_eq!(rp.epoch_len(), 400);
    }
}
