//! Special messages (SMs): the bufferless control messages SPIN rides over
//! regular links.

use spin_types::{Cycle, PortId, RouterId, Vnet};
use std::fmt;

/// The four special message classes of Sec. IV, ordered by link-contention
/// priority: `ProbeMove > Move = KillMove > Probe` (all SMs outrank data
/// flits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmKind {
    /// Traces a suspected dependence loop; forked at multi-dependence ports.
    Probe,
    /// Announces the spin cycle and freezes the loop's packets.
    Move,
    /// Joint probe + move used for the second and later spins of the same
    /// loop (Sec. IV-B4).
    ProbeMove,
    /// Cancels a pending spin whose dependence chain dissolved.
    KillMove,
}

impl SmKind {
    /// Link-contention priority class (higher wins the link).
    pub fn priority_class(self) -> u8 {
        match self {
            SmKind::ProbeMove => 3,
            SmKind::Move | SmKind::KillMove => 2,
            SmKind::Probe => 1,
        }
    }
}

impl fmt::Display for SmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SmKind::Probe => "probe",
            SmKind::Move => "move",
            SmKind::ProbeMove => "probe_move",
            SmKind::KillMove => "kill_move",
        };
        f.write_str(s)
    }
}

/// The sequence of output-port ids describing a dependence loop, excluding
/// the initiator's own first hop: element `i` is the outport the SM must
/// leave from at the `i`-th router after the initiator. A probe grows this
/// path hop by hop; move/probe_move/kill_move consume it front-first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct LoopPath(pub Vec<PortId>);

impl LoopPath {
    /// An empty path.
    pub fn new() -> Self {
        LoopPath(Vec::new())
    }

    /// Number of recorded hops.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no hops are recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a copy with `port` appended (probe forking keeps the
    /// original intact).
    pub fn appended(&self, port: PortId) -> LoopPath {
        let mut v = self.0.clone();
        v.push(port);
        LoopPath(v)
    }

    /// The next outport, if any.
    pub fn first(&self) -> Option<PortId> {
        self.0.first().copied()
    }

    /// Returns a copy with the first hop stripped (move-style forwarding).
    pub fn stripped(&self) -> LoopPath {
        LoopPath(self.0.iter().skip(1).copied().collect())
    }
}

impl fmt::Display for LoopPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// A special message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sm {
    /// Message class.
    pub kind: SmKind,
    /// The initiating router (recovery owner).
    pub sender: RouterId,
    /// The vnet whose buffer dependence this recovery concerns. Routing
    /// deadlocks are per message class; SMs never mix vnets.
    pub vnet: Vnet,
    /// Loop path: grown by probes, consumed by the others.
    pub path: LoopPath,
    /// The agreed spin cycle (move / probe_move only).
    pub spin_cycle: Option<Cycle>,
    /// Cycle the originating probe was launched, to measure loop latency.
    pub launch_cycle: Cycle,
    /// Remaining hops before a forked probe is discarded.
    pub ttl: u32,
}

impl Sm {
    /// Builds a fresh probe.
    pub fn probe(sender: RouterId, vnet: Vnet, launch_cycle: Cycle, ttl: u32) -> Self {
        Sm {
            kind: SmKind::Probe,
            sender,
            vnet,
            path: LoopPath::new(),
            spin_cycle: None,
            launch_cycle,
            ttl,
        }
    }
}

impl fmt::Display for Sm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}<{} {} {}>",
            self.kind, self.sender, self.vnet, self.path
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_classes_match_paper_order() {
        assert!(SmKind::ProbeMove.priority_class() > SmKind::Move.priority_class());
        assert_eq!(
            SmKind::Move.priority_class(),
            SmKind::KillMove.priority_class()
        );
        assert!(SmKind::Move.priority_class() > SmKind::Probe.priority_class());
    }

    #[test]
    fn loop_path_append_strip_roundtrip() {
        let p = LoopPath::new()
            .appended(PortId(2))
            .appended(PortId(4))
            .appended(PortId(1));
        assert_eq!(p.len(), 3);
        assert_eq!(p.first(), Some(PortId(2)));
        let s = p.stripped();
        assert_eq!(s.first(), Some(PortId(4)));
        assert_eq!(s.stripped().stripped(), LoopPath::new());
        assert!(s.stripped().stripped().is_empty());
    }

    #[test]
    fn display_formats() {
        let sm = Sm::probe(RouterId(5), Vnet(0), 100, 16);
        assert_eq!(sm.to_string(), "probe<r5 vn0 []>");
        let p = LoopPath::new().appended(PortId(1)).appended(PortId(3));
        assert_eq!(p.to_string(), "[p1,p3]");
    }
}
