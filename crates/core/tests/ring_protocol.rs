//! Protocol-level tests of the SPIN agent on a ring of table-driven
//! routers, exercising the paper's walkthrough (Sec. IV-B) end to end
//! without the cycle-accurate network simulator: deadlock detection, probe
//! traversal, move/freeze, the synchronized spin, the probe_move
//! optimisation, and kill_move cancellation.

use spin_core::{Action, FsmState, SpinAgent, SpinConfig, TableRouter, VcStatus};
use spin_types::{Cycle, PacketId, PortId, RouterId, VcId, Vnet};

const CW: PortId = PortId(1); // towards router (i + 1) % n
const CCW: PortId = PortId(2); // towards router (i - 1) % n
const VN: Vnet = Vnet(0);
const VC: VcId = VcId(0);

/// A ring of routers with 1-cycle links, bufferless SM transport, and
/// hand-managed VC state. Packet movement is emulated, not simulated: when
/// every router starts its spin, the harness rotates the buffered packets
/// one hop clockwise.
struct RingNet {
    agents: Vec<SpinAgent>,
    routers: Vec<TableRouter>,
    in_flight: Vec<(Cycle, usize, PortId, spin_core::Sm)>,
    spin_started_at: Vec<Option<Cycle>>,
    spins_completed: usize,
    frozen_count: Vec<usize>,
    now: Cycle,
}

impl RingNet {
    fn new(n: usize, t_dd: Cycle) -> Self {
        let cfg = SpinConfig {
            t_dd,
            num_routers: n as u32,
            max_packet_len: 1,
            ..SpinConfig::default()
        };
        let mut routers = Vec::new();
        let mut agents = Vec::new();
        for i in 0..n {
            let mut r = TableRouter::new(3, 1, 1);
            r.set_network_ports(&[CW, CCW]);
            routers.push(r);
            agents.push(SpinAgent::new(RouterId(i as u32), cfg));
        }
        RingNet {
            agents,
            routers,
            in_flight: Vec::new(),
            spin_started_at: vec![None; n],
            spins_completed: 0,
            frozen_count: vec![0; n],
            now: 0,
        }
    }

    fn n(&self) -> usize {
        self.routers.len()
    }

    /// Puts a clockwise-blocked packet in every router's CCW input VC: the
    /// canonical ring deadlock.
    fn install_ring_deadlock(&mut self) {
        for i in 0..self.n() {
            self.routers[i].set_status(CCW, VN, VC, VcStatus::Waiting(CW));
            self.routers[i].set_packet(CCW, VN, VC, Some(PacketId(i as u64)));
        }
    }

    fn apply(&mut self, i: usize, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::SendSm { out_port, sm } => {
                    // Ring wiring: CW port of i feeds CCW port of i+1.
                    let (peer, in_port) = if out_port == CW {
                        ((i + 1) % self.n(), CCW)
                    } else if out_port == CCW {
                        ((i + self.n() - 1) % self.n(), CW)
                    } else {
                        panic!("SM sent out of a local port");
                    };
                    self.in_flight.push((self.now + 1, peer, in_port, sm));
                }
                Action::Freeze { .. } => self.frozen_count[i] += 1,
                Action::UnfreezeAll => self.frozen_count[i] = 0,
                Action::StartSpin => {
                    assert!(
                        self.spin_started_at[i].is_none(),
                        "router {i} started a second spin before finishing"
                    );
                    self.spin_started_at[i] = Some(self.now);
                }
            }
        }
    }

    /// One network cycle: deliver due SMs, tick agents, emulate spins.
    fn step(&mut self) {
        self.now += 1;
        let due: Vec<_> = {
            let now = self.now;
            let (d, rest): (Vec<_>, Vec<_>) =
                self.in_flight.drain(..).partition(|(t, ..)| *t <= now);
            self.in_flight = rest;
            d
        };
        for (_, i, in_port, sm) in due {
            let actions = self.agents[i].on_sm(self.now, &self.routers[i], in_port, sm);
            self.apply(i, actions);
        }
        for i in 0..self.n() {
            let actions = self.agents[i].on_cycle(self.now, &self.routers[i]);
            self.apply(i, actions);
        }
        // Emulate the spin: once every router that froze a packet has
        // started, rotate packets one hop and report completion (packets
        // are 1 flit, so a spin takes one cycle).
        let started: Vec<usize> = (0..self.n())
            .filter(|&i| self.spin_started_at[i] == Some(self.now))
            .collect();
        if !started.is_empty() {
            // All participants must start in the same cycle - the paper's
            // core synchronization property.
            for i in 0..self.n() {
                if self.frozen_count[i] > 0 {
                    assert_eq!(
                        self.spin_started_at[i],
                        Some(self.now),
                        "router {i} frozen but not spinning at {}",
                        self.now
                    );
                }
            }
            // Rotate the deadlocked packets one hop clockwise.
            let ids: Vec<Option<PacketId>> = (0..self.n())
                .map(|i| self.routers[i].vc_packet_snapshot())
                .collect();
            for i in 0..self.n() {
                let from = (i + self.n() - 1) % self.n();
                self.routers[i].set_packet(CCW, VN, VC, ids[from]);
            }
            for i in started {
                self.spin_started_at[i] = None;
                self.spins_completed += 1;
                let actions = self.agents[i].notify_spin_complete(self.now, &self.routers[i]);
                self.apply(i, actions);
            }
        }
    }

    fn run(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step();
        }
    }

    fn total_frozen(&self) -> usize {
        self.frozen_count.iter().sum()
    }
}

/// Helper so the harness can read a packet back out of the table router.
trait PacketSnapshot {
    fn vc_packet_snapshot(&self) -> Option<PacketId>;
}
impl PacketSnapshot for TableRouter {
    fn vc_packet_snapshot(&self) -> Option<PacketId> {
        use spin_core::SpinRouterView;
        self.vc_packet(CCW, VN, VC)
    }
}

#[test]
fn ring_deadlock_detected_and_spun() {
    let mut net = RingNet::new(6, 32);
    net.install_ring_deadlock();
    net.run(400);
    assert!(
        net.spins_completed >= 6,
        "expected a full-ring spin, got {}",
        net.spins_completed
    );
    // Packets rotated at least one hop: router 0's buffer no longer holds
    // packet 0.
    let total_spins: u64 = net.agents.iter().map(|a| a.stats().spins).sum();
    assert!(total_spins >= 6);
    let initiators: u64 = net.agents.iter().map(|a| a.stats().spins_initiated).sum();
    assert!(initiators >= 1);
    // Probes were sent and at least one loop confirmed.
    let confirmed: u64 = net.agents.iter().map(|a| a.stats().loops_confirmed).sum();
    assert!(confirmed >= 1);
}

#[test]
fn spin_is_synchronized_across_the_ring() {
    // The harness itself asserts simultaneity inside step(); this test just
    // makes sure a spin actually happens on a minimal 3-ring.
    let mut net = RingNet::new(3, 16);
    net.install_ring_deadlock();
    net.run(300);
    assert!(net.spins_completed >= 3);
}

#[test]
fn deadlock_resolution_after_dependence_exits() {
    let mut net = RingNet::new(4, 16);
    net.install_ring_deadlock();
    // Run until the first spin completes.
    let mut guard = 0;
    while net.spins_completed < 4 && guard < 1000 {
        net.step();
        guard += 1;
    }
    assert!(guard < 1000, "no spin within 1000 cycles");
    // After the spin, pretend packet at router 2 now wants to eject: the
    // ring is broken.
    net.routers[2].set_status(CCW, VN, VC, VcStatus::Ejecting);
    net.run(400);
    // All agents must eventually return to a quiescent, unfrozen state.
    assert_eq!(net.total_frozen(), 0, "stale frozen VCs after resolution");
    for (i, a) in net.agents.iter().enumerate() {
        assert!(
            matches!(a.state(), FsmState::DeadlockDetection | FsmState::Off),
            "agent {i} stuck in {:?}",
            a.state()
        );
        assert!(!a.is_deadlock(), "agent {i} has stale is_deadlock");
    }
}

#[test]
fn vanished_dependence_triggers_kill_move() {
    let mut net = RingNet::new(5, 16);
    net.install_ring_deadlock();
    // Run until a move has frozen at least one router, then dissolve the
    // dependence at a router the move has not reached yet.
    let mut guard = 0;
    while net.total_frozen() == 0 && guard < 600 {
        net.step();
        guard += 1;
    }
    assert!(guard < 600, "no freeze observed");
    // Break the chain everywhere downstream: empty a VC.
    // Find a router that is not frozen yet and empty it.
    let victim = (0..5)
        .find(|&i| net.frozen_count[i] == 0)
        .expect("some router not yet frozen");
    net.routers[victim].set_status(CCW, VN, VC, VcStatus::Empty);
    net.routers[victim].set_packet(CCW, VN, VC, None);
    net.run(500);
    // The move must have died at `victim`, the initiator must have sent a
    // kill_move, and everything must be released.
    let kills: u64 = net.agents.iter().map(|a| a.stats().kills_sent).sum();
    assert!(kills >= 1, "no kill_move sent");
    assert_eq!(
        net.total_frozen(),
        0,
        "kill_move failed to release the loop"
    );
    for a in &net.agents {
        assert!(!a.is_deadlock());
    }
}

#[test]
fn no_false_recovery_without_deadlock() {
    // Buffers occupied but all ejecting: probes must never confirm a loop.
    let mut net = RingNet::new(4, 8);
    for i in 0..4 {
        net.routers[i].set_status(CCW, VN, VC, VcStatus::Ejecting);
        net.routers[i].set_packet(CCW, VN, VC, Some(PacketId(i as u64)));
    }
    net.run(200);
    let confirmed: u64 = net.agents.iter().map(|a| a.stats().loops_confirmed).sum();
    assert_eq!(confirmed, 0);
    assert_eq!(net.spins_completed, 0);
    // Ejecting packets are not watchable: agents sit in Off.
    for a in &net.agents {
        assert_eq!(a.state(), FsmState::Off);
    }
}

#[test]
fn congestion_probe_dropped_at_free_vc() {
    // One router has an empty VC: the "deadlock" is only congestion, and
    // the probe must be dropped there (no recovery).
    let mut net = RingNet::new(4, 8);
    net.install_ring_deadlock();
    net.routers[2].set_status(CCW, VN, VC, VcStatus::Empty);
    net.routers[2].set_packet(CCW, VN, VC, None);
    net.run(200);
    let probes: u64 = net.agents.iter().map(|a| a.stats().probes_sent).sum();
    let confirmed: u64 = net.agents.iter().map(|a| a.stats().loops_confirmed).sum();
    assert!(probes > 0, "detection never fired");
    assert_eq!(confirmed, 0, "a broken ring must not confirm");
    assert_eq!(net.spins_completed, 0);
}

#[test]
fn competing_initiators_resolve_one_recovery() {
    // All agents share the same t_DD so several detect simultaneously; the
    // protocol must still converge to a consistent, single recovery at a
    // time (Fig. 5(a)).
    let mut net = RingNet::new(8, 16);
    net.install_ring_deadlock();
    net.run(600);
    assert!(net.spins_completed >= 8, "deadlocked ring never spun");
    // No router may end up with more than one pending freeze per VC.
    for (i, &f) in net.frozen_count.iter().enumerate() {
        assert!(f <= 2, "router {i} accumulated {f} freezes");
    }
}

#[test]
fn probe_move_repeats_spin_while_deadlock_persists() {
    let mut net = RingNet::new(4, 16);
    net.install_ring_deadlock();
    net.run(800);
    // The ring harness keeps the dependence alive forever (packets rotate
    // but always block), so probe_move must drive repeated spins: far more
    // spins than full detect-probe-move cycles alone would produce.
    let probe_moves: u64 = net.agents.iter().map(|a| a.stats().probe_moves_sent).sum();
    assert!(probe_moves >= 1, "probe_move optimisation never used");
    assert!(
        net.spins_completed >= 8,
        "expected repeated spins, got {}",
        net.spins_completed
    );
}

#[test]
fn spin_offset_leaves_kill_window() {
    // White-box check of the spin-cycle arithmetic: with spin_offset = 2
    // the spin fires strictly after a kill_move issued at the move timeout
    // could traverse the loop.
    let cfg = SpinConfig {
        t_dd: 10,
        num_routers: 4,
        ..SpinConfig::default()
    };
    assert_eq!(cfg.spin_offset, 2);
    assert_eq!(cfg.epoch_len(), 40);
    assert_eq!(cfg.ttl(), 16);
}

#[test]
fn agent_stats_accumulate() {
    let mut net = RingNet::new(4, 16);
    net.install_ring_deadlock();
    net.run(300);
    let s: Vec<_> = net.agents.iter().map(|a| *a.stats()).collect();
    let probes: u64 = s.iter().map(|x| x.probes_sent).sum();
    let moves: u64 = s.iter().map(|x| x.moves_sent).sum();
    assert!(probes >= 1);
    assert!(moves >= 1);
}
