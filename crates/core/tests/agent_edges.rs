//! Focused unit tests of SpinAgent edge cases: probe drop rules (TTL,
//! forking toggle, duplicates, priority), move/kill handling with stale or
//! competing state, and the kill-on-vanished-dependence path.

use spin_core::{
    Action, FsmState, LoopPath, Sm, SmKind, SpinAgent, SpinConfig, TableRouter, VcStatus,
};
use spin_types::{Cycle, PacketId, PortId, RouterId, VcId, Vnet};

const VN: Vnet = Vnet(0);

fn cfg() -> SpinConfig {
    SpinConfig {
        t_dd: 16,
        num_routers: 8,
        ..SpinConfig::default()
    }
}

/// A 4-port router (p0 local; p1..p3 network) whose p1 VC waits on p2.
fn waiting_router() -> TableRouter {
    let mut r = TableRouter::new(4, 1, 2);
    r.set_network_ports(&[PortId(1), PortId(2), PortId(3)]);
    r.set_status(PortId(1), VN, VcId(0), VcStatus::Waiting(PortId(2)));
    r.set_packet(PortId(1), VN, VcId(0), Some(PacketId(1)));
    r.set_status(PortId(1), VN, VcId(1), VcStatus::Waiting(PortId(3)));
    r.set_packet(PortId(1), VN, VcId(1), Some(PacketId(2)));
    r
}

fn probe_from(sender: u32, launch: Cycle, ttl: u32) -> Sm {
    Sm::probe(RouterId(sender), VN, launch, ttl)
}

fn sends(actions: &[Action]) -> Vec<&Sm> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::SendSm { sm, .. } => Some(sm),
            _ => None,
        })
        .collect()
}

#[test]
fn probe_forks_across_distinct_outports() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    // Sender r7 has top rotating priority at cycle 0 (priority = id), so
    // the probe is not priority-dropped at r0.
    let actions = agent.on_sm(1, &router, PortId(1), probe_from(7, 0, 32));
    let sms = sends(&actions);
    assert_eq!(sms.len(), 2, "expected a fork to both waited-on outports");
    let ports: Vec<_> = actions
        .iter()
        .filter_map(|a| match a {
            Action::SendSm { out_port, .. } => Some(*out_port),
            _ => None,
        })
        .collect();
    assert!(ports.contains(&PortId(2)) && ports.contains(&PortId(3)));
    // Paths grew by the chosen outport and TTL decremented.
    for sm in sms {
        assert_eq!(sm.path.len(), 1);
        assert_eq!(sm.ttl, 31);
    }
}

#[test]
fn probe_dropped_when_forking_disabled() {
    let mut agent = SpinAgent::new(
        RouterId(0),
        SpinConfig {
            probe_forking: false,
            ..cfg()
        },
    );
    let router = waiting_router();
    let actions = agent.on_sm(1, &router, PortId(1), probe_from(7, 0, 32));
    assert!(
        sends(&actions).is_empty(),
        "no forking allowed in ablation mode"
    );
    assert_eq!(
        agent.stats().drop_no_dependence + agent.stats().drop_free_vc,
        0
    );
}

#[test]
fn probe_dropped_on_ttl() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    let actions = agent.on_sm(1, &router, PortId(1), probe_from(7, 0, 1));
    assert!(sends(&actions).is_empty());
    assert_eq!(agent.stats().drop_ttl, 1);
}

#[test]
fn probe_dropped_on_free_vc() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let mut router = waiting_router();
    router.set_status(PortId(1), VN, VcId(1), VcStatus::Empty);
    router.set_packet(PortId(1), VN, VcId(1), None);
    let actions = agent.on_sm(1, &router, PortId(1), probe_from(7, 0, 32));
    assert!(sends(&actions).is_empty());
    assert_eq!(agent.stats().drop_free_vc, 1);
}

#[test]
fn probe_dropped_on_priority() {
    // At cycle 0 priorities equal router ids: r5 outranks sender r2.
    let mut agent = SpinAgent::new(RouterId(5), cfg());
    let router = waiting_router();
    let actions = agent.on_sm(1, &router, PortId(1), probe_from(2, 0, 32));
    assert!(sends(&actions).is_empty());
    assert_eq!(agent.stats().drop_priority, 1);
}

#[test]
fn priority_drop_can_be_disabled() {
    let mut agent = SpinAgent::new(
        RouterId(5),
        SpinConfig {
            priority_probe_drop: false,
            ..cfg()
        },
    );
    let router = waiting_router();
    let actions = agent.on_sm(1, &router, PortId(1), probe_from(2, 0, 32));
    assert_eq!(sends(&actions).len(), 2);
    assert_eq!(agent.stats().drop_priority, 0);
}

#[test]
fn duplicate_probe_dropped_on_same_inport() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    let first = agent.on_sm(1, &router, PortId(1), probe_from(7, 0, 32));
    assert!(!sends(&first).is_empty());
    // The identical signature circulating back through the same in-port.
    let second = agent.on_sm(5, &router, PortId(1), probe_from(7, 0, 28));
    assert!(sends(&second).is_empty());
    assert_eq!(agent.stats().drop_dup, 1);
    // ... but a different in-port (figure-8 crossing) is forwarded.
    let mut r2 = waiting_router();
    r2.set_status(PortId(2), VN, VcId(0), VcStatus::Waiting(PortId(3)));
    r2.set_packet(PortId(2), VN, VcId(0), Some(PacketId(9)));
    r2.set_status(PortId(2), VN, VcId(1), VcStatus::Waiting(PortId(3)));
    r2.set_packet(PortId(2), VN, VcId(1), Some(PacketId(10)));
    let third = agent.on_sm(6, &r2, PortId(2), probe_from(7, 0, 27));
    assert!(
        !sends(&third).is_empty(),
        "figure-8 crossing must be forwarded"
    );
}

#[test]
fn move_freezes_and_forwards() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    let mv = Sm {
        kind: SmKind::Move,
        sender: RouterId(3),
        vnet: VN,
        path: LoopPath(vec![PortId(2), PortId(1)]),
        spin_cycle: Some(100),
        launch_cycle: 10,
        ttl: 32,
    };
    let actions = agent.on_sm(11, &router, PortId(1), mv);
    assert!(matches!(agent.state(), FsmState::Frozen));
    assert!(agent.is_deadlock());
    assert_eq!(agent.frozen().len(), 1);
    assert_eq!(agent.frozen()[0].out_port, PortId(2));
    let sms = sends(&actions);
    assert_eq!(sms.len(), 1);
    assert_eq!(sms[0].path, LoopPath(vec![PortId(1)]));
}

#[test]
fn move_with_no_matching_dependence_dies() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    // Path asks for p3-wanting VC at in-port 2, where nothing waits.
    let mv = Sm {
        kind: SmKind::Move,
        sender: RouterId(3),
        vnet: VN,
        path: LoopPath(vec![PortId(3)]),
        spin_cycle: Some(100),
        launch_cycle: 10,
        ttl: 32,
    };
    let actions = agent.on_sm(11, &router, PortId(2), mv);
    assert!(sends(&actions).is_empty());
    assert!(!agent.is_deadlock());
    assert!(agent.frozen().is_empty());
}

#[test]
fn competing_move_dropped_on_source_mismatch() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    let mk = |sender: u32, port: PortId| Sm {
        kind: SmKind::Move,
        sender: RouterId(sender),
        vnet: VN,
        path: LoopPath(vec![port]),
        spin_cycle: Some(100),
        launch_cycle: 10,
        ttl: 32,
    };
    let first = agent.on_sm(11, &router, PortId(1), mk(3, PortId(2)));
    assert_eq!(sends(&first).len(), 1);
    // A different initiator's move arriving while frozen: dropped.
    let second = agent.on_sm(12, &router, PortId(1), mk(5, PortId(3)));
    assert!(sends(&second).is_empty());
    // The same initiator's move visiting again (figure-8): accepted.
    let third = agent.on_sm(13, &router, PortId(1), mk(3, PortId(3)));
    assert_eq!(sends(&third).len(), 1);
    assert_eq!(agent.frozen().len(), 2);
}

#[test]
fn kill_unfreezes_and_forwards() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    let mv = Sm {
        kind: SmKind::Move,
        sender: RouterId(3),
        vnet: VN,
        path: LoopPath(vec![PortId(2)]),
        spin_cycle: Some(100),
        launch_cycle: 10,
        ttl: 32,
    };
    agent.on_sm(11, &router, PortId(1), mv);
    assert!(agent.is_deadlock());
    let kill = Sm {
        kind: SmKind::KillMove,
        sender: RouterId(3),
        vnet: VN,
        path: LoopPath(vec![PortId(2)]),
        spin_cycle: None,
        launch_cycle: 20,
        ttl: 32,
    };
    let actions = agent.on_sm(21, &router, PortId(1), kill);
    assert!(!agent.is_deadlock());
    assert!(agent.frozen().is_empty());
    assert!(actions.iter().any(|a| matches!(a, Action::UnfreezeAll)));
    assert_eq!(
        sends(&actions).len(),
        1,
        "kill must continue around the loop"
    );
    assert!(matches!(
        agent.state(),
        FsmState::DeadlockDetection | FsmState::Off
    ));
}

#[test]
fn kill_with_mismatched_source_dropped() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    let mv = Sm {
        kind: SmKind::Move,
        sender: RouterId(3),
        vnet: VN,
        path: LoopPath(vec![PortId(2)]),
        spin_cycle: Some(100),
        launch_cycle: 10,
        ttl: 32,
    };
    agent.on_sm(11, &router, PortId(1), mv);
    let kill = Sm {
        kind: SmKind::KillMove,
        sender: RouterId(6), // not the owner
        vnet: VN,
        path: LoopPath(vec![PortId(2)]),
        spin_cycle: None,
        launch_cycle: 20,
        ttl: 32,
    };
    let actions = agent.on_sm(21, &router, PortId(1), kill);
    assert!(
        agent.is_deadlock(),
        "foreign kill must not release the freeze"
    );
    assert!(sends(&actions).is_empty());
}

#[test]
fn frozen_router_spins_at_the_agreed_cycle() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let router = waiting_router();
    let mv = Sm {
        kind: SmKind::Move,
        sender: RouterId(3),
        vnet: VN,
        path: LoopPath(vec![PortId(2)]),
        spin_cycle: Some(50),
        launch_cycle: 10,
        ttl: 32,
    };
    agent.on_sm(11, &router, PortId(1), mv);
    for now in 12..50 {
        let actions = agent.on_cycle(now, &router);
        assert!(
            !actions.iter().any(|a| matches!(a, Action::StartSpin)),
            "spun early at {now}"
        );
    }
    let actions = agent.on_cycle(50, &router);
    assert!(actions.iter().any(|a| matches!(a, Action::StartSpin)));
    assert!(agent.is_spinning());
    // Completion returns the router to detection.
    let done = agent.notify_spin_complete(55, &router);
    assert!(done.iter().any(|a| matches!(a, Action::UnfreezeAll)));
    assert!(!agent.is_spinning());
    assert!(matches!(
        agent.state(),
        FsmState::DeadlockDetection | FsmState::Off
    ));
}

#[test]
fn detection_needs_occupied_network_vc() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let empty = TableRouter::new(4, 1, 2);
    for now in 0..40 {
        let actions = agent.on_cycle(now, &empty);
        assert!(actions.is_empty());
    }
    assert_eq!(agent.state(), FsmState::Off);
}

#[test]
fn ejecting_only_router_stays_off() {
    let mut agent = SpinAgent::new(RouterId(0), cfg());
    let mut router = TableRouter::new(4, 1, 1);
    router.set_network_ports(&[PortId(1)]);
    router.set_status(PortId(1), VN, VcId(0), VcStatus::Ejecting);
    router.set_packet(PortId(1), VN, VcId(0), Some(PacketId(1)));
    for now in 0..64 {
        assert!(agent.on_cycle(now, &router).is_empty());
    }
    assert_eq!(agent.state(), FsmState::Off);
    assert_eq!(agent.stats().probes_sent, 0);
}
