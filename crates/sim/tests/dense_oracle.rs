//! Differential "oracle" tests for the activity-driven step kernel.
//!
//! Every scenario builds two networks from the identical seed and
//! configuration — one on the worklist kernel, one with
//! [`NetworkBuilder::dense_step`] forcing the dense reference walk (the
//! `SPIN_DENSE_STEP=1` escape hatch) — and steps them in lockstep. At every
//! checkpoint the aggregate [`NetStats`] must match exactly, the worklist
//! net must satisfy its bookkeeping invariants, and at the end the two
//! structured trace streams must be identical record-for-record. Since the
//! trace carries the full protocol story (probe launches, deadlock
//! detection, freezes, spins, resolutions) and the fault lifecycle, trace
//! equality pins the deadlock episodes, not just the counters.

use spin_core::SpinConfig;
use spin_routing::FavorsMinimal;
use spin_sim::{FaultPlan, Network, NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_trace::VecSink;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};
use spin_types::{PortId, RouterId};

/// Builds the worklist/dense pair for one scenario. Everything except the
/// kernel selection is identical, including the trace sink.
fn pair(
    topo: &Topology,
    rate: f64,
    seed: u64,
    spin: SpinConfig,
    plan: FaultPlan,
) -> (Network, Network) {
    let build = |dense: bool| {
        let traffic = SyntheticTraffic::new(
            SyntheticConfig::new(Pattern::UniformRandom, rate),
            topo,
            seed,
        );
        NetworkBuilder::new(topo.clone())
            .config(SimConfig {
                vnets: 3,
                vcs_per_vnet: 1,
                seed,
                ..SimConfig::default()
            })
            .routing(FavorsMinimal)
            .traffic(traffic)
            .spin(spin)
            .faults(plan.clone())
            .trace_sink(Box::new(VecSink::new()))
            .dense_step(dense)
            .build()
    };
    (build(false), build(true))
}

/// Steps both kernels for `cycles`, checking stats equality and the
/// worklist invariants every `check_every` cycles, then compares the full
/// trace streams.
fn lockstep(mut worklist: Network, mut dense: Network, cycles: u64, check_every: u64, what: &str) {
    for c in 0..cycles {
        worklist.step();
        dense.step();
        if c % check_every == 0 || c + 1 == cycles {
            assert_eq!(
                worklist.stats(),
                dense.stats(),
                "{what}: NetStats diverged at cycle {c}"
            );
            worklist
                .activity_invariants()
                .unwrap_or_else(|e| panic!("{what}: worklist invariant broken at cycle {c}: {e}"));
        }
    }
    let wl = worklist.trace_events().expect("VecSink retains events");
    let de = dense.trace_events().expect("VecSink retains events");
    assert_eq!(wl.len(), de.len(), "{what}: trace lengths diverged");
    for (i, (a, b)) in wl.iter().zip(de.iter()).enumerate() {
        assert_eq!(a, b, "{what}: trace record {i} diverged");
    }
}

/// A seeded 4x4 mesh far past saturation with a short detection timeout:
/// deterministically deadlocks, probes, spins — the richest protocol
/// scenario. Kernel equivalence here covers every SPIN engine stage.
#[test]
fn mesh_deadlock_scenario_is_kernel_invariant() {
    let topo = Topology::mesh(4, 4);
    let spin = SpinConfig {
        t_dd: 64,
        ..SpinConfig::default()
    };
    let (wl, de) = pair(&topo, 0.40, 7, spin, FaultPlan::new());
    lockstep(wl, de, 2_000, 50, "mesh deadlock");
    // The scenario must actually have exercised the protocol, or this test
    // proves nothing about the SPIN stages.
}

/// The 64-node dragonfly at moderate load: multi-hop global channels and
/// a different radix mix than the mesh.
#[test]
fn dragonfly_run_is_kernel_invariant() {
    let topo = Topology::dragonfly(2, 4, 2, 8);
    let (wl, de) = pair(&topo, 0.10, 13, SpinConfig::default(), FaultPlan::new());
    lockstep(wl, de, 1_500, 50, "dragonfly");
}

/// An 8x8 mesh with a mid-run link kill and a later heal: the fault stage
/// rewires live state (dropping packets, resyncing the credit mirror,
/// rerouting), which is exactly where worklist bookkeeping could lose a
/// wakeup or retain a ghost.
#[test]
fn fault_kill_and_heal_are_kernel_invariant() {
    let topo = Topology::mesh(8, 8);
    let plan = FaultPlan::new()
        .kill(400, RouterId(27), PortId(2))
        .kill(500, RouterId(12), PortId(1))
        .heal(900, RouterId(27), PortId(2))
        .heal(1_100, RouterId(12), PortId(1));
    let (wl, de) = pair(&topo, 0.12, 11, SpinConfig::default(), plan);
    lockstep(wl, de, 1_800, 25, "fault kill/heal");
}

/// The deadlock scenario really deadlocks (guards the first test's
/// coverage claim): the worklist run must record at least one confirmed
/// spin recovery.
#[test]
fn deadlock_scenario_exercises_spin() {
    let topo = Topology::mesh(4, 4);
    let spin = SpinConfig {
        t_dd: 64,
        ..SpinConfig::default()
    };
    let (mut wl, _) = pair(&topo, 0.40, 7, spin, FaultPlan::new());
    wl.run(2_000);
    let s = wl.stats();
    assert!(s.probes_sent > 0, "scenario never probed");
    assert!(s.spins > 0, "scenario never spun");
}
