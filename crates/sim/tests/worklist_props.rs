//! Property tests for the activity-worklist bookkeeping.
//!
//! Random injection rates, seeds and fault schedules must never leave an
//! active flit (or SM, or non-idle SPIN agent) on a router that is absent
//! from the active set — the "no lost wakeup" half — and once traffic stops
//! and the network drains, every worklist must be empty — the "no ghost
//! retention" half. [`Network::activity_invariants`] checks the first
//! against a full ground-truth scan; [`Network::activity_idle`] witnesses
//! the second.

use proptest::prelude::*;
use spin_core::SpinConfig;
use spin_routing::FavorsMinimal;
use spin_sim::{FaultPlan, Network, NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, StopAfter, SyntheticConfig, SyntheticTraffic};

fn build(w: u32, h: u32, rate: f64, seed: u64, stop_at: u64, plan: FaultPlan) -> Network {
    let topo = Topology::mesh(w, h);
    let traffic = StopAfter::new(
        SyntheticTraffic::new(
            SyntheticConfig::new(Pattern::UniformRandom, rate),
            &topo,
            seed,
        ),
        stop_at,
    );
    NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            seed,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .faults(plan)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No lost wakeup under a random load + fault schedule, and full drain
    /// to quiescence after traffic stops.
    #[test]
    fn random_schedules_never_lose_a_wakeup_and_drain(
        seed in 0u64..1_000,
        rate in 0.01f64..0.25,
        dims in (3u32..6, 3u32..6),
        kills in 0usize..3,
        fault_seed in 0u64..1_000,
        heal in any::<bool>(),
    ) {
        let (w, h) = dims;
        let stop_at = 600;
        let topo = Topology::mesh(w, h);
        let plan = if kills == 0 {
            FaultPlan::new()
        } else {
            FaultPlan::random_kills(
                &topo,
                kills,
                (100, 500),
                heal.then_some(150),
                fault_seed,
            )
        };
        let mut net = build(w, h, rate, seed, stop_at, plan);
        for c in 0..stop_at {
            net.step();
            if c % 40 == 0 {
                net.activity_invariants()
                    .unwrap_or_else(|e| panic!("invariant broken at cycle {c}: {e}"));
            }
        }
        // Traffic has stopped; run to quiescence. SPIN agents need time to
        // fall back to Off after the last packet drains (detection timers),
        // so the budget is generous. A non-draining run means a retention
        // bug or a genuine unrecovered deadlock — at these rates FAvORS
        // plus SPIN always drains.
        let mut drained = false;
        for c in 0..30_000u64 {
            net.step();
            if c % 200 == 0 {
                net.activity_invariants()
                    .unwrap_or_else(|e| panic!("invariant broken while draining: {e}"));
                if net.activity_idle() {
                    drained = true;
                    break;
                }
            }
        }
        prop_assert!(drained, "worklists failed to drain at quiescence");
        net.activity_invariants()
            .unwrap_or_else(|e| panic!("invariant broken at quiescence: {e}"));
        // Quiescence is also cheap to witness: stepping an idle network
        // must keep the worklists empty.
        net.run(100);
        prop_assert!(net.activity_idle(), "idle stepping re-populated a worklist");
    }
}
