//! Property tests for the sharded kernel's partition-boundary bookkeeping.
//!
//! The merge layer claims to reconstruct the exact serial order for
//! *arbitrary* partition assignments (each shard's deferred log is keyed
//! and ascending, so a stable sort over concatenated logs is the serial
//! interleave). These tests hold it to that: random router→shard maps over
//! random topologies and loads must (a) stay bit-identical to the serial
//! kernel in lockstep, (b) never lose a wakeup across a shard boundary
//! ([`Network::activity_invariants`] scans ground truth every few cycles),
//! and (c) conserve packets and flits — everything created is eventually
//! delivered once traffic stops, with every buffer, link and worklist
//! empty at quiescence.

use proptest::prelude::*;
use spin_core::SpinConfig;
use spin_routing::FavorsMinimal;
use spin_sim::{Network, NetworkBuilder, Partitioner, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, StopAfter, SyntheticConfig, SyntheticTraffic};

/// A partitioner that replays a fixed random assignment — the adversarial
/// case: no locality, no balance, shard boundaries everywhere.
#[derive(Debug, Clone)]
struct FixedPartitioner(Vec<u8>);

impl Partitioner for FixedPartitioner {
    fn name(&self) -> &'static str {
        "fixed_random"
    }

    fn assign(&self, topo: &Topology, shards: usize) -> Vec<u8> {
        assert_eq!(self.0.len(), topo.num_routers());
        assert!(self.0.iter().all(|&s| (s as usize) < shards));
        self.0.clone()
    }
}

fn build(
    topo: &Topology,
    rate: f64,
    seed: u64,
    stop_at: u64,
    shards: usize,
    assign: Option<Vec<u8>>,
) -> Network {
    let traffic = StopAfter::new(
        SyntheticTraffic::new(
            SyntheticConfig::new(Pattern::UniformRandom, rate),
            topo,
            seed,
        ),
        stop_at,
    );
    let mut b = NetworkBuilder::new(topo.clone())
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            seed,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .shards(shards);
    if let Some(a) = assign {
        b = b.partitioner(Box::new(FixedPartitioner(a)));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random topology, load and router→shard assignment: the sharded
    /// kernel stays in lockstep with serial, keeps its boundary
    /// bookkeeping invariants, and drains to quiescence conserving every
    /// packet and flit.
    #[test]
    fn random_partitions_are_lockstep_conserving_and_wakeup_safe(
        seed in 0u64..1_000,
        rate in 0.02f64..0.20,
        dims in (3u32..6, 3u32..6),
        torus in any::<bool>(),
        shards in 2usize..5,
        assign_seed in 0u64..1_000,
    ) {
        let (w, h) = dims;
        let topo = if torus {
            Topology::torus(w, h)
        } else {
            Topology::mesh(w, h)
        };
        // A splitmix-style hash gives each router an arbitrary shard —
        // deliberately ignoring locality and balance.
        let assign: Vec<u8> = (0..topo.num_routers() as u64)
            .map(|r| {
                let mut x = r.wrapping_add(assign_seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 31;
                (x as usize % shards) as u8
            })
            .collect();
        let stop_at = 500;
        let mut serial = build(&topo, rate, seed, stop_at, 1, None);
        let mut sharded = build(&topo, rate, seed, stop_at, shards, Some(assign));
        prop_assert_eq!(sharded.shards(), shards);
        for c in 0..stop_at {
            serial.step();
            sharded.step();
            if c % 50 == 0 {
                let (a, b) = (serial.stats(), sharded.stats());
                prop_assert!(a == b, "sharded diverged from serial at cycle {c}");
                sharded
                    .activity_invariants()
                    .unwrap_or_else(|e| panic!("boundary wakeup lost at cycle {c}: {e}"));
            }
        }
        // Traffic stopped: drain both to quiescence in lockstep (generous
        // budget — SPIN detection timers outlive the last packet).
        let mut drained = false;
        for c in 0..30_000u64 {
            serial.step();
            sharded.step();
            if c % 200 == 0 {
                sharded
                    .activity_invariants()
                    .unwrap_or_else(|e| panic!("boundary invariant broken draining: {e}"));
                if sharded.activity_idle() {
                    drained = true;
                    break;
                }
            }
        }
        prop_assert!(drained, "sharded worklists failed to drain at quiescence");
        let (a, b) = (serial.stats(), sharded.stats());
        prop_assert!(a == b, "post-drain stats diverged");
        // Conservation at quiescence: nothing in buffers, links or queues,
        // and everything ever created was delivered.
        let s = sharded.stats();
        prop_assert_eq!(sharded.packets_in_network(), 0);
        prop_assert_eq!(sharded.packets_queued(), 0);
        prop_assert_eq!(sharded.flits_in_flight(), 0);
        prop_assert!(s.packets_created == s.packets_delivered,
            "packets leaked across a shard boundary");
        prop_assert!(s.packets_delivered > 0, "vacuous run: nothing was injected");
    }
}
