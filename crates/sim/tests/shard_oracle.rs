//! Differential "oracle" tests for the sharded step kernel.
//!
//! Determinism is the contract: for every shard count the sharded kernel
//! must be *bit-identical* to the serial worklist kernel — same
//! [`NetStats`], same structured trace stream record-for-record (which pins
//! RNG draw order: adaptive route draws consume the one shared `StdRng`, so
//! a single out-of-order draw cascades into visibly different traces), same
//! activity bookkeeping. Every scenario builds a serial reference plus
//! sharded twins at 2, 4 and 8 shards from the identical seed and steps
//! them all in lockstep.
//!
//! The dense-oracle composition test additionally crosses `SPIN_DENSE_STEP`
//! with sharding: the dense reference walk fans out over the same shard
//! partitions, so the two orthogonal kernel modes must compose.

use spin_core::SpinConfig;
use spin_routing::FavorsMinimal;
use spin_sim::{
    ContiguousPartitioner, CoordBlockPartitioner, FaultPlan, Network, NetworkBuilder, Partitioner,
    SimConfig,
};
use spin_topology::Topology;
use spin_trace::VecSink;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};
use spin_types::{PortId, RouterId};

/// Builds one network for a scenario: `shards = 1` is the serial reference.
#[allow(clippy::too_many_arguments)]
fn build(
    topo: &Topology,
    rate: f64,
    seed: u64,
    spin: SpinConfig,
    plan: FaultPlan,
    shards: usize,
    dense: bool,
    partitioner: Option<Box<dyn Partitioner>>,
) -> Network {
    let traffic = SyntheticTraffic::new(
        SyntheticConfig::new(Pattern::UniformRandom, rate),
        topo,
        seed,
    );
    let mut b = NetworkBuilder::new(topo.clone())
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            seed,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(spin)
        .faults(plan)
        .trace_sink(Box::new(VecSink::new()))
        .dense_step(dense)
        .shards(shards);
    if let Some(p) = partitioner {
        b = b.partitioner(p);
    }
    b.build()
}

/// Steps the serial reference and every sharded twin in lockstep, checking
/// stats equality every `check_every` cycles and full trace equality at the
/// end.
fn lockstep(
    mut serial: Network,
    mut sharded: Vec<Network>,
    cycles: u64,
    check_every: u64,
    what: &str,
) {
    for net in &sharded {
        assert!(net.shards() > 1, "{what}: twin did not actually shard");
    }
    for c in 0..cycles {
        serial.step();
        for net in &mut sharded {
            net.step();
        }
        if c % check_every == 0 || c + 1 == cycles {
            let want = serial.stats();
            for net in &sharded {
                assert_eq!(
                    want,
                    net.stats(),
                    "{what}: NetStats diverged from serial at cycle {c} ({} shards)",
                    net.shards()
                );
                net.activity_invariants().unwrap_or_else(|e| {
                    panic!(
                        "{what}: invariant broken at cycle {c} ({} shards): {e}",
                        net.shards()
                    )
                });
            }
        }
    }
    let want = serial.trace_events().expect("VecSink retains events");
    for net in &sharded {
        let got = net.trace_events().expect("VecSink retains events");
        assert_eq!(
            want.len(),
            got.len(),
            "{what}: trace lengths diverged ({} shards)",
            net.shards()
        );
        for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
            assert_eq!(
                a,
                b,
                "{what}: trace record {i} diverged ({} shards)",
                net.shards()
            );
        }
    }
}

fn scenario(
    topo: &Topology,
    rate: f64,
    seed: u64,
    spin: SpinConfig,
    plan: FaultPlan,
    cycles: u64,
    what: &str,
) {
    let serial = build(topo, rate, seed, spin, plan.clone(), 1, false, None);
    let sharded = [2usize, 4, 8]
        .into_iter()
        .map(|s| build(topo, rate, seed, spin, plan.clone(), s, false, None))
        .collect();
    lockstep(serial, sharded, cycles, 50, what);
}

/// The seeded 4x4 mesh far past saturation: deterministically deadlocks,
/// probes and spins, so shard equivalence here covers the frozen-VC
/// bookkeeping, spin streaming and the whole SPIN engine interleave.
#[test]
fn mesh_deadlock_scenario_is_shard_invariant() {
    let topo = Topology::mesh(4, 4);
    let spin = SpinConfig {
        t_dd: 64,
        ..SpinConfig::default()
    };
    scenario(
        &topo,
        0.40,
        7,
        spin,
        FaultPlan::new(),
        2_000,
        "mesh deadlock",
    );
}

/// The 64-node dragonfly at moderate load: multi-hop global channels, a
/// different radix mix, and adaptive (UGAL-style) route draws whose RNG
/// order the route merge must replay exactly.
#[test]
fn dragonfly_run_is_shard_invariant() {
    let topo = Topology::dragonfly(2, 4, 2, 8);
    scenario(
        &topo,
        0.10,
        13,
        SpinConfig::default(),
        FaultPlan::new(),
        1_500,
        "dragonfly",
    );
}

/// An 8x8 mesh with mid-run link kills and later heals: faults rewire live
/// state between cycles, and the shard ownership maps (built as-built) must
/// stay correct across the kill/heal lifecycle.
#[test]
fn fault_kill_and_heal_are_shard_invariant() {
    let topo = Topology::mesh(8, 8);
    let plan = FaultPlan::new()
        .kill(400, RouterId(27), PortId(2))
        .kill(500, RouterId(12), PortId(1))
        .heal(900, RouterId(27), PortId(2))
        .heal(1_100, RouterId(12), PortId(1));
    scenario(
        &topo,
        0.12,
        11,
        SpinConfig::default(),
        plan,
        1_800,
        "fault kill/heal",
    );
}

/// Dense-oracle mode composes with sharding: the dense reference walk fans
/// the full entity ranges out over the shard partitions and must still be
/// bit-identical to the serial dense walk.
#[test]
fn dense_mode_composes_with_sharding() {
    let topo = Topology::mesh(4, 4);
    let spin = SpinConfig {
        t_dd: 64,
        ..SpinConfig::default()
    };
    let serial = build(&topo, 0.40, 7, spin, FaultPlan::new(), 1, true, None);
    let sharded = [2usize, 4]
        .into_iter()
        .map(|s| build(&topo, 0.40, 7, spin, FaultPlan::new(), s, true, None))
        .collect();
    lockstep(serial, sharded, 1_200, 50, "dense x sharded");
}

/// The coordinate-block partitioner must produce the same results as the
/// contiguous one (partitioning affects load balance, never outcomes), on
/// a torus where its row-banding actually differs from contiguous bands.
#[test]
fn partitioner_choice_is_result_invariant() {
    let topo = Topology::torus(6, 6);
    let serial = build(
        &topo,
        0.15,
        5,
        SpinConfig::default(),
        FaultPlan::new(),
        1,
        false,
        None,
    );
    let sharded = vec![
        build(
            &topo,
            0.15,
            5,
            SpinConfig::default(),
            FaultPlan::new(),
            3,
            false,
            Some(Box::new(ContiguousPartitioner)),
        ),
        build(
            &topo,
            0.15,
            5,
            SpinConfig::default(),
            FaultPlan::new(),
            3,
            false,
            Some(Box::new(CoordBlockPartitioner)),
        ),
    ];
    lockstep(serial, sharded, 1_200, 50, "partitioner choice");
}

/// Shard counts above the router count clamp instead of exploding; the
/// clamped build still matches serial.
#[test]
fn oversharding_clamps_to_router_count() {
    let topo = Topology::ring(5);
    let net = build(
        &topo,
        0.10,
        3,
        SpinConfig::default(),
        FaultPlan::new(),
        64,
        false,
        None,
    );
    assert_eq!(net.shards(), 5, "shards must clamp to the router count");
    let serial = build(
        &topo,
        0.10,
        3,
        SpinConfig::default(),
        FaultPlan::new(),
        1,
        false,
        None,
    );
    lockstep(serial, vec![net], 800, 25, "oversharded ring");
}
