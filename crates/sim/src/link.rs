//! Pipelined links carrying flits and special messages.

use spin_core::Sm;
use spin_types::{Cycle, Flit, VcId, Vnet};
use std::collections::VecDeque;

/// What travels on a link in one cycle (one phit per cycle per link).
#[derive(Debug, Clone)]
pub(crate) enum Phit {
    /// A data flit heading for `vc` at the downstream input port. `spin`
    /// marks flits pushed by a synchronized spin (they land in the
    /// receiver's earmarked frozen VC rather than the carried index).
    Flit {
        /// The flit.
        flit: Flit,
        /// Target downstream VC chosen by upstream VC allocation.
        vc: VcId,
        /// The packet's vnet (invariant across hops). Carried on the wire
        /// so arrival never reads the packet store: in the sharded kernel a
        /// body flit's arrival may run concurrently with the head flit's
        /// one-per-hop header mutation on another shard.
        vnet: Vnet,
        /// Pushed by a spin (bypassed allocation).
        spin: bool,
    },
    /// A bufferless special message. Boxed: SMs are rare (a handful per
    /// recovery) while flits are the common case, and the inline [`Sm`]
    /// payload would otherwise triple the size of every link-queue element.
    Sm(Box<Sm>),
}

/// A directed link: a delay line of (arrival cycle, phit).
#[derive(Debug, Clone, Default)]
pub(crate) struct Link {
    pub latency: u32,
    q: VecDeque<(Cycle, Phit)>,
}

impl Link {
    pub(crate) fn new(latency: u32) -> Self {
        Link {
            latency: latency.max(1),
            q: VecDeque::new(),
        }
    }

    /// Puts a phit on the wire at cycle `now`.
    pub(crate) fn send(&mut self, now: Cycle, phit: Phit) {
        self.q.push_back((now + self.latency as Cycle, phit));
    }

    /// Pops every phit that has arrived by `now` (arrivals are in FIFO
    /// order because latency is constant).
    pub(crate) fn deliver(&mut self, now: Cycle, out: &mut Vec<Phit>) {
        while let Some(&(t, _)) = self.q.front() {
            if t > now {
                break;
            }
            out.push(self.q.pop_front().expect("peeked").1);
        }
    }

    /// Number of phits in flight.
    pub(crate) fn in_flight(&self) -> usize {
        self.q.len()
    }

    /// Empties the wire, returning everything that was in flight — the
    /// fault stage drains a dead link with full accounting instead of
    /// letting [`Link::deliver`] feed phits to a port that no longer has
    /// a peer.
    pub(crate) fn take_all(&mut self) -> VecDeque<(Cycle, Phit)> {
        std::mem::take(&mut self.q)
    }

    /// Keeps only in-flight phits satisfying `keep` (used by the fault
    /// stage to strip a severed packet's flits off live wires).
    pub(crate) fn retain_phits(&mut self, keep: impl FnMut(&(Cycle, Phit)) -> bool) {
        self.q.retain(keep);
    }
}
