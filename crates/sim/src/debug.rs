//! Ground-truth deadlock export and debug reports.
//!
//! [`Network::wait_graph`] builds the AND-OR wait-for graph the ground-truth
//! detector and probe classifier consume. The report helpers return their
//! output as strings and only print when [`SimConfig::verbose`] is set, so
//! library users and the parallel sweep runner (whose workers share stdout)
//! never get interleaved diagnostics.
//!
//! [`SimConfig::verbose`]: crate::SimConfig::verbose

use crate::network::Network;
use spin_deadlock::{BufferId, WaitGraph};
use spin_routing::NetworkView;
use spin_types::{PortId, RouterId, VcId, Vnet};
use std::fmt::Write as _;

impl Network {
    /// Checks the activity-worklist bookkeeping invariants against ground
    /// truth (a full scan of every router, link and NIC) and returns the
    /// first violation found, if any. See DESIGN.md §"Activity-driven
    /// kernel" for the invariants; the worklist proptest drives this after
    /// random injection/fault schedules.
    ///
    /// 1. Every router's occupied-slot list exactly mirrors its non-empty
    ///    VC queues (no lost packet, no stale slot).
    /// 2. Every router with buffered packets, an undelivered SM, or a
    ///    non-idle SPIN agent is in the active-router set (no lost wakeup).
    /// 3. Every link (network or injection) with phits in flight is in the
    ///    active-link set.
    /// 4. Every NIC with queued packets or a mid-stream injection is in
    ///    the active-NIC set.
    pub fn activity_invariants(&self) -> Result<(), String> {
        for (i, router) in self.routers.iter().enumerate() {
            let truth = router.scan_occupied_slots();
            if router.active_slot_list() != truth.as_slice() {
                return Err(format!(
                    "router {i}: active_slots {:?} != occupied queues {truth:?}",
                    router.active_slot_list()
                ));
            }
            let busy = !router.is_idle()
                || !self.inbox[i].is_empty()
                || (self.spin_enabled
                    && (self.agents[i].state() != spin_core::FsmState::Off
                        || self.agents[i].is_spinning()));
            if busy && !self.active_routers.contains(i) {
                return Err(format!("router {i} is busy but not in the active set"));
            }
        }
        for (lid, &(r, p)) in self.link_owner.iter().enumerate() {
            if self.out_links[lid].in_flight() > 0 && !self.active_links.contains(lid) {
                return Err(format!(
                    "link ({r}, {p}) carries phits but is not in the active set"
                ));
            }
        }
        for (n, link) in self.inj_links.iter().enumerate() {
            if link.in_flight() > 0 && !self.active_links.contains(self.inj_base as usize + n) {
                return Err(format!(
                    "injection link {n} carries phits but is not in the active set"
                ));
            }
        }
        for (n, nic) in self.nics.iter().enumerate() {
            if (nic.active.is_some() || nic.queued() > 0) && !self.active_nics.contains(n) {
                return Err(format!("NIC {n} has work but is not in the active set"));
            }
        }
        Ok(())
    }

    /// True when every activity worklist has drained — the quiescent state
    /// an idle network must reach (and the cheap witness that stepping it
    /// further costs near-nothing).
    pub fn activity_idle(&self) -> bool {
        self.active_routers.is_empty()
            && self.active_links.is_empty()
            && self.active_nics.is_empty()
    }

    /// Current worklist sizes `(routers, links, nics)` — a load gauge for
    /// diagnostics and the worklist perf tests.
    pub fn activity_sizes(&self) -> (usize, usize, usize) {
        (
            self.active_routers.len(),
            self.active_links.len(),
            self.active_nics.len(),
        )
    }

    /// Builds the AND-OR wait-for graph of the current buffer state (see
    /// [`spin_deadlock::WaitGraph`]).
    ///
    /// Links killed by runtime faults are invisible: a dead port is no
    /// longer a network port, so it contributes neither free capacity nor
    /// occupants, and a routing alternative through it (momentarily
    /// possible the cycle a link dies) resolves to no peer and therefore
    /// no dependence edge. The fault stage resynchronises the credit
    /// mirror at dead inputs for the same reason — a phantom reservation
    /// there would otherwise fabricate a synthetic occupant on a buffer
    /// nothing can reach (see `docs/FAULTS.md`).
    pub fn wait_graph(&self) -> WaitGraph {
        let mut g = WaitGraph::new();
        let mut synthetic: u64 = 0;
        // Free capacity at every network input port.
        for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            for p in 0..self.topo.radix(rid) {
                let port = PortId(p as u8);
                if !self.topo.port(rid, port).is_network() {
                    continue;
                }
                for vn in 0..self.cfg.vnets {
                    let vnet = Vnet(vn);
                    let mut free = 0;
                    for v in 0..self.cfg.vcs_per_vnet {
                        let vc = VcId(v);
                        if self.meta.allocatable(rid, port, vnet, vc) {
                            free += 1;
                            continue;
                        }
                        // A VC reserved by an in-flight upstream allocation
                        // holds no packet yet, but the allocated packet is
                        // guaranteed to arrive, drain and free it: model it
                        // as a live occupant so waiters on this port are
                        // not misclassified as deadlocked.
                        let m = self.meta.get(rid, port, vnet, vc);
                        if m.occupancy == 0 && (m.reserved || m.inflight > 0) {
                            synthetic += 1;
                            g.add_packet(
                                spin_types::PacketId(u64::MAX - synthetic),
                                BufferId {
                                    router: rid,
                                    port,
                                    vnet,
                                    vc,
                                },
                                Vec::new(),
                            );
                        }
                    }
                    if free > 0 {
                        g.add_free_vcs(rid, port, vnet, free);
                    }
                }
            }
        }
        // Blocked packets and their alternative sets.
        let view = self.view();
        for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            for (p, vn, v) in self.routers[r].vc_coords() {
                let vcb = self.routers[r].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                let at = BufferId {
                    router: rid,
                    port: p,
                    vnet: vn,
                    vc: v,
                };
                if pb.out.is_some() {
                    // Allocated: guaranteed to drain (VCT). Record it as a
                    // live occupant so packets waiting on this buffer see
                    // it will free up.
                    g.add_packet(self.store.get(pb.handle).id, at, Vec::new());
                    continue;
                }
                // Non-head residents (transient spin overlap) will drain
                // once the head does; record them as live occupants too.
                for extra in vcb.q.iter().skip(1) {
                    g.add_packet(self.store.get(extra.handle).id, at, Vec::new());
                }
                let stuck = pb
                    .head_since
                    .map(|t| self.now.saturating_sub(t) >= self.cfg.route_stick_after)
                    .unwrap_or(false);
                let alts = if stuck && !pb.choices.is_empty() {
                    // The committed (frozen) choice is the packet's real
                    // dependence once it sticks.
                    pb.choices.clone()
                } else {
                    self.routing
                        .alternatives(&view, rid, p, self.store.get(pb.handle))
                };
                let mut wants = Vec::new();
                let mut ejecting = false;
                for c in alts {
                    let port = self.topo.port(rid, c.out_port);
                    if port.is_local() {
                        ejecting = true;
                        break;
                    }
                    if let Some(peer) = port.conn {
                        wants.push((peer.router, peer.port, vn));
                    }
                }
                let id = self.store.get(pb.handle).id;
                if ejecting {
                    g.add_packet(id, at, Vec::new());
                } else {
                    g.add_packet(id, at, wants);
                }
            }
        }
        g
    }

    /// Debug report: counts blocked head packets by (has-route, allocated,
    /// free-VCs-at-first-choice) with up to `limit` sample lines. Returns
    /// the report; prints it only when [`SimConfig::verbose`] is set.
    ///
    /// [`SimConfig::verbose`]: crate::SimConfig::verbose
    pub fn dump_blocked(&self, limit: usize) -> String {
        let view = self.view();
        let mut out = String::new();
        let mut printed = 0;
        let (mut no_route, mut allocated, mut blocked_free, mut blocked_full) = (0, 0, 0, 0);
        for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            for (p, vn, v) in self.routers[r].vc_coords() {
                let vcb = self.routers[r].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                if pb.out.is_some() {
                    allocated += 1;
                    continue;
                }
                let Some(c) = pb.choices.first() else {
                    no_route += 1;
                    continue;
                };
                let free = view.free_vcs_downstream(rid, c.out_port, vn);
                if free > 0 {
                    blocked_free += 1;
                    if printed < limit {
                        printed += 1;
                        let _ = writeln!(
                            out,
                            "  BLOCKED-WITH-FREE r{r} p{} vn{} vc{} pkt{} -> port {} free={} frozen={} spinning={} recv={}/{} sent={}",
                            p.0, vn.0, v.0, self.store.get(pb.handle).id.0, c.out_port.0, free,
                            vcb.frozen, vcb.spinning, pb.received, pb.len, pb.sent
                        );
                    }
                } else {
                    blocked_full += 1;
                }
            }
        }
        let _ = writeln!(
            out,
            "  blocked summary: no_route={no_route} allocated={allocated} blocked_with_free={blocked_free} blocked_full={blocked_full}"
        );
        if self.cfg.verbose {
            print!("{out}");
        }
        out
    }

    /// Debug report: follows committed dependences from the first blocked
    /// network VC until the walk closes a cycle or breaks. Returns the
    /// report; prints it only when [`SimConfig::verbose`] is set.
    ///
    /// [`SimConfig::verbose`]: crate::SimConfig::verbose
    pub fn trace_committed_cycle(&self) -> String {
        let mut out = String::new();
        let report = |out: String, cfg_verbose: bool| {
            if cfg_verbose {
                print!("{out}");
            }
            out
        };
        // find a blocked network-VC head
        let mut start = None;
        'find: for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            for (p, vn, v) in self.routers[r].vc_coords() {
                if !self.topo.port(rid, p).is_network() {
                    continue;
                }
                let vcb = self.routers[r].vc(p, vn, v);
                if let Some(pb) = vcb.head() {
                    if pb.out.is_none() && !pb.choices.is_empty() {
                        start = Some((rid, p, vn, v));
                        break 'find;
                    }
                }
            }
        }
        let Some(mut cur) = start else {
            let _ = writeln!(out, "  no blocked VC found");
            return report(out, self.cfg.verbose);
        };
        let mut seen = std::collections::HashSet::new();
        for step in 0..200 {
            let (rid, p, vn, v) = cur;
            if !seen.insert(cur) {
                let _ = writeln!(
                    out,
                    "  step {step}: cycle closes at r{} p{} vn{} vc{}",
                    rid.0, p.0, vn.0, v.0
                );
                return report(out, self.cfg.verbose);
            }
            let vcb = self.routers[rid.index()].vc(p, vn, v);
            let Some(pb) = vcb.head() else {
                let _ = writeln!(
                    out,
                    "  step {step}: r{} p{} vn{} vc{}: EMPTY, chain breaks",
                    rid.0, p.0, vn.0, v.0
                );
                return report(out, self.cfg.verbose);
            };
            let Some(c) = pb.choices.first() else {
                let _ = writeln!(out, "  step {step}: unrouted head, chain breaks");
                return report(out, self.cfg.verbose);
            };
            if pb.out.is_some() {
                let _ = writeln!(out, "  step {step}: allocated head, chain flows");
                return report(out, self.cfg.verbose);
            }
            if self.topo.port(rid, c.out_port).is_local() {
                let _ = writeln!(out, "  step {step}: ejecting head, chain flows");
                return report(out, self.cfg.verbose);
            }
            let Some(peer) = self.topo.neighbor(rid, c.out_port) else {
                // A runtime fault can leave a freshly-routed head pointing
                // at a link that died this very cycle.
                let _ = writeln!(
                    out,
                    "  step {step}: choice targets a dead link, chain breaks"
                );
                return report(out, self.cfg.verbose);
            };
            let _ = writeln!(
                out,
                "  step {step}: r{} p{} vn{} vc{} pkt{} len{} -> out p{} prio {}",
                rid.0,
                p.0,
                vn.0,
                v.0,
                self.store.get(pb.handle).id.0,
                pb.len,
                c.out_port.0,
                self.agents[rid.index()].dynamic_priority(self.now)
            );
            // which VC downstream? with 1 vc per vnet it's vc0; in general
            // follow the first occupied blocked VC.
            let nvcs = self.cfg.vcs_per_vnet;
            let mut next = None;
            for tv in 0..nvcs {
                let nvcb = self.routers[peer.router.index()].vc(peer.port, vn, VcId(tv));
                if nvcb.head().is_some() {
                    next = Some((peer.router, peer.port, vn, VcId(tv)));
                    break;
                }
            }
            match next {
                Some(n) => cur = n,
                None => {
                    let _ = writeln!(out, "  downstream VCs empty: chain flows");
                    return report(out, self.cfg.verbose);
                }
            }
        }
        let _ = writeln!(out, "  walk exceeded 200 steps");
        report(out, self.cfg.verbose)
    }
}
