//! Cycle-accurate, flit-level network-on-chip simulator — the substrate the
//! SPIN paper ran on (gem5 + Garnet2.0), rebuilt from scratch.
//!
//! The model reproduces what Garnet models at the fidelity the paper's
//! results depend on:
//!
//! * single-cycle input-buffered routers with per-VC buffering, virtual
//!   cut-through switching (a VC holds a whole packet), and per-output
//!   round-robin switch allocation;
//! * virtual networks (message classes) with per-vnet VCs;
//! * pipelined links with configurable latency (1-cycle mesh links,
//!   3-cycle dragonfly global links);
//! * NICs with unbounded injection queues and stall-free ejection (the
//!   paper's Sec. II-F setup);
//! * the SPIN protocol engine: per-router [`spin_core::SpinAgent`]s,
//!   bufferless special messages riding regular links at higher priority
//!   than flits (with the paper's contention/drop rules), frozen-VC
//!   bookkeeping and synchronized spin streaming;
//! * a Static-Bubble-style recovery baseline (timeout-gated reserved VC
//!   draining over an acyclic escape route);
//! * statistics: packet latency, throughput, link utilisation split into
//!   flit/SM/idle (Fig. 8b), spins and probe counts (Fig. 9), plus hooks to
//!   the ground-truth deadlock detector (Fig. 3, false positives).
//!
//! # Packet storage
//!
//! In-flight packet headers live in a slab/arena packet store (one flat
//! vector with free-list slot recycling, like the metadata table's flat
//! credit mirrors). A header is inserted once at NIC injection, and from
//! then on every flit, NIC queue entry, VC buffer slot and link phit
//! carries only a 16-byte `Copy` handle ([`spin_types::Flit`] wraps a
//! [`spin_types::PacketHandle`]). Routing state (`hops`, `global_hops`,
//! intermediate-destination clearing) mutates exactly once per hop on the
//! single authoritative header when the head flit arrives at the next
//! router; the slot is freed — and recycled under a bumped generation — at
//! tail ejection, after final stats accounting. Stale handles are
//! use-after-free bugs and fail fast.
//!
//! One deliberate simplification, documented in DESIGN.md: VC state mirrors
//! ("credits") are read with zero delay instead of via explicit credit
//! phits. Each (input port, vnet, VC) buffer has exactly one upstream
//! router, so allocation races across routers cannot happen and the
//! zero-delay mirror only removes a one-cycle credit turnaround, which is
//! orthogonal to every phenomenon the paper measures.
//!
//! # Examples
//!
//! Run uniform-random traffic over a mesh with FAvORS + SPIN:
//!
//! ```
//! use spin_sim::{NetworkBuilder, SimConfig};
//! use spin_routing::FavorsMinimal;
//! use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};
//! use spin_topology::Topology;
//!
//! let topo = Topology::mesh(4, 4);
//! let traffic = SyntheticTraffic::new(
//!     SyntheticConfig::new(Pattern::UniformRandom, 0.05), &topo, 1);
//! let mut net = NetworkBuilder::new(topo)
//!     .config(SimConfig { vcs_per_vnet: 1, ..SimConfig::default() })
//!     .routing(FavorsMinimal)
//!     .traffic(traffic)
//!     .spin(spin_core::SpinConfig { t_dd: 64, ..Default::default() })
//!     .build();
//! net.run(2000);
//! let stats = net.stats();
//! assert!(stats.packets_delivered > 0);
//! ```

// Unsafe is denied crate-wide and allowed back in exactly three places —
// the sharded kernel (`shard`) and the raw elementwise views it drives
// (`pipeline::meta::MetaRaw`, `store::StoreRaw`). Everything else is
// still checked as if `forbid` were in force.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod activity;
mod config;
mod debug;
pub mod fabric;
pub mod faults;
mod link;
mod network;
mod nic;
mod pipeline;
mod router;
mod shard;
pub mod static_model;
mod stats;
mod store;
mod vc;

pub use config::{NetworkBuilder, SimConfig, Switching};
pub use fabric::{AdmissionDecision, FabricAction, FabricAdmission, FabricEventReport};
pub use faults::{FaultAction, FaultEvent, FaultPlan};
pub use network::Network;
pub use shard::{ContiguousPartitioner, CoordBlockPartitioner, Partitioner};
pub use static_model::{EpisodeReport, RingMember, StaticModel};
pub use stats::series::{latency_bucket, Epoch, EpochConfig, MetricsRing, LATENCY_BUCKETS};
pub use stats::{LinkUse, NetStats};

#[cfg(test)]
mod tests;
