//! Stages 2/3 and 9 — the SPIN protocol engine: delivering special messages
//! (SMs) to agents, ticking the per-router FSMs, arbitrating SM link access
//! (bufferless, priority-based), and completing spins once every frozen VC
//! has streamed its packet.
//!
//! This module is also where every *protocol* trace event is emitted (the
//! packet-lifecycle events live in the `injection`/`delivery`/`vc_alloc`
//! stages): `probe_launch` and `probe_drop` (with the drop reason recovered
//! by snapshot-diffing [`SpinStats`]), `deadlock_detected` on move
//! origination, `vc_frozen`/`vc_unfrozen`, `sm_send`/`sm_contention_drop`
//! at link arbitration, `spin_start`/`spin_complete`/`deadlock_resolved`,
//! and `false_positive` when classification against the ground-truth
//! wait-graph (the `spin-deadlock` crate) disagrees with the protocol. The
//! full state-machine walkthrough — which event fires at which FSM
//! transition, with a worked 4-ring example — is `docs/PROTOCOL.md` at the
//! repository root.

use crate::link::Phit;
use crate::network::Network;
use crate::router::SpinView;
use spin_core::{Action, FsmState, SmKind, SpinStats};
use spin_trace::{ProbeDropReason, SmClass, TraceEvent};
use spin_types::RouterId;

/// The trace-facing class of a special message (`spin_trace` mirrors
/// [`SmKind`] so the trace crate stays free of protocol machinery).
fn sm_class(kind: SmKind) -> SmClass {
    match kind {
        SmKind::Probe => SmClass::Probe,
        SmKind::Move => SmClass::Move,
        SmKind::ProbeMove => SmClass::ProbeMove,
        SmKind::KillMove => SmClass::KillMove,
    }
}

/// Emits one `ProbeDrop` per drop-counter increment between two
/// [`SpinStats`] snapshots taken around a single `on_sm` call — the way the
/// tracer learns *why* a probe died without the protocol engine knowing
/// about tracing at all.
fn drop_deltas(before: &SpinStats, after: &SpinStats) -> impl Iterator<Item = ProbeDropReason> {
    let pairs = [
        (ProbeDropReason::Ttl, after.drop_ttl - before.drop_ttl),
        (
            ProbeDropReason::Priority,
            after.drop_priority - before.drop_priority,
        ),
        (ProbeDropReason::Duplicate, after.drop_dup - before.drop_dup),
        (
            ProbeDropReason::FreeVc,
            after.drop_free_vc - before.drop_free_vc,
        ),
        (
            ProbeDropReason::NoDependence,
            after.drop_no_dependence - before.drop_no_dependence,
        ),
        (
            ProbeDropReason::AcceptFailed,
            after.accept_failed - before.accept_failed,
        ),
    ];
    pairs
        .into_iter()
        .flat_map(|(reason, n)| std::iter::repeat_n(reason, n as usize))
}

impl Network {
    pub(crate) fn process_sms(&mut self) {
        if !self.spin_enabled {
            // SMs only ever originate from SPIN agents, so without SPIN the
            // inboxes are provably empty — nothing to clear.
            debug_assert!(self.inbox.iter().all(Vec::is_empty));
            return;
        }
        let now = self.now;
        // An SM in the inbox implies the receiving router was marked at
        // delivery, so the cycle snapshot covers every non-empty inbox.
        let ids = std::mem::take(&mut self.cycle_ids);
        for &ri in &ids {
            let i = ri as usize;
            if self.inbox[i].is_empty() {
                continue;
            }
            let mut msgs = std::mem::take(&mut self.inbox[i]);
            msgs.sort_by(|a, b| {
                let ka = (
                    a.1.kind.priority_class(),
                    self.priority.priority(a.1.sender, now),
                );
                let kb = (
                    b.1.kind.priority_class(),
                    self.priority.priority(b.1.sender, now),
                );
                kb.cmp(&ka)
            });
            for (port, sm) in msgs {
                let before = self.trace_on().then(|| *self.agents[i].stats());
                let actions = {
                    let view = SpinView {
                        router: &self.routers[i],
                        topo: &self.topo,
                        store: &self.store,
                    };
                    self.agents[i].on_sm(now, &view, port, sm)
                };
                if let Some(before) = before {
                    let after = *self.agents[i].stats();
                    for reason in drop_deltas(&before, &after) {
                        self.emit(TraceEvent::ProbeDrop {
                            router: RouterId(i as u32),
                            reason,
                        });
                    }
                }
                self.apply_actions(i, actions);
            }
        }
        self.cycle_ids = ids;
    }

    pub(crate) fn agents_tick(&mut self) {
        if !self.spin_enabled {
            return;
        }
        let now = self.now;
        // Agents leave the Off state only while their router is active, and
        // end-of-cycle retention keeps every non-Off agent's router in the
        // set, so the cycle snapshot covers all tickable agents.
        let ids = std::mem::take(&mut self.cycle_ids);
        for &ri in &ids {
            let i = ri as usize;
            // An idle router with an Off FSM has nothing to do; skipping it
            // keeps large lightly-loaded networks cheap.
            if self.routers[i].is_idle() && self.agents[i].state() == FsmState::Off {
                continue;
            }
            let actions = {
                let view = SpinView {
                    router: &self.routers[i],
                    topo: &self.topo,
                    store: &self.store,
                };
                self.agents[i].on_cycle(now, &view)
            };
            self.apply_actions(i, actions);
        }
        self.cycle_ids = ids;
    }

    pub(crate) fn apply_actions(&mut self, i: usize, actions: Vec<Action>) {
        let rid = RouterId(i as u32);
        for a in actions {
            match a {
                Action::SendSm { out_port, sm } => {
                    if !self.topo.port(rid, out_port).is_network() {
                        continue; // SMs never leave through NIC ports.
                    }
                    if sm.sender == rid {
                        if sm.kind == SmKind::Probe && sm.path.is_empty() {
                            self.emit(TraceEvent::ProbeLaunch {
                                router: rid,
                                vnet: sm.vnet,
                            });
                            self.classify(rid, false);
                        } else if sm.kind == SmKind::Move {
                            // A move origination is the protocol's "deadlock
                            // detected": the initiator's own probe returned
                            // and it accepted the loop.
                            self.emit(TraceEvent::DeadlockDetected {
                                router: rid,
                                vnet: sm.vnet,
                            });
                            self.classify(rid, true);
                        }
                    }
                    self.pending_sms.push((rid, out_port, sm));
                }
                Action::Freeze {
                    in_port,
                    vnet,
                    vc,
                    out_port,
                } => {
                    let router = &mut self.routers[i];
                    let vcb = router.vc_mut(in_port, vnet, vc);
                    vcb.frozen = true;
                    vcb.frozen_out = Some(out_port);
                    router.set_spin_rx(in_port, vnet, vc);
                    self.emit(TraceEvent::VcFrozen {
                        router: rid,
                        port: in_port,
                        vnet,
                        vc,
                        out_port,
                    });
                }
                Action::UnfreezeAll => {
                    for (p, vn, v) in self.routers[i].vc_coords().collect::<Vec<_>>() {
                        let vcb = self.routers[i].vc_mut(p, vn, v);
                        vcb.frozen = false;
                        vcb.frozen_out = None;
                    }
                    self.emit(TraceEvent::VcUnfrozen { router: rid });
                }
                Action::StartSpin => {
                    let frozen: Vec<_> = self.agents[i].frozen().to_vec();
                    if self.agents[i].state() == FsmState::ForwardProgress {
                        // Counted once per recovery, at the initiator.
                    }
                    let mut spinning = 0u8;
                    for f in frozen {
                        let vcb = self.routers[i].vc_mut(f.in_port, f.vnet, f.vc);
                        if vcb.head().is_some() {
                            vcb.spinning = true;
                            spinning = spinning.saturating_add(1);
                        }
                    }
                    self.emit(TraceEvent::SpinStart {
                        router: rid,
                        frozen: spinning,
                    });
                }
            }
        }
    }

    /// Classifies an originated probe or confirmed recovery against ground
    /// truth (Fig. 9). `confirmed` distinguishes a move launch (a recovery
    /// that will spin) from a mere probe launch.
    fn classify(&mut self, r: RouterId, confirmed: bool) {
        if !self.cfg.classify_probes {
            return;
        }
        let routers = match &self.classify_cache {
            Some((c, v)) if *c == self.now => v.clone(),
            _ => {
                let v = self.wait_graph().deadlocked_routers();
                self.classify_cache = Some((self.now, v.clone()));
                v
            }
        };
        if routers.binary_search(&r).is_err() {
            if confirmed {
                self.stats.false_positive_spins += 1;
            } else {
                self.stats.false_positive_probes += 1;
            }
            self.emit(TraceEvent::FalsePositive {
                router: r,
                confirmed,
            });
        }
    }

    pub(crate) fn resolve_sms(&mut self) {
        if self.pending_sms.is_empty() {
            return;
        }
        let now = self.now;
        let mut pending = std::mem::take(&mut self.pending_sms);
        // Highest (class, sender priority, sender id) wins each (router,
        // port); the rest are dropped — bufferless SM transport.
        pending.sort_by(|a, b| {
            let ka = (
                a.0,
                a.1,
                a.2.kind.priority_class(),
                self.priority.priority(a.2.sender, now),
                a.2.sender.0,
            );
            let kb = (
                b.0,
                b.1,
                b.2.kind.priority_class(),
                self.priority.priority(b.2.sender, now),
                b.2.sender.0,
            );
            ka.cmp(&kb)
        });
        let mut idx = 0;
        while idx < pending.len() {
            let (r, p, _) = (pending[idx].0, pending[idx].1, ());
            // Find the end of this (router, port) group; the last element
            // has the highest priority.
            let mut end = idx;
            while end + 1 < pending.len() && pending[end + 1].0 == r && pending[end + 1].1 == p {
                end += 1;
            }
            if self.trace_on() {
                // Losers of the bufferless SM arbitration are dropped on
                // the floor; record each one, then the winner.
                for lost in &pending[idx..end] {
                    self.emit(TraceEvent::SmContentionDrop {
                        router: r,
                        port: p,
                        class: sm_class(lost.2.kind),
                        sender: lost.2.sender,
                    });
                }
                let win = &pending[end].2;
                self.emit(TraceEvent::SmSend {
                    router: r,
                    port: p,
                    class: sm_class(win.kind),
                    sender: win.sender,
                });
            }
            let (_, _, sm) = pending[end].clone();
            match sm.kind {
                SmKind::Probe => self.stats.link_use.probe += 1,
                _ => self.stats.link_use.other_sm += 1,
            }
            if let Some(m) = &mut self.metrics {
                m.on_sm_link();
            }
            self.sm_busy.push((r.0, p.0));
            self.link_at_mut(r.index(), p.index())
                .send(now, Phit::Sm(Box::new(sm)));
            self.mark_link(r.index(), p);
            idx = end + 1;
        }
    }

    pub(crate) fn spin_completions(&mut self) {
        if !self.spin_enabled {
            return;
        }
        let now = self.now;
        // A spinning agent's router is always retained in the active set
        // (see `prune_idle_routers`), so the cycle snapshot covers every
        // potential completion.
        let ids = std::mem::take(&mut self.cycle_ids);
        for &ri in &ids {
            let i = ri as usize;
            if self.agents[i].is_spinning() && !self.routers[i].any_spinning() {
                let initiator = self.agents[i].state() == FsmState::ForwardProgress;
                if initiator {
                    self.stats.spins += 1;
                }
                self.emit(TraceEvent::SpinComplete {
                    router: RouterId(i as u32),
                    initiator,
                });
                if initiator {
                    // The initiator finishing its spin means the whole loop
                    // advanced one packet: this recovery round is over.
                    self.emit(TraceEvent::DeadlockResolved {
                        router: RouterId(i as u32),
                    });
                }
                let actions = {
                    let view = SpinView {
                        router: &self.routers[i],
                        topo: &self.topo,
                        store: &self.store,
                    };
                    self.agents[i].notify_spin_complete(now, &view)
                };
                self.apply_actions(i, actions);
            }
        }
        self.cycle_ids = ids;
    }
}
