//! Stage 4 — injection: NICs pull fresh packets from the traffic source,
//! claim a downstream VC at their attach port, and stream one flit per
//! cycle over the injection link.

use crate::config::Switching;
use crate::link::Phit;
use crate::network::{hidden_vc, Network};
use crate::nic::ActiveInjection;
use crate::pipeline::meta::NetView;
use spin_trace::TraceEvent;
use spin_types::{Flit, NodeId, PacketBuilder, VcId, Vnet};

impl Network {
    /// Stage 4 entry point: generation then streaming. The sharded kernel
    /// calls the two passes separately (generation stays serial — it owns
    /// the shared traffic RNG — while streaming fans out over NIC
    /// partitions).
    pub(crate) fn inject(&mut self) {
        self.generate_packets();
        self.inject_streams();
    }

    pub(crate) fn generate_packets(&mut self) {
        let now = self.now;
        // Generation pass — always dense. The traffic source owns a single
        // shared RNG drawn in node-ascending order every cycle; skipping
        // idle nodes would shift the stream for everyone after them. This
        // pass is decoupled from streaming below: generation reads only
        // network-port congestion (routing's `at_injection`) while
        // start/stream mutate only each NIC's own local attach-port state,
        // so running all generations first is bit-identical to the old
        // interleaved loop.
        for n in 0..self.nics.len() {
            let node = NodeId(n as u32);
            if let Some(spec) = self.traffic.generate(node, now) {
                assert!(
                    spec.vnet.0 < self.cfg.vnets,
                    "traffic source emitted vnet {} but the network has {} vnets                      (configure the source and SimConfig consistently)",
                    spec.vnet.0,
                    self.cfg.vnets
                );
                assert!(
                    spec.len <= self.cfg.max_packet_len,
                    "traffic source emitted a {}-flit packet but max_packet_len is {}",
                    spec.len,
                    self.cfg.max_packet_len
                );
                let mut pkt = PacketBuilder::new(node, spec.dst)
                    .vnet(spec.vnet)
                    .len(spec.len)
                    .injected_at(now)
                    .build(self.next_packet_id);
                self.next_packet_id += 1;
                {
                    let view = NetView {
                        topo: &self.topo,
                        meta: &self.meta,
                        now,
                        vcs: self.cfg.vcs_per_vnet,
                        hidden_vc: hidden_vc(&self.cfg),
                    };
                    self.routing.at_injection(&view, &mut pkt, &mut self.rng);
                }
                self.stats.packets_created += 1;
                // The header enters the store here (NIC creation): the one
                // place a whole Packet is moved. Everything downstream
                // carries the handle.
                let handle = self.store.insert(pkt);
                self.nics[n].queues[spec.vnet.index()].push_back(handle);
                self.active_nics.insert(n);
            }
        }
    }

    pub(crate) fn inject_streams(&mut self) {
        let now = self.now;
        // Streaming pass — worklist-driven: only NICs with queued packets
        // or a mid-stream injection.
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        if self.dense_step {
            ids.extend(0..self.nics.len() as u32);
        } else {
            self.active_nics.sorted_into(&mut ids);
        }
        // Retention is folded into the walk (set cleared, each visited NIC
        // re-inserts itself while it still has work): a NIC leaves the
        // worklist once it has nothing queued and nothing mid-stream;
        // generation re-inserts on the next packet.
        self.active_nics.clear();
        for &nid in &ids {
            let n = nid as usize;
            let node = NodeId(nid);
            // Start streaming a new packet if idle.
            if self.nics[n].active.is_none() {
                if let Some(vn) = self.nics[n].next_vnet() {
                    let at = self.topo.node_attach(node);
                    let vnet = Vnet(vn as u8);
                    let vc = (0..self.cfg.vcs_per_vnet)
                        .map(VcId)
                        .filter(|&v| !(self.cfg.static_bubble && v.0 == self.cfg.vcs_per_vnet - 1))
                        .find(|&v| self.meta.allocatable(at.router, at.port, vnet, v));
                    if let Some(vc) = vc {
                        let handle = self.nics[n].queues[vn]
                            .pop_front()
                            .expect("next_vnet returned a non-empty queue");
                        let pkt = self.store.get_mut(handle);
                        pkt.injected_at = now;
                        let len = pkt.len;
                        if self.trace_on() {
                            let (packet, src, dst) = {
                                let p = self.store.get(handle);
                                (p.id, p.src, p.dst)
                            };
                            self.emit(TraceEvent::PacketInject {
                                packet,
                                src,
                                dst,
                                vnet,
                                len,
                            });
                        }
                        self.meta.reserve(now, at.router, at.port, vnet, vc);
                        self.stats.packets_injected += 1;
                        if let Some(m) = &mut self.metrics {
                            m.on_packet_injected();
                        }
                        self.nics[n].active = Some(ActiveInjection {
                            handle,
                            len,
                            vnet,
                            flits_sent: 0,
                            vc,
                        });
                    }
                }
            }
            // Stream one flit of the active packet.
            if let Some(mut act) = self.nics[n].active.take() {
                let at = self.topo.node_attach(node);
                if self.cfg.switching == Switching::Wormhole
                    && self
                        .meta
                        .space(at.router, at.port, act.vnet, act.vc, self.cfg.vc_depth)
                        == 0
                {
                    self.nics[n].active = Some(act);
                } else {
                    let flit = Flit::new(act.handle, act.flits_sent, act.len);
                    let is_tail = flit.kind.is_tail();
                    self.inj_links[n].send(
                        now,
                        Phit::Flit {
                            flit,
                            vc: act.vc,
                            vnet: act.vnet,
                            spin: false,
                        },
                    );
                    self.mark_inj_link(n);
                    self.meta
                        .inflight_add(now, at.router, at.port, act.vnet, act.vc, 1);
                    self.stats.flits_injected += 1;
                    if let Some(m) = &mut self.metrics {
                        m.on_flit_injected();
                    }
                    act.flits_sent += 1;
                    if is_tail {
                        self.meta.release(now, at.router, at.port, act.vnet, act.vc);
                    } else {
                        self.nics[n].active = Some(act);
                    }
                }
            }
            let nic = &self.nics[n];
            if nic.active.is_some() || nic.queues.iter().any(|q| !q.is_empty()) {
                self.active_nics.insert(n);
            }
        }
        self.scratch_ids = ids;
    }
}
