//! Stage 5 — route compute: every blocked head packet (re-)evaluates its
//! candidate outputs. Adaptive algorithms re-select while freshly blocked;
//! the choice freezes after `route_stick_after` cycles so SPIN's probes
//! trace a stable dependence.

use crate::network::Network;
use crate::pipeline::meta::NetView;
use spin_routing::{Routing, VcMask};
use spin_types::{RouterId, VcId};

impl Network {
    pub(crate) fn route_compute(&mut self) {
        let now = self.now;
        let reserved = VcId(self.cfg.vcs_per_vnet - 1);
        let (ids, ranges, coords) = self.take_coord_cache();
        for (k, &ri) in ids.iter().enumerate() {
            let i = ri as usize;
            let (lo, hi) = ranges[k];
            if lo == hi {
                continue; // idle router (dense-oracle mode visits them all)
            }
            let rid = RouterId(ri);
            for &(p, vn, v) in &coords[lo as usize..hi as usize] {
                let vcb = self.routers[i].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                if pb.out.is_some() || vcb.frozen || vcb.spinning || pb.received == 0 {
                    continue;
                }
                // Adaptive re-selection while freshly blocked; the choice
                // freezes after `route_stick_after` cycles so SPIN's probes
                // trace a stable dependence (and genuinely deadlocked
                // packets, which never move again, always end up stable).
                if !pb.choices.is_empty() {
                    let stuck = pb
                        .head_since
                        .map(|t| now.saturating_sub(t) >= self.cfg.route_stick_after)
                        .unwrap_or(false);
                    if stuck {
                        continue;
                    }
                }
                // Copy the handle out (ends the router borrow) and read the
                // header through the store: no per-cycle Packet clone.
                let handle = pb.handle;
                let pkt = self.store.get(handle);
                let view = NetView {
                    topo: &self.topo,
                    meta: &self.meta,
                    now,
                    vcs: self.cfg.vcs_per_vnet,
                    hidden_vc: if self.cfg.static_bubble && v != reserved {
                        Some(reserved)
                    } else {
                        None
                    },
                };
                let choices = if self.cfg.static_bubble && v == reserved {
                    // Recovery packets drain over the acyclic XY escape
                    // route, staying in the reserved VC layer.
                    let mut c = self.escape.route(&view, rid, p, pkt, &mut self.rng);
                    for choice in &mut c {
                        if self.topo.port(rid, choice.out_port).is_network() {
                            choice.vc_mask = VcMask::only(reserved);
                        }
                    }
                    c
                } else {
                    self.routing.route(&view, rid, p, pkt, &mut self.rng)
                };
                let pb = self.routers[i]
                    .vc_mut(p, vn, v)
                    .head_mut()
                    .expect("head still present");
                pb.choices = choices;
                if pb.head_since.is_none() {
                    pb.head_since = Some(now);
                }
            }
        }
        self.restore_coord_cache(ids, ranges, coords);
    }
}
