//! The per-cycle router pipeline, one stage per module.
//!
//! [`Network::step`](crate::Network::step) orchestrates the stages in
//! DESIGN.md's documented order; each module contributes its stage as an
//! `impl Network` block so state stays on the one [`crate::Network`] struct
//! while the logic lives beside its documentation:
//!
//! | Module        | Stage                                                    |
//! |---------------|----------------------------------------------------------|
//! | [`faults`]    | runtime link kill/heal: applied atomically before any other stage |
//! | [`delivery`]  | link delivery: phits arrive into VCs / eject to NICs     |
//! | [`spin_engine`]| SPIN protocol: SM processing, agent ticks, SM link arbitration, spin completion |
//! | [`injection`] | NIC packet generation and flit streaming into routers    |
//! | [`route`]     | route compute for blocked head packets                   |
//! | [`vc_alloc`]  | downstream VC allocation (virtual cut-through)           |
//! | [`sw_alloc`]  | switch allocation: spins pre-empt, then round-robin      |
//! | [`traversal`] | switch/link traversal: the single flit-send path         |
//!
//! [`meta`] holds the zero-delay credit mirror ([`meta::MetaTable`]) and the
//! routing-visible congestion view ([`meta::NetView`]) the stages share.

pub(crate) mod delivery;
pub(crate) mod faults;
pub(crate) mod injection;
pub(crate) mod meta;
pub(crate) mod route;
pub(crate) mod spin_engine;
pub(crate) mod sw_alloc;
pub(crate) mod traversal;
pub(crate) mod vc_alloc;
