//! The zero-delay credit mirror shared by every pipeline stage, and the
//! routing-visible congestion view built on top of it.

use spin_routing::NetworkView;
use spin_topology::Topology;
use spin_types::{Cycle, PortId, RouterId, VcId, Vnet};

/// Per-VC allocation mirror. Each (input port, vnet, VC) buffer has exactly
/// one upstream, so this zero-delay mirror is race-free (see crate docs).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct VcMeta {
    /// Reserved by an upstream allocation whose tail has not been sent yet.
    pub(crate) reserved: bool,
    /// Flits physically buffered.
    pub(crate) occupancy: u16,
    /// Flits on the wire heading here (normal sends).
    pub(crate) inflight: u16,
    /// Cycle the VC last became busy.
    pub(crate) busy_since: Cycle,
    pub(crate) busy: bool,
}

impl VcMeta {
    pub(crate) fn allocatable(&self) -> bool {
        !self.reserved && self.occupancy == 0 && self.inflight == 0
    }

    /// Re-derives the busy flag after any field change, stamping
    /// `busy_since` on the idle→busy transition. Every mutation below ends
    /// with this, so `busy_since` always means "the cycle this VC last left
    /// idle".
    #[inline]
    fn touch(&mut self, now: Cycle) {
        let busy_now = self.reserved || self.occupancy > 0 || self.inflight > 0;
        if busy_now && !self.busy {
            self.busy = true;
            self.busy_since = now;
        } else if !busy_now {
            self.busy = false;
        }
    }

    #[inline]
    fn set_reserved(&mut self, now: Cycle) {
        self.reserved = true;
        self.touch(now);
    }

    #[inline]
    fn clear_reserved(&mut self, now: Cycle) {
        self.reserved = false;
        self.touch(now);
    }

    #[inline]
    fn add_occupancy(&mut self, now: Cycle, d: i32) {
        self.occupancy = (self.occupancy as i32 + d).max(0) as u16;
        self.touch(now);
    }

    #[inline]
    fn add_inflight(&mut self, now: Cycle, d: i32) {
        self.inflight = (self.inflight as i32 + d).max(0) as u16;
        self.touch(now);
    }

    /// Normal flit arrival: wire count moves into buffered occupancy.
    #[inline]
    fn on_arrive(&mut self, now: Cycle) {
        self.occupancy += 1;
        self.inflight = self.inflight.saturating_sub(1);
        self.touch(now);
    }

    /// Normal flit send: one more flit on the wire; a tail releases the
    /// upstream reservation.
    #[inline]
    fn on_wire(&mut self, now: Cycle, tail: bool) {
        self.inflight += 1;
        if tail {
            self.reserved = false;
        }
        self.touch(now);
    }

    /// Fault cleanup: forget upstream-derived claims, resync occupancy.
    #[inline]
    fn reset(&mut self, now: Cycle, occupancy: u16) {
        self.reserved = false;
        self.inflight = 0;
        self.occupancy = occupancy;
        self.touch(now);
    }
}

/// Flat table of [`VcMeta`] plus per-(port,vnet) spin-flit in-flight
/// counters.
#[derive(Debug)]
pub(crate) struct MetaTable {
    data: Vec<VcMeta>,
    /// spin flits in flight towards (router, port, vnet).
    spin_inflight: Vec<u16>,
    /// data offset per router.
    offsets: Vec<usize>,
    /// spin_inflight offset per router.
    port_offsets: Vec<usize>,
    vnets: usize,
    vcs: usize,
}

impl MetaTable {
    pub(crate) fn new(topo: &Topology, vnets: u8, vcs: u8) -> Self {
        let mut offsets = Vec::with_capacity(topo.num_routers());
        let mut port_offsets = Vec::with_capacity(topo.num_routers());
        let (mut off, mut poff) = (0usize, 0usize);
        for r in 0..topo.num_routers() {
            offsets.push(off);
            port_offsets.push(poff);
            let radix = topo.radix(RouterId(r as u32));
            off += radix * vnets as usize * vcs as usize;
            poff += radix * vnets as usize;
        }
        MetaTable {
            data: vec![VcMeta::default(); off],
            spin_inflight: vec![0; poff],
            offsets,
            port_offsets,
            vnets: vnets as usize,
            vcs: vcs as usize,
        }
    }

    #[inline]
    fn idx(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> usize {
        self.offsets[r.index()] + (p.index() * self.vnets + vn.index()) * self.vcs + vc.index()
    }

    #[inline]
    fn pidx(&self, r: RouterId, p: PortId, vn: Vnet) -> usize {
        self.port_offsets[r.index()] + p.index() * self.vnets + vn.index()
    }

    #[inline]
    pub(crate) fn get(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> &VcMeta {
        &self.data[self.idx(r, p, vn, vc)]
    }

    pub(crate) fn allocatable(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> bool {
        self.get(r, p, vn, vc).allocatable() && self.spin_inflight[self.pidx(r, p, vn)] == 0
    }

    pub(crate) fn reserve(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].set_reserved(now);
    }

    pub(crate) fn release(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].clear_reserved(now);
    }

    pub(crate) fn occ_add(
        &mut self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        d: i32,
    ) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].add_occupancy(now, d);
    }

    pub(crate) fn inflight_add(
        &mut self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        d: i32,
    ) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].add_inflight(now, d);
    }

    /// A normal (non-spin) flit arrival: the wire count moves into buffered
    /// occupancy. Fuses `occ_add(+1)` + `inflight_add(-1)` into one index
    /// computation and one busy-transition check — the per-flit delivery
    /// path runs this once per hop.
    pub(crate) fn arrive(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].on_arrive(now);
    }

    /// A normal (non-spin) flit send towards downstream VC (r, p, vn, vc):
    /// one more flit on the wire, and a tail releases the upstream
    /// reservation. Fuses `inflight_add(+1)` + conditional `release` into
    /// one index computation and one busy-transition check.
    pub(crate) fn wire(
        &mut self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        tail: bool,
    ) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].on_wire(now, tail);
    }

    /// Free flit slots in a VC buffer (for wormhole per-flit flow control).
    pub(crate) fn space(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId, depth: u16) -> u16 {
        let m = self.get(r, p, vn, vc);
        depth.saturating_sub(m.occupancy + m.inflight)
    }

    pub(crate) fn spin_inflight_add(&mut self, r: RouterId, p: PortId, vn: Vnet, d: i32) {
        let i = self.pidx(r, p, vn);
        self.spin_inflight[i] = (self.spin_inflight[i] as i32 + d).max(0) as u16;
    }

    /// Runtime-fault cleanup for a VC whose input link just died: forgets
    /// every upstream-derived claim (reservation, in-flight count) and
    /// resyncs buffered occupancy to what physically remains after the
    /// severed packets were removed. Without this, phantom claims would
    /// block allocation forever and fabricate wait-graph occupants for a
    /// link that no longer exists.
    pub(crate) fn reset_vc(
        &mut self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        occupancy: u16,
    ) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].reset(now, occupancy);
    }

    /// Runtime-fault cleanup: clears the spin-flit in-flight counter of a
    /// (port, vnet) whose input link just died.
    pub(crate) fn spin_inflight_reset(&mut self, r: RouterId, p: PortId, vn: Vnet) {
        let i = self.pidx(r, p, vn);
        self.spin_inflight[i] = 0;
    }

    /// Copies every VC's buffered-flit occupancy into `out` (cleared
    /// first), in flat (router, port, vnet, vc) table order — the epoch
    /// ring's per-VC snapshot.
    pub(crate) fn occupancy_snapshot_into(&self, out: &mut Vec<u16>) {
        out.clear();
        out.extend(self.data.iter().map(|m| m.occupancy));
    }

    /// Raw-pointer view for the sharded kernel's worker phases. Taking
    /// `&mut self` guarantees exclusive access at capture time; the caller
    /// upholds the aliasing discipline from then on (see
    /// [`MetaRaw`]'s safety contract).
    #[allow(unsafe_code)]
    pub(crate) fn raw(&mut self) -> MetaRaw {
        MetaRaw {
            data: self.data.as_mut_ptr(),
            spin_inflight: self.spin_inflight.as_mut_ptr(),
            offsets: self.offsets.as_ptr(),
            port_offsets: self.port_offsets.as_ptr(),
            vnets: self.vnets,
            vcs: self.vcs,
        }
    }
}

/// Unsafe elementwise view of a [`MetaTable`] for the sharded kernel.
///
/// Every method resolves one flat index and touches exactly that
/// [`VcMeta`] row (or one `spin_inflight` cell), delegating to the same
/// `VcMeta` methods the serial `MetaTable` ops use — zero behavioural
/// drift by construction.
///
/// # Safety contract (applies to every method)
///
/// * The originating `MetaTable` must outlive every use and must not be
///   moved or structurally mutated (no reallocation) while any `MetaRaw`
///   is live.
/// * Concurrent callers must never touch the same row: the sharded kernel
///   guarantees this via the unique-upstream invariant (each (router,
///   in-port, vnet, vc) row has exactly one upstream writer) plus its
///   per-phase defer/merge rules (see `crate::shard`).
#[derive(Debug, Clone, Copy)]
#[allow(unsafe_code)]
pub(crate) struct MetaRaw {
    data: *mut VcMeta,
    spin_inflight: *mut u16,
    offsets: *const usize,
    port_offsets: *const usize,
    vnets: usize,
    vcs: usize,
}

// SAFETY: MetaRaw is a bundle of raw pointers; sending it across threads is
// safe because every dereference is an unsafe method whose caller upholds
// the row-disjointness contract above.
#[allow(unsafe_code)]
unsafe impl Send for MetaRaw {}
// SAFETY: as for Send — shared references expose no safe mutation; all
// access goes through unsafe methods with the same contract.
#[allow(unsafe_code)]
unsafe impl Sync for MetaRaw {}

#[allow(unsafe_code)]
impl MetaRaw {
    /// # Safety
    /// `r`/`p`/`vn`/`vc` must name a row of the originating table.
    #[inline]
    unsafe fn row<'a>(self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> &'a mut VcMeta {
        // SAFETY: same index arithmetic as MetaTable::idx over the live
        // table's buffers; caller guarantees in-bounds coordinates and row
        // disjointness.
        unsafe {
            let i = *self.offsets.add(r.index())
                + (p.index() * self.vnets + vn.index()) * self.vcs
                + vc.index();
            &mut *self.data.add(i)
        }
    }

    /// # Safety
    /// Coordinates in-bounds; caller holds exclusive access to the row and
    /// its port's spin counter (reads only, but no concurrent writer).
    #[inline]
    pub(crate) unsafe fn allocatable(self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> bool {
        // SAFETY: per the method contract; pidx mirrors MetaTable::pidx.
        unsafe {
            let pi = *self.port_offsets.add(r.index()) + p.index() * self.vnets + vn.index();
            self.row(r, p, vn, vc).allocatable() && *self.spin_inflight.add(pi) == 0
        }
    }

    /// Read-only copy of a row. # Safety: as [`Self::allocatable`].
    #[inline]
    pub(crate) unsafe fn get(self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> VcMeta {
        // SAFETY: per the method contract.
        unsafe { *self.row(r, p, vn, vc) }
    }

    /// # Safety
    /// Coordinates in-bounds; exclusive access to the row.
    #[inline]
    pub(crate) unsafe fn reserve(self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        // SAFETY: per the method contract.
        unsafe { self.row(r, p, vn, vc) }.set_reserved(now);
    }

    /// # Safety
    /// Coordinates in-bounds; exclusive access to the row.
    #[inline]
    pub(crate) unsafe fn release(self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        // SAFETY: per the method contract.
        unsafe { self.row(r, p, vn, vc) }.clear_reserved(now);
    }

    /// # Safety
    /// Coordinates in-bounds; exclusive access to the row.
    #[inline]
    pub(crate) unsafe fn occ_add(
        self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        d: i32,
    ) {
        // SAFETY: per the method contract.
        unsafe { self.row(r, p, vn, vc) }.add_occupancy(now, d);
    }

    /// # Safety
    /// Coordinates in-bounds; exclusive access to the row.
    #[inline]
    pub(crate) unsafe fn inflight_add(
        self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        d: i32,
    ) {
        // SAFETY: per the method contract.
        unsafe { self.row(r, p, vn, vc) }.add_inflight(now, d);
    }

    /// # Safety
    /// Coordinates in-bounds; exclusive access to the row.
    #[inline]
    pub(crate) unsafe fn arrive(self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        // SAFETY: per the method contract.
        unsafe { self.row(r, p, vn, vc) }.on_arrive(now);
    }

    /// Free flit slots (wormhole flow control). # Safety: as [`Self::get`].
    #[inline]
    pub(crate) unsafe fn space(
        self,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        depth: u16,
    ) -> u16 {
        // SAFETY: per the method contract.
        let m = unsafe { self.get(r, p, vn, vc) };
        depth.saturating_sub(m.occupancy + m.inflight)
    }

    /// # Safety
    /// Coordinates in-bounds; exclusive access to the (port, vnet) spin
    /// counter.
    #[inline]
    pub(crate) unsafe fn spin_inflight_add(self, r: RouterId, p: PortId, vn: Vnet, d: i32) {
        // SAFETY: per the method contract; pidx mirrors MetaTable::pidx.
        unsafe {
            let pi = *self.port_offsets.add(r.index()) + p.index() * self.vnets + vn.index();
            let c = &mut *self.spin_inflight.add(pi);
            *c = (*c as i32 + d).max(0) as u16;
        }
    }
}

/// The routing-visible congestion view (local credit knowledge).
pub(crate) struct NetView<'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) meta: &'a MetaTable,
    pub(crate) now: Cycle,
    pub(crate) vcs: u8,
    /// Static Bubble: the reserved VC is invisible to routing decisions.
    pub(crate) hidden_vc: Option<VcId>,
}

impl NetworkView for NetView<'_> {
    fn topology(&self) -> &Topology {
        self.topo
    }
    fn now(&self) -> Cycle {
        self.now
    }
    fn free_vcs_downstream(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> usize {
        let Some(peer) = self.topo.neighbor(at, out_port) else {
            return 0;
        };
        (0..self.vcs)
            .filter(|&v| Some(VcId(v)) != self.hidden_vc)
            .filter(|&v| self.meta.allocatable(peer.router, peer.port, vnet, VcId(v)))
            .count()
    }
    fn has_free_vc_downstream(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> bool {
        let Some(peer) = self.topo.neighbor(at, out_port) else {
            return false;
        };
        (0..self.vcs)
            .filter(|&v| Some(VcId(v)) != self.hidden_vc)
            .any(|v| self.meta.allocatable(peer.router, peer.port, vnet, VcId(v)))
    }
    fn min_vc_active_time(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> u64 {
        let Some(peer) = self.topo.neighbor(at, out_port) else {
            return u64::MAX / 2;
        };
        let mut min = u64::MAX / 2;
        for v in 0..self.vcs {
            if Some(VcId(v)) == self.hidden_vc {
                continue;
            }
            if self.meta.allocatable(peer.router, peer.port, vnet, VcId(v)) {
                return 0;
            }
            let m = self.meta.get(peer.router, peer.port, vnet, VcId(v));
            min = min.min(self.now.saturating_sub(m.busy_since));
        }
        min
    }
    fn downstream_occupancy(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> usize {
        let Some(peer) = self.topo.neighbor(at, out_port) else {
            return usize::MAX / 2;
        };
        (0..self.vcs)
            .map(|v| {
                let m = self.meta.get(peer.router, peer.port, vnet, VcId(v));
                m.occupancy as usize + m.inflight as usize
            })
            .sum()
    }
}
