//! The zero-delay credit mirror shared by every pipeline stage, and the
//! routing-visible congestion view built on top of it.

use spin_routing::NetworkView;
use spin_topology::Topology;
use spin_types::{Cycle, PortId, RouterId, VcId, Vnet};

/// Per-VC allocation mirror. Each (input port, vnet, VC) buffer has exactly
/// one upstream, so this zero-delay mirror is race-free (see crate docs).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct VcMeta {
    /// Reserved by an upstream allocation whose tail has not been sent yet.
    pub(crate) reserved: bool,
    /// Flits physically buffered.
    pub(crate) occupancy: u16,
    /// Flits on the wire heading here (normal sends).
    pub(crate) inflight: u16,
    /// Cycle the VC last became busy.
    pub(crate) busy_since: Cycle,
    pub(crate) busy: bool,
}

impl VcMeta {
    pub(crate) fn allocatable(&self) -> bool {
        !self.reserved && self.occupancy == 0 && self.inflight == 0
    }
}

/// Flat table of [`VcMeta`] plus per-(port,vnet) spin-flit in-flight
/// counters.
#[derive(Debug)]
pub(crate) struct MetaTable {
    data: Vec<VcMeta>,
    /// spin flits in flight towards (router, port, vnet).
    spin_inflight: Vec<u16>,
    /// data offset per router.
    offsets: Vec<usize>,
    /// spin_inflight offset per router.
    port_offsets: Vec<usize>,
    vnets: usize,
    vcs: usize,
}

impl MetaTable {
    pub(crate) fn new(topo: &Topology, vnets: u8, vcs: u8) -> Self {
        let mut offsets = Vec::with_capacity(topo.num_routers());
        let mut port_offsets = Vec::with_capacity(topo.num_routers());
        let (mut off, mut poff) = (0usize, 0usize);
        for r in 0..topo.num_routers() {
            offsets.push(off);
            port_offsets.push(poff);
            let radix = topo.radix(RouterId(r as u32));
            off += radix * vnets as usize * vcs as usize;
            poff += radix * vnets as usize;
        }
        MetaTable {
            data: vec![VcMeta::default(); off],
            spin_inflight: vec![0; poff],
            offsets,
            port_offsets,
            vnets: vnets as usize,
            vcs: vcs as usize,
        }
    }

    #[inline]
    fn idx(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> usize {
        self.offsets[r.index()] + (p.index() * self.vnets + vn.index()) * self.vcs + vc.index()
    }

    #[inline]
    fn pidx(&self, r: RouterId, p: PortId, vn: Vnet) -> usize {
        self.port_offsets[r.index()] + p.index() * self.vnets + vn.index()
    }

    #[inline]
    pub(crate) fn get(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> &VcMeta {
        &self.data[self.idx(r, p, vn, vc)]
    }

    pub(crate) fn allocatable(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> bool {
        self.get(r, p, vn, vc).allocatable() && self.spin_inflight[self.pidx(r, p, vn)] == 0
    }

    fn touch(&mut self, now: Cycle, i: usize) {
        let m = &mut self.data[i];
        let busy_now = m.reserved || m.occupancy > 0 || m.inflight > 0;
        if busy_now && !m.busy {
            m.busy = true;
            m.busy_since = now;
        } else if !busy_now {
            m.busy = false;
        }
    }

    pub(crate) fn reserve(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].reserved = true;
        self.touch(now, i);
    }

    pub(crate) fn release(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].reserved = false;
        self.touch(now, i);
    }

    pub(crate) fn occ_add(
        &mut self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        d: i32,
    ) {
        let i = self.idx(r, p, vn, vc);
        let m = &mut self.data[i];
        m.occupancy = (m.occupancy as i32 + d).max(0) as u16;
        self.touch(now, i);
    }

    pub(crate) fn inflight_add(
        &mut self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        d: i32,
    ) {
        let i = self.idx(r, p, vn, vc);
        let m = &mut self.data[i];
        m.inflight = (m.inflight as i32 + d).max(0) as u16;
        self.touch(now, i);
    }

    /// A normal (non-spin) flit arrival: the wire count moves into buffered
    /// occupancy. Fuses `occ_add(+1)` + `inflight_add(-1)` into one index
    /// computation and one busy-transition check — the per-flit delivery
    /// path runs this once per hop.
    pub(crate) fn arrive(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        let i = self.idx(r, p, vn, vc);
        let m = &mut self.data[i];
        m.occupancy += 1;
        m.inflight = m.inflight.saturating_sub(1);
        self.touch(now, i);
    }

    /// A normal (non-spin) flit send towards downstream VC (r, p, vn, vc):
    /// one more flit on the wire, and a tail releases the upstream
    /// reservation. Fuses `inflight_add(+1)` + conditional `release` into
    /// one index computation and one busy-transition check.
    pub(crate) fn wire(
        &mut self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        tail: bool,
    ) {
        let i = self.idx(r, p, vn, vc);
        let m = &mut self.data[i];
        m.inflight += 1;
        if tail {
            m.reserved = false;
        }
        self.touch(now, i);
    }

    /// Free flit slots in a VC buffer (for wormhole per-flit flow control).
    pub(crate) fn space(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId, depth: u16) -> u16 {
        let m = self.get(r, p, vn, vc);
        depth.saturating_sub(m.occupancy + m.inflight)
    }

    pub(crate) fn spin_inflight_add(&mut self, r: RouterId, p: PortId, vn: Vnet, d: i32) {
        let i = self.pidx(r, p, vn);
        self.spin_inflight[i] = (self.spin_inflight[i] as i32 + d).max(0) as u16;
    }

    /// Runtime-fault cleanup for a VC whose input link just died: forgets
    /// every upstream-derived claim (reservation, in-flight count) and
    /// resyncs buffered occupancy to what physically remains after the
    /// severed packets were removed. Without this, phantom claims would
    /// block allocation forever and fabricate wait-graph occupants for a
    /// link that no longer exists.
    pub(crate) fn reset_vc(
        &mut self,
        now: Cycle,
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        occupancy: u16,
    ) {
        let i = self.idx(r, p, vn, vc);
        let m = &mut self.data[i];
        m.reserved = false;
        m.inflight = 0;
        m.occupancy = occupancy;
        self.touch(now, i);
    }

    /// Runtime-fault cleanup: clears the spin-flit in-flight counter of a
    /// (port, vnet) whose input link just died.
    pub(crate) fn spin_inflight_reset(&mut self, r: RouterId, p: PortId, vn: Vnet) {
        let i = self.pidx(r, p, vn);
        self.spin_inflight[i] = 0;
    }

    /// Copies every VC's buffered-flit occupancy into `out` (cleared
    /// first), in flat (router, port, vnet, vc) table order — the epoch
    /// ring's per-VC snapshot.
    pub(crate) fn occupancy_snapshot_into(&self, out: &mut Vec<u16>) {
        out.clear();
        out.extend(self.data.iter().map(|m| m.occupancy));
    }
}

/// The routing-visible congestion view (local credit knowledge).
pub(crate) struct NetView<'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) meta: &'a MetaTable,
    pub(crate) now: Cycle,
    pub(crate) vcs: u8,
    /// Static Bubble: the reserved VC is invisible to routing decisions.
    pub(crate) hidden_vc: Option<VcId>,
}

impl NetworkView for NetView<'_> {
    fn topology(&self) -> &Topology {
        self.topo
    }
    fn now(&self) -> Cycle {
        self.now
    }
    fn free_vcs_downstream(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> usize {
        let Some(peer) = self.topo.neighbor(at, out_port) else {
            return 0;
        };
        (0..self.vcs)
            .filter(|&v| Some(VcId(v)) != self.hidden_vc)
            .filter(|&v| self.meta.allocatable(peer.router, peer.port, vnet, VcId(v)))
            .count()
    }
    fn has_free_vc_downstream(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> bool {
        let Some(peer) = self.topo.neighbor(at, out_port) else {
            return false;
        };
        (0..self.vcs)
            .filter(|&v| Some(VcId(v)) != self.hidden_vc)
            .any(|v| self.meta.allocatable(peer.router, peer.port, vnet, VcId(v)))
    }
    fn min_vc_active_time(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> u64 {
        let Some(peer) = self.topo.neighbor(at, out_port) else {
            return u64::MAX / 2;
        };
        let mut min = u64::MAX / 2;
        for v in 0..self.vcs {
            if Some(VcId(v)) == self.hidden_vc {
                continue;
            }
            if self.meta.allocatable(peer.router, peer.port, vnet, VcId(v)) {
                return 0;
            }
            let m = self.meta.get(peer.router, peer.port, vnet, VcId(v));
            min = min.min(self.now.saturating_sub(m.busy_since));
        }
        min
    }
    fn downstream_occupancy(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> usize {
        let Some(peer) = self.topo.neighbor(at, out_port) else {
            return usize::MAX / 2;
        };
        (0..self.vcs)
            .map(|v| {
                let m = self.meta.get(peer.router, peer.port, vnet, VcId(v));
                m.occupancy as usize + m.inflight as usize
            })
            .sum()
    }
}
