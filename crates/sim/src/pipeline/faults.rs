//! Stage 0 — runtime link faults: applies due [`FaultPlan`] events
//! atomically at the top of the cycle, before any other pipeline stage
//! sees the topology.
//!
//! A kill takes both directions of a link down at once and leaves the
//! network in a state every later stage can treat as ordinary: wires of
//! the dead link are drained with full accounting, packets physically
//! astride the link (flits on the dead wire, or split across its
//! endpoints by cut-through forwarding) are removed everywhere they have
//! residue and reported as dropped-by-fault, packets that had merely
//! *claimed* the link without sending a flit are torn off and re-routed,
//! the credit mirror at the dead input ports is resynchronised, the SPIN
//! agents at the two endpoints reset (remote members of a broken frozen
//! loop recover through their own deadline timeouts, the same path that
//! tolerates a lost kill SM), and routing state is re-derived. A kill
//! that would disconnect the network is rejected and traced, never
//! applied — delivery of every packet not astride a dead link stays
//! guaranteed. The full fault model and event-ordering contract is
//! `docs/FAULTS.md`.
//!
//! With an empty plan the stage is one integer compare per cycle and the
//! simulation is bit-identical to a build without it.
//!
//! [`FaultPlan`]: crate::faults::FaultPlan

use crate::faults::FaultAction;
use crate::link::Phit;
use crate::network::Network;
use crate::router::SpinView;
use spin_topology::TopologyError;
use spin_trace::TraceEvent;
use spin_types::{NodeId, PacketHandle, PortId, RouterId, VcId, Vnet};

/// A severed packet: its store handle plus the router that owned the
/// sending end of the dead link (the attribution reported in the
/// `packet_dropped_by_fault` trace event).
type Severed = Vec<(PacketHandle, RouterId)>;

fn note_severed(severed: &mut Severed, h: PacketHandle, upstream: RouterId) {
    // First attribution wins; the set is tiny (packets astride one link).
    if !severed.iter().any(|&(x, _)| x == h) {
        severed.push((h, upstream));
    }
}

impl Network {
    /// Applies every fault event scheduled at or before the current cycle.
    /// Called first in [`Network::step`]; the fast path (no events left,
    /// or the next one is in the future) is a bounds check and a compare.
    pub(crate) fn apply_faults(&mut self) {
        while self.fault_cursor < self.faults.events().len() {
            let e = self.faults.events()[self.fault_cursor];
            if e.at > self.now {
                return;
            }
            self.fault_cursor += 1;
            match e.action {
                FaultAction::Kill => self.apply_kill(e.router, e.port),
                FaultAction::Heal => self.apply_heal(e.router, e.port),
            }
        }
    }

    fn apply_kill(&mut self, r: RouterId, p: PortId) {
        let now = self.now;
        // Fabric-manager admission: re-certify the degraded CDG before the
        // kill goes live. Malformed or disconnecting kills skip admission
        // and keep the existing partition-witness rejection path below.
        if let Some(mut fabric) = self.fabric.take() {
            if self.topo.check_link_removal(r, p).is_ok() {
                let decision = fabric.admit_kill(now, r, p);
                self.fabric = Some(fabric);
                self.stats.fabric_targets_rewalked += decision.targets_rewalked;
                if decision.admitted() {
                    self.stats.reroutes_admitted += 1;
                    self.emit(TraceEvent::RerouteAdmitted {
                        router: r,
                        port: p,
                        verdict: decision.verdict,
                    });
                } else {
                    // Quarantined: the link stays up and the previous
                    // routing tables are retained.
                    self.stats.reroutes_quarantined += 1;
                    self.emit(TraceEvent::RerouteQuarantined {
                        router: r,
                        port: p,
                        verdict: decision.verdict,
                    });
                    return;
                }
            } else {
                self.fabric = Some(fabric);
            }
        }
        let (a, b, latency) = match self.topo.fail_link(r, p) {
            Ok(ends) => ends,
            Err(e) => {
                // Disconnecting (or malformed) kill: rejected, traced, and
                // nothing applied — the Disconnected witness says how many
                // routers the cut would have stranded.
                self.stats.link_kills_rejected += 1;
                let unreachable = match &e {
                    TopologyError::Disconnected { unreachable } => unreachable.len() as u32,
                    _ => 0,
                };
                self.emit(TraceEvent::LinkKillRejected {
                    router: r,
                    port: p,
                    unreachable,
                });
                return;
            }
        };
        self.stats.links_killed += 1;
        self.dead_links.push((a, b, latency));
        // Both endpoints have work to do this cycle (SPIN resets, meta
        // resync, re-routing) even if they were idle.
        self.mark_router(a.router);
        self.mark_router(b.router);
        // Two directed links left the utilisation denominator mid-step
        // (stats.link_use.total accrues num_network_links per cycle).
        self.num_network_links -= 2;

        // ---- 1. find every packet physically astride the dead link ----
        let mut severed: Severed = Vec::new();
        // Flits still on the two dead wires (drained here so delivery
        // never feeds a port without a peer); SMs die with the wire — the
        // SPIN FSM tolerates lost SMs through its deadline timeouts.
        for (from, _to) in [(a, b), (b, a)] {
            for (_, phit) in self
                .link_at_mut(from.router.index(), from.port.index())
                .take_all()
            {
                match phit {
                    Phit::Flit { flit, .. } => note_severed(&mut severed, flit.packet, from.router),
                    Phit::Sm(_) => self.stats.sms_dropped_by_fault += 1,
                }
            }
        }
        // Partially-arrived residents at the dead input ports: their
        // missing flits were on (or upstream of) the dead wire.
        for (er, ep, upstream) in [(a.router, a.port, b.router), (b.router, b.port, a.router)] {
            let router = &self.routers[er.index()];
            for vcs in &router.in_vcs[ep.index()] {
                for vcb in vcs {
                    for pb in &vcb.q {
                        if pb.received < pb.len {
                            note_severed(&mut severed, pb.handle, upstream);
                        }
                    }
                }
            }
        }
        // Packets at the endpoint routers that allocated the dead output:
        // mid-send means residue on both sides (severed); untouched means
        // the claim is torn off and the packet re-routes in place.
        let mut realloc: Vec<(RouterId, PortId, Vnet, VcId)> = Vec::new();
        for (er, dead_p) in [(a.router, a.port), (b.router, b.port)] {
            let router = &self.routers[er.index()];
            for (pi, vns) in router.in_vcs.iter().enumerate() {
                for (vni, vcs) in vns.iter().enumerate() {
                    for (vi, vcb) in vcs.iter().enumerate() {
                        for pb in &vcb.q {
                            match pb.out {
                                Some((op, _)) if op == dead_p && pb.sent > 0 => {
                                    note_severed(&mut severed, pb.handle, er);
                                }
                                Some((op, _)) if op == dead_p => {
                                    realloc.push((
                                        er,
                                        PortId(pi as u8),
                                        Vnet(vni as u8),
                                        VcId(vi as u8),
                                    ));
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        // ---- 2. tear unsent claims off the dead output ----
        for (er, pi, vn, vi) in realloc {
            let handle = {
                let pb = self.routers[er.index()]
                    .vc_mut(pi, vn, vi)
                    .head_mut()
                    .expect("allocated packets are queue heads");
                pb.out = None;
                pb.choices.clear();
                pb.head_since = None;
                pb.handle
            };
            self.stats.packets_rerouted_by_fault += 1;
            if self.trace_on() {
                let packet = self.store.get(handle).id;
                self.emit(TraceEvent::PacketRerouted { packet, router: er });
            }
        }
        // ---- 3. remove every residue of each severed packet ----
        if !severed.is_empty() {
            self.remove_severed(&severed);
        }
        // ---- 4. reset SPIN state at the two endpoints ----
        if self.spin_enabled {
            for (er, dead_p) in [(a.router, a.port), (b.router, b.port)] {
                self.spin_fault_reset(er, dead_p);
            }
        }
        // ---- 5. resynchronise the credit mirror at the dead inputs ----
        // Reservations and in-flight counts at the dead input ports were
        // claims by a peer that no longer exists; occupancy resyncs to
        // what physically remains after the removals above.
        for (er, ep) in [(a.router, a.port), (b.router, b.port)] {
            for vn in 0..self.cfg.vnets {
                for vc in 0..self.cfg.vcs_per_vnet {
                    let occ = self.routers[er.index()]
                        .vc(ep, Vnet(vn), VcId(vc))
                        .occupancy() as u16;
                    self.meta.reset_vc(now, er, ep, Vnet(vn), VcId(vc), occ);
                }
                self.meta.spin_inflight_reset(er, ep, Vnet(vn));
            }
        }
        // ---- 6. re-derive routing state ----
        let cleared = self.clear_unallocated_choices();
        self.routing.on_topology_change(&self.topo);
        self.emit(TraceEvent::LinkFailed {
            router: a.router,
            port: a.port,
            peer_router: b.router,
            peer_port: b.port,
        });
        self.emit(TraceEvent::RerouteComputed {
            links_down: self.dead_links.len() as u32,
            cleared,
        });
    }

    fn apply_heal(&mut self, r: RouterId, p: PortId) {
        // Find the matching dead-link record by either endpoint; a heal
        // naming a link that is not down is silently ignored (the paired
        // kill may have been rejected).
        let Some(idx) = self.dead_links.iter().position(|&(a, b, _)| {
            (a.router == r && a.port == p) || (b.router == r && b.port == p)
        }) else {
            return;
        };
        // Fabric-manager admission: the healed fabric is a config change
        // too — a heal can re-open rings the degraded CDG did not have, so
        // it is re-certified exactly like a kill. A rejected heal leaves
        // the link down.
        if let Some(mut fabric) = self.fabric.take() {
            let decision = fabric.admit_heal(self.now, r, p);
            self.fabric = Some(fabric);
            self.stats.fabric_targets_rewalked += decision.targets_rewalked;
            if decision.admitted() {
                self.stats.reroutes_admitted += 1;
                self.emit(TraceEvent::RerouteAdmitted {
                    router: r,
                    port: p,
                    verdict: decision.verdict,
                });
            } else {
                self.stats.reroutes_quarantined += 1;
                self.emit(TraceEvent::RerouteQuarantined {
                    router: r,
                    port: p,
                    verdict: decision.verdict,
                });
                return;
            }
        }
        let (ea, eb, latency) = self.dead_links[idx];
        if self.topo.restore_link(ea, eb, latency).is_err() {
            return;
        }
        self.dead_links.remove(idx);
        self.num_network_links += 2;
        self.stats.links_healed += 1;
        self.mark_router(ea.router);
        self.mark_router(eb.router);
        // The wires were drained at the kill and the credit mirror at both
        // input ports was reset then (and kept in sync by ordinary sends
        // since — a dead output cannot be allocated), so the link is clean;
        // only stale routing choices need a refresh.
        let cleared = self.clear_unallocated_choices();
        self.routing.on_topology_change(&self.topo);
        self.emit(TraceEvent::LinkHealed {
            router: ea.router,
            port: ea.port,
            peer_router: eb.router,
            peer_port: eb.port,
        });
        self.emit(TraceEvent::RerouteComputed {
            links_down: self.dead_links.len() as u32,
            cleared,
        });
    }

    /// Removes every buffer resident, wire flit, injection-link flit and
    /// NIC stream belonging to the severed packets, with the credit mirror
    /// and statistics kept consistent, then frees their store slots.
    fn remove_severed(&mut self, severed: &Severed) {
        let now = self.now;
        let hit = |h: PacketHandle| severed.iter().any(|&(x, _)| x == h);
        // Buffer residents, network-wide: cut-through forwarding can leave
        // a severed packet's residue chained across several routers, so
        // every VC is swept, in deterministic (router, port, vnet, vc)
        // order.
        for ri in 0..self.routers.len() {
            let rid = RouterId(ri as u32);
            if self.routers[ri].is_idle() {
                continue;
            }
            let coords: Vec<_> = self.routers[ri].vc_coords().collect();
            for (pi, vn, vi) in coords {
                let mut removed: Vec<crate::vc::PacketBuf> = Vec::new();
                {
                    let vcb = self.routers[ri].vc_mut(pi, vn, vi);
                    if vcb.q.is_empty() {
                        continue;
                    }
                    let mut k = 0;
                    while k < vcb.q.len() {
                        if hit(vcb.q[k].handle) {
                            if k == 0 {
                                // The head is gone; any spin streaming it
                                // is over.
                                vcb.spinning = false;
                            }
                            removed.push(vcb.q.remove(k).expect("index in bounds"));
                        } else {
                            k += 1;
                        }
                    }
                    if !removed.is_empty() && vcb.q.is_empty() {
                        self.routers[ri].note_emptied(pi, vn, vi);
                    }
                }
                for pb in removed {
                    let buffered = (pb.received - pb.sent) as i32;
                    self.meta.occ_add(now, rid, pi, vn, vi, -buffered);
                    // Mid-send packets hold a reservation at their target VC
                    // until the tail is sent; the target evaporates with the
                    // packet. Dead outputs resolve to no peer here because
                    // the topology was already mutated — their endpoint meta
                    // is reset wholesale afterwards.
                    if let Some((op, tvc)) = pb.out {
                        if let Some(peer) = self.topo.neighbor(rid, op) {
                            self.meta.release(now, peer.router, peer.port, vn, tvc);
                        }
                    }
                }
            }
        }
        // Flits of severed packets still travelling on live wires (the
        // upstream tail of a chain). The phit carries the packet's vnet,
        // so the store is not consulted here.
        for ri in 0..self.routers.len() {
            let rid = RouterId(ri as u32);
            for pi in 0..self.topo.radix(rid) {
                let op = PortId(pi as u8);
                let Some(peer) = self.topo.neighbor(rid, op) else {
                    continue;
                };
                let mut removed: Vec<(VcId, bool, Vnet)> = Vec::new();
                {
                    let lid = self.link_base[ri] as usize + pi;
                    self.out_links[lid].retain_phits(|(_, phit)| match phit {
                        Phit::Flit {
                            flit,
                            vc,
                            vnet,
                            spin,
                        } if hit(flit.packet) => {
                            removed.push((*vc, *spin, *vnet));
                            false
                        }
                        _ => true,
                    });
                }
                for (vc, spin, vnet) in removed {
                    if spin {
                        self.meta
                            .spin_inflight_add(peer.router, peer.port, vnet, -1);
                    } else {
                        self.meta
                            .inflight_add(now, peer.router, peer.port, vnet, vc, -1);
                    }
                }
            }
        }
        // Injection links and NIC streams: the NIC may still be streaming
        // a severed packet's tail (cut-through lets a head claim — and
        // die on — a link before its tail leaves the source).
        for n in 0..self.nics.len() {
            let at = self.topo.node_attach(NodeId(n as u32));
            let mut removed: Vec<(VcId, Vnet)> = Vec::new();
            {
                let store = &self.store;
                self.inj_links[n].retain_phits(|(_, phit)| match phit {
                    Phit::Flit { flit, vc, .. } if hit(flit.packet) => {
                        removed.push((*vc, store.get(flit.packet).vnet));
                        false
                    }
                    _ => true,
                });
            }
            for (vc, vnet) in removed {
                self.meta
                    .inflight_add(now, at.router, at.port, vnet, vc, -1);
            }
            if let Some(act) = self.nics[n].active {
                if hit(act.handle) {
                    // The tail was never sent, so the injection reservation
                    // is still held — drop it with the stream.
                    self.meta.release(now, at.router, at.port, act.vnet, act.vc);
                    self.nics[n].active = None;
                }
            }
        }
        // Finally: free the store slots and account the loss.
        for &(h, upstream) in severed {
            let pkt = self.store.remove(h);
            self.stats.packets_dropped_by_fault += 1;
            self.stats.flits_dropped_by_fault += pkt.len as u64;
            self.emit(TraceEvent::PacketDroppedByFault {
                packet: pkt.id,
                router: upstream,
            });
        }
    }

    /// Resets the SPIN agent and per-VC protocol state of an endpoint
    /// router whose link at `dead_p` just died.
    ///
    /// The agent takes the same full reset as on a lost kill SM
    /// ([`spin_core::SpinAgent::on_link_fault`]); remote members of a
    /// broken frozen loop recover through their own deadline timeouts. The
    /// returned `UnfreezeAll` is deliberately *not* applied wholesale:
    /// a VC mid-way through streaming a spin over a live port must keep
    /// `spinning`/`frozen_out` until its tail goes out (the downstream
    /// earmark is already consumed flit by flit; aborting would strand a
    /// partial packet there forever). Such streams complete on their own —
    /// `send_flit` clears the flags at the tail. Everything else unfreezes
    /// here, and spins aimed at the dead port are cancelled (their packets
    /// were either removed as severed or are intact and simply re-route).
    fn spin_fault_reset(&mut self, er: RouterId, dead_p: PortId) {
        let now = self.now;
        let _ = {
            let view = SpinView {
                router: &self.routers[er.index()],
                topo: &self.topo,
                store: &self.store,
            };
            self.agents[er.index()].on_link_fault(now, &view)
        };
        let mut unfroze = false;
        let coords: Vec<_> = self.routers[er.index()].vc_coords().collect();
        for (pi, vn, vi) in coords {
            let vcb = self.routers[er.index()].vc_mut(pi, vn, vi);
            if vcb.frozen_out == Some(dead_p) {
                // Aimed at the dead link: cancel outright.
                unfroze |= vcb.frozen;
                vcb.frozen = false;
                vcb.frozen_out = None;
                vcb.spinning = false;
            } else if !vcb.spinning {
                unfroze |= vcb.frozen;
                vcb.frozen = false;
                vcb.frozen_out = None;
            }
        }
        if unfroze {
            self.emit(TraceEvent::VcUnfrozen { router: er });
        }
        // Spin pushes can never arrive through a dead wire again; drop the
        // stale landing earmarks so a later heal cannot misdirect a push.
        for vn in 0..self.cfg.vnets {
            self.routers[er.index()].clear_spin_rx(dead_p, Vnet(vn));
        }
    }

    /// Clears the routing choices of every unallocated head packet in the
    /// network, forcing a fresh route computation against the changed
    /// topology next cycle (allocated packets keep draining — their link
    /// still exists, or they were already handled as severed/re-routed).
    /// Returns how many packets were cleared, for the `reroute_computed`
    /// trace event.
    fn clear_unallocated_choices(&mut self) -> u32 {
        let mut cleared = 0u32;
        for ri in 0..self.routers.len() {
            if self.routers[ri].is_idle() {
                continue;
            }
            for vns in self.routers[ri].in_vcs.iter_mut() {
                for vcs in vns.iter_mut() {
                    for vcb in vcs.iter_mut() {
                        if let Some(pb) = vcb.q.front_mut() {
                            if pb.out.is_none() && !pb.choices.is_empty() {
                                pb.choices.clear();
                                pb.head_since = None;
                                cleared += 1;
                            }
                        }
                    }
                }
            }
        }
        cleared
    }
}
