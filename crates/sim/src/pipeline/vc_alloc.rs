//! Stage 6 — VC allocation (virtual cut-through): a routed head packet
//! claims a whole downstream VC, honouring the routing algorithm's VC mask,
//! Static Bubble recovery grants and bubble flow control.

use crate::network::Network;
use spin_routing::VcMask;
use spin_trace::TraceEvent;
use spin_types::{PortId, RouterId, VcId};

impl Network {
    pub(crate) fn vc_allocate(&mut self) {
        let now = self.now;
        let reserved = VcId(self.cfg.vcs_per_vnet - 1);
        let (ids, ranges, coords) = self.take_coord_cache();
        for (k, &ri) in ids.iter().enumerate() {
            let i = ri as usize;
            let (lo, hi) = ranges[k];
            if lo == hi {
                continue; // idle router (dense-oracle mode visits them all)
            }
            let rid = RouterId(ri);
            for &(p, vn, v) in &coords[lo as usize..hi as usize] {
                let vcb = self.routers[i].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                if pb.out.is_some() || vcb.frozen || vcb.spinning || pb.choices.is_empty() {
                    continue;
                }
                // Static Bubble: a long-blocked head may also use the
                // reserved VC (the recovery grant). Walked as a second pass
                // over the same choices with the mask narrowed to the
                // reserved VC — no candidate-list clone on the hot path.
                let grant = self.cfg.static_bubble
                    && pb
                        .head_since
                        .map(|since| now.saturating_sub(since) >= self.cfg.bubble_timeout)
                        .unwrap_or(false);
                let mut alloc: Option<(PortId, VcId)> = None;
                'outer: for pass in 0..=(grant as usize) {
                    for c in &pb.choices {
                        let mask = if pass == 0 {
                            c.vc_mask
                        } else {
                            VcMask::only(reserved)
                        };
                        let port = self.topo.port(rid, c.out_port);
                        if port.is_local() {
                            alloc = Some((c.out_port, VcId(0)));
                            break 'outer;
                        }
                        let Some(peer) = port.conn else { continue };
                        // Bubble flow control: injections and turns must
                        // leave one VC free at the target port (the bubble).
                        let needs_bubble = self.cfg.bubble_flow_control
                            && hop_needs_bubble(&self.topo, rid, p, c.out_port);
                        if needs_bubble {
                            let free = (0..self.cfg.vcs_per_vnet)
                                .filter(|&v| {
                                    self.meta.allocatable(peer.router, peer.port, vn, VcId(v))
                                })
                                .count();
                            if free < 2 {
                                continue;
                            }
                        }
                        for tv in 0..self.cfg.vcs_per_vnet {
                            let tv = VcId(tv);
                            if !mask.contains(tv) {
                                continue;
                            }
                            if self.meta.allocatable(peer.router, peer.port, vn, tv) {
                                self.meta.reserve(now, peer.router, peer.port, vn, tv);
                                alloc = Some((c.out_port, tv));
                                if grant && tv == reserved {
                                    self.stats.bubble_grants += 1;
                                }
                                break 'outer;
                            }
                        }
                    }
                }
                if let Some(out) = alloc {
                    let handle = {
                        let pb = self.routers[i]
                            .vc_mut(p, vn, v)
                            .head_mut()
                            .expect("head still present");
                        pb.out = Some(out);
                        pb.handle
                    };
                    if self.trace_on() {
                        let packet = self.store.get(handle).id;
                        self.emit(TraceEvent::VcAllocated {
                            packet,
                            router: rid,
                            out_port: out.0,
                            vc: out.1,
                        });
                    }
                }
            }
        }
        self.restore_coord_cache(ids, ranges, coords);
    }
}

/// Bubble flow control: does a hop from `in_port` to `out_port` at
/// router `r` need to preserve a bubble? Injections and dimension /
/// direction changes do; continuing straight along a ring does not
/// (the in-flight packet only rotates its ring's occupancy). A free
/// function so the sharded kernel's workers can call it without a
/// `Network` borrow.
pub(crate) fn hop_needs_bubble(
    topo: &spin_topology::Topology,
    r: RouterId,
    in_port: PortId,
    out_port: PortId,
) -> bool {
    if topo.port(r, in_port).is_local() {
        return true; // injection into the ring
    }
    use spin_topology::TopologyKind;
    match topo.kind() {
        TopologyKind::Mesh { .. } | TopologyKind::Torus { .. } => {
            match (topo.port_dir(in_port), topo.port_dir(out_port)) {
                // Straight = leaving through the port opposite the one
                // we entered (same dimension, same direction).
                (Some(din), Some(dout)) => dout != din.opposite(),
                _ => true,
            }
        }
        TopologyKind::Ring { .. } => {
            // Ports 1 (cw) and 2 (ccw): straight-through pairs.
            !(in_port.0 == 1 && out_port.0 == 2 || in_port.0 == 2 && out_port.0 == 1)
        }
        _ => true, // conservative on arbitrary graphs
    }
}
