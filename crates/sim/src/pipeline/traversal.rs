//! Switch/link traversal: the single path every flit send takes — normal
//! sends, ejections and spin pushes — keeping the credit mirror, link-use
//! stats and buffer bookkeeping consistent in one place.

use crate::link::Phit;
use crate::network::Network;
use spin_types::{Flit, PortId, RouterId, VcId, Vnet};

impl Network {
    /// Emits one flit from (router i, in-port p, vnet vn, vc v) through
    /// `out_port` towards downstream VC `tvc` (ignored for spin pushes,
    /// which land in the receiver's earmarked VC).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_flit(
        &mut self,
        i: usize,
        p: PortId,
        vn: Vnet,
        v: VcId,
        out_port: PortId,
        tvc: VcId,
        spin: bool,
    ) {
        let now = self.now;
        let rid = RouterId(i as u32);
        let (flit, is_tail, fully_sent) = {
            let pb = self.routers[i]
                .vc_mut(p, vn, v)
                .head_mut()
                .expect("send_flit requires a head packet");
            // A flit is a 16-byte Copy handle: no header clone on the
            // per-flit send path.
            let flit = Flit::new(pb.handle, pb.sent, pb.len);
            pb.sent += 1;
            (flit, flit.kind.is_tail(), pb.fully_sent())
        };
        let port = self.topo.port(rid, out_port);
        if let Some(peer) = port.conn {
            self.stats.link_use.flit += 1;
            if let Some(m) = &mut self.metrics {
                m.on_link_flit(rid, out_port);
            }
            if spin {
                self.meta.spin_inflight_add(peer.router, peer.port, vn, 1);
            } else {
                self.meta
                    .wire(now, peer.router, peer.port, vn, tvc, is_tail);
            }
        }
        self.link_at_mut(i, out_port.index()).send(
            now,
            Phit::Flit {
                flit,
                vc: tvc,
                vnet: vn,
                spin,
            },
        );
        self.mark_link(i, out_port);
        self.meta.occ_add(now, rid, p, vn, v, -1);
        if fully_sent {
            let router = &mut self.routers[i];
            let vcb = router.vc_mut(p, vn, v);
            vcb.q.pop_front();
            if spin {
                vcb.spinning = false;
                vcb.frozen = false;
                vcb.frozen_out = None;
            }
            if let Some(next) = vcb.head_mut() {
                next.head_since = None;
            }
            if router.vc(p, vn, v).q.is_empty() {
                router.note_emptied(p, vn, v);
            }
        }
    }
}
