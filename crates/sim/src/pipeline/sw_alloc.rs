//! Stages 7/8 — switch allocation: ejection is stall-free; on network
//! ports spin streaming pre-empts the crossbar, then round-robin
//! arbitration picks one input VC per output port. Winners traverse via
//! [`traversal`](super::traversal).

use crate::config::Switching;
use crate::network::Network;
use spin_types::{PortId, RouterId, VcId};

impl Network {
    pub(crate) fn switch_traverse(&mut self) {
        let mut coords = std::mem::take(&mut self.scratch_coords);
        for i in 0..self.routers.len() {
            if self.routers[i].occupied_vcs == 0 {
                continue;
            }
            let rid = RouterId(i as u32);
            self.routers[i].active_coords_into(&mut coords);
            // Ejection: stall-free, unbounded bandwidth (paper Sec. II-F).
            for &(p, vn, v) in &coords {
                let vcb = self.routers[i].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                let Some((op, _)) = pb.out else { continue };
                if self.topo.port(rid, op).is_local() && pb.flit_available() {
                    self.send_flit(i, p, vn, v, op, VcId(0), false);
                }
            }
            // Network ports: spins pre-empt, then round-robin SA.
            for op_idx in 0..self.out_links[i].len() {
                let op = PortId(op_idx as u8);
                if !self.topo.port(rid, op).is_network() {
                    continue;
                }
                if self.sm_busy.contains(&(rid.0, op.0)) {
                    continue;
                }
                // Spin streaming gets the link.
                let spin_vc = coords.iter().copied().find(|&(p, vn, v)| {
                    let vcb = self.routers[i].vc(p, vn, v);
                    vcb.spinning
                        && vcb.frozen_out == Some(op)
                        && vcb.head().map(|pb| pb.flit_available()).unwrap_or(false)
                });
                if let Some((p, vn, v)) = spin_vc {
                    self.send_flit(i, p, vn, v, op, VcId(0), true);
                    continue;
                }
                // Round-robin switch allocation.
                let n = coords.len();
                if n == 0 {
                    continue;
                }
                let start = self.routers[i].sa_rr[op_idx] % n;
                let mut winner = None;
                for k in 0..n {
                    let (p, vn, v) = coords[(start + k) % n];
                    let vcb = self.routers[i].vc(p, vn, v);
                    if vcb.frozen || vcb.spinning {
                        continue;
                    }
                    let Some(pb) = vcb.head() else { continue };
                    let Some((pout, tvc)) = pb.out else { continue };
                    if pout != op || !pb.flit_available() {
                        continue;
                    }
                    // Wormhole: per-flit backpressure (VCT pre-reserves a
                    // whole packet's space at allocation, so no check).
                    if self.cfg.switching == Switching::Wormhole {
                        if let Some(peer) = self.topo.port(rid, op).conn {
                            if self
                                .meta
                                .space(peer.router, peer.port, vn, tvc, self.cfg.vc_depth)
                                == 0
                            {
                                continue;
                            }
                        }
                    }
                    winner = Some(((p, vn, v), tvc, (start + k) % n));
                    break;
                }
                if let Some(((p, vn, v), tvc, pos)) = winner {
                    self.routers[i].sa_rr[op_idx] = (pos + 1) % n;
                    self.send_flit(i, p, vn, v, op, tvc, false);
                }
            }
        }
        self.scratch_coords = coords;
    }
}
