//! Stages 7/8 — switch allocation: ejection is stall-free; on network
//! ports spin streaming pre-empts the crossbar, then round-robin
//! arbitration picks one input VC per output port. Winners traverse via
//! [`traversal`](super::traversal).

use crate::config::Switching;
use crate::network::Network;
use spin_types::{PortId, RouterId, VcId};

impl Network {
    pub(crate) fn switch_traverse(&mut self) {
        let (ids, ranges, coords) = self.take_coord_cache();
        // Candidate out-ports of the router under arbitration (reused
        // across routers). A port no resident packet wants is a no-op in
        // the dense kernel — no spin stream, no round-robin winner, no
        // pointer update — so arbitrating only wanted ports is
        // state-identical while skipping the all-ports walk.
        let mut cand_ports: Vec<u8> = Vec::new();
        for (k, &ri) in ids.iter().enumerate() {
            let i = ri as usize;
            let (lo, hi) = ranges[k];
            if lo == hi {
                continue; // idle router (dense-oracle mode visits them all)
            }
            let rid = RouterId(ri);
            let rc = &coords[lo as usize..hi as usize];
            // Ejection: stall-free, unbounded bandwidth (paper Sec. II-F).
            for &(p, vn, v) in rc {
                let vcb = self.routers[i].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                let Some((op, _)) = pb.out else { continue };
                if self.topo.port(rid, op).is_local() && pb.flit_available() {
                    self.send_flit(i, p, vn, v, op, VcId(0), false);
                }
            }
            // Network ports: spins pre-empt, then round-robin SA. Gather
            // the ports some VC actually wants: a spinning VC streams to
            // its frozen outport; an unfrozen VC contends for its head's
            // allocated output.
            cand_ports.clear();
            if self.dense_step {
                // Oracle mode arbitrates every port, validating that the
                // gathered candidate set below skips only no-op ports.
                cand_ports.extend(0..self.topo.radix(rid) as u8);
            } else {
                for &(p, vn, v) in rc {
                    let vcb = self.routers[i].vc(p, vn, v);
                    let want = if vcb.spinning {
                        vcb.frozen_out
                    } else if vcb.frozen {
                        None
                    } else {
                        vcb.head().and_then(|pb| pb.out.map(|(op, _)| op))
                    };
                    if let Some(op) = want {
                        if !cand_ports.contains(&op.0) {
                            cand_ports.push(op.0);
                        }
                    }
                }
                cand_ports.sort_unstable();
            }
            for &cp in &cand_ports {
                let op_idx = cp as usize;
                let op = PortId(cp);
                if !self.topo.port(rid, op).is_network() {
                    continue;
                }
                if self.sm_busy.contains(&(rid.0, op.0)) {
                    continue;
                }
                // Spin streaming gets the link.
                let spin_vc = rc.iter().copied().find(|&(p, vn, v)| {
                    let vcb = self.routers[i].vc(p, vn, v);
                    vcb.spinning
                        && vcb.frozen_out == Some(op)
                        && vcb.head().map(|pb| pb.flit_available()).unwrap_or(false)
                });
                if let Some((p, vn, v)) = spin_vc {
                    self.send_flit(i, p, vn, v, op, VcId(0), true);
                    continue;
                }
                // Round-robin switch allocation.
                let n = rc.len();
                let start = self.routers[i].sa_rr[op_idx] % n;
                let mut winner = None;
                for k in 0..n {
                    let (p, vn, v) = rc[(start + k) % n];
                    let vcb = self.routers[i].vc(p, vn, v);
                    if vcb.frozen || vcb.spinning {
                        continue;
                    }
                    let Some(pb) = vcb.head() else { continue };
                    let Some((pout, tvc)) = pb.out else { continue };
                    if pout != op || !pb.flit_available() {
                        continue;
                    }
                    // Wormhole: per-flit backpressure (VCT pre-reserves a
                    // whole packet's space at allocation, so no check).
                    if self.cfg.switching == Switching::Wormhole {
                        if let Some(peer) = self.topo.port(rid, op).conn {
                            if self
                                .meta
                                .space(peer.router, peer.port, vn, tvc, self.cfg.vc_depth)
                                == 0
                            {
                                continue;
                            }
                        }
                    }
                    winner = Some(((p, vn, v), tvc, (start + k) % n));
                    break;
                }
                if let Some(((p, vn, v), tvc, pos)) = winner {
                    self.routers[i].sa_rr[op_idx] = (pos + 1) % n;
                    self.send_flit(i, p, vn, v, op, tvc, false);
                }
            }
        }
        self.restore_coord_cache(ids, ranges, coords);
    }
}
