//! Stage 1 — link delivery: phits whose delay elapsed this cycle arrive at
//! router input VCs (or eject into their destination NIC), and SMs land in
//! the per-router inbox for [`spin_engine`](super::spin_engine).

use crate::link::Phit;
use crate::network::Network;
use crate::vc::PacketBuf;
use spin_trace::TraceEvent;
use spin_traffic::PacketSpec;
use spin_types::{Flit, NodeId, PortId, RouterId, VcId, Vnet};

impl Network {
    pub(crate) fn deliver_phits(&mut self) {
        let now = self.now;
        let mut phits = std::mem::take(&mut self.scratch_phits);
        let mut ids = std::mem::take(&mut self.scratch_ids);
        // The flat link-id space puts router out-links (ascending (r, p))
        // before injection links (ascending node), so walking the worklist
        // in id order replays the dense two-phase delivery order exactly.
        ids.clear();
        if self.dense_step {
            ids.extend(0..self.inj_base + self.inj_links.len() as u32);
        } else {
            self.active_links.sorted_into(&mut ids);
        }
        // Retention is folded into the walk: the set is epoch-cleared, then
        // each visited link re-inserts itself (ascending, so the list stays
        // sorted) while its wire still carries phits. Fault-killed links
        // drain to empty and fall out here too; every send site re-inserts.
        self.active_links.clear();
        for &lid in &ids {
            phits.clear();
            if lid < self.inj_base {
                let (r, p) = self.link_owner[lid as usize];
                // The worklist id IS the flat out-link index.
                let link = &mut self.out_links[lid as usize];
                link.deliver(now, &mut phits);
                if link.in_flight() > 0 {
                    self.active_links.insert(lid as usize);
                }
                if phits.is_empty() {
                    continue;
                }
                let rid = RouterId(r);
                let port = self.topo.port(rid, PortId(p));
                if let Some(node) = port.node {
                    for phit in phits.drain(..) {
                        if let Phit::Flit { flit, .. } = phit {
                            self.eject_flit(node, flit);
                        }
                    }
                } else if let Some(peer) = port.conn {
                    for phit in phits.drain(..) {
                        match phit {
                            Phit::Flit {
                                flit,
                                vc,
                                vnet,
                                spin,
                            } => {
                                self.arrive_flit(
                                    peer.router,
                                    peer.port,
                                    flit,
                                    vc,
                                    vnet,
                                    spin,
                                    true,
                                );
                            }
                            Phit::Sm(sm) => {
                                self.mark_router(peer.router);
                                self.inbox[peer.router.index()].push((peer.port, *sm));
                            }
                        }
                    }
                }
            } else {
                let n = (lid - self.inj_base) as usize;
                self.inj_links[n].deliver(now, &mut phits);
                if self.inj_links[n].in_flight() > 0 {
                    self.active_links.insert(lid as usize);
                }
                let at = self.topo.node_attach(NodeId(n as u32));
                for phit in phits.drain(..) {
                    if let Phit::Flit {
                        flit,
                        vc,
                        vnet,
                        spin,
                    } = phit
                    {
                        self.arrive_flit(at.router, at.port, flit, vc, vnet, spin, false);
                    }
                }
            }
        }
        self.scratch_ids = ids;
        self.scratch_phits = phits;
    }

    #[allow(clippy::too_many_arguments)]
    fn arrive_flit(
        &mut self,
        r: RouterId,
        p: PortId,
        flit: Flit,
        vc: VcId,
        vnet: Vnet,
        spin: bool,
        network_hop: bool,
    ) {
        let now = self.now;
        // Any arrival is a wakeup: the router has a flit to act on.
        self.mark_router(r);
        let tvc = if spin {
            match self.routers[r.index()].spin_rx(p, vnet) {
                Some(v) => v,
                None => {
                    self.stats.spin_orphans += 1;
                    vc
                }
            }
        } else {
            vc
        };
        if flit.kind.is_head() {
            // The one per-hop header mutation: routing state advances on
            // the single authoritative header in the store, not on flit
            // copies. One store lookup covers the hop counters, the
            // intermediate-target check and the trace id.
            let is_global = network_hop && self.topo.is_global_port(r, p);
            let topo = &self.topo;
            let pkt = self.store.get_mut(flit.packet);
            if network_hop {
                pkt.hops += 1;
                if is_global {
                    pkt.global_hops += 1;
                }
            }
            if let Some(inter) = pkt.intermediate {
                if topo.node_router(inter) == r {
                    pkt.intermediate = None;
                }
            }
            let len = pkt.len;
            let packet = pkt.id;
            if network_hop && self.trace_on() {
                self.emit(TraceEvent::PacketHop {
                    packet,
                    router: r,
                    port: p,
                    vc: tvc,
                });
            }
            let mut pb = PacketBuf::new(flit.packet, len);
            pb.received = 1;
            let router = &mut self.routers[r.index()];
            if router.vc(p, vnet, tvc).q.is_empty() {
                router.note_occupied(p, vnet, tvc);
            }
            router.vc_mut(p, vnet, tvc).q.push_back(pb);
        } else {
            let vcb = self.routers[r.index()].vc_mut(p, vnet, tvc);
            if let Some(pb) = vcb.q.iter_mut().rev().find(|pb| pb.received < pb.len) {
                pb.received += 1;
            } else {
                // A body flit with no waiting header can only come from a
                // mis-steered spin push.
                self.stats.spin_orphans += 1;
            }
        }
        if spin {
            self.meta.occ_add(now, r, p, vnet, tvc, 1);
            self.meta.spin_inflight_add(r, p, vnet, -1);
            if flit.kind.is_tail() {
                self.routers[r.index()].clear_spin_rx(p, vnet);
            }
        } else {
            self.meta.arrive(now, r, p, vnet, tvc);
        }
        let occ = self.routers[r.index()].vc(p, vnet, tvc).occupancy();
        if occ > self.cfg.vc_depth as usize {
            self.stats.overflow_events += 1;
        }
    }

    pub(crate) fn eject_flit(&mut self, node: NodeId, flit: Flit) {
        if !flit.kind.is_tail() {
            return;
        }
        // Tail ejection: the packet is done — read the header out whole for
        // final stats accounting and free its store slot for recycling.
        let pkt = self.store.remove(flit.packet);
        let now = self.now;
        self.stats.packets_delivered += 1;
        self.stats.flits_delivered += pkt.len as u64;
        let net_lat = now.saturating_sub(pkt.injected_at);
        let tot_lat = now.saturating_sub(pkt.created_at);
        self.stats.network_latency_sum += net_lat;
        self.stats.total_latency_sum += tot_lat;
        self.stats.max_latency = self.stats.max_latency.max(tot_lat);
        self.stats.window_flits_delivered += pkt.len as u64;
        self.stats.window_packets_delivered += 1;
        self.stats.window_network_latency_sum += net_lat;
        self.stats.window_total_latency_sum += tot_lat;
        if let Some(m) = &mut self.metrics {
            m.on_packet_delivered(pkt.len as u64, tot_lat);
        }
        if self.trace_on() {
            self.emit(TraceEvent::PacketEject {
                packet: pkt.id,
                node,
                net_latency: net_lat.min(u32::MAX as u64) as u32,
                total_latency: tot_lat.min(u32::MAX as u64) as u32,
            });
        }
        let spec = PacketSpec {
            dst: node,
            len: pkt.len,
            vnet: pkt.vnet,
        };
        self.traffic.delivered(&spec, pkt.src, now);
    }
}
