//! Runtime fault injection: deterministic, seed-driven schedules of link
//! kill/heal events, consumed by the simulator's fault pipeline stage.
//!
//! A [`FaultPlan`] is a sorted list of [`FaultEvent`]s. Install one with
//! [`NetworkBuilder::faults`]; at the start of each scheduled cycle —
//! atomically, before any pipeline stage runs — the network applies every
//! due event: the link goes down (or comes back up) between cycles, flits
//! stranded on the dead wire are drained with full accounting, and routing
//! state is re-derived so traffic reroutes instead of wedging. The fault
//! model, event ordering and reroute guarantees are specified in
//! `docs/FAULTS.md`.
//!
//! Plans are plain data and deliberately independent of the network's own
//! RNG: [`FaultPlan::random_kills`] draws from its own seeded generator at
//! construction time, so a faulted run perturbs none of the traffic or
//! routing randomness — a run with an empty plan is bit-identical to a run
//! without one.
//!
//! [`NetworkBuilder::faults`]: crate::NetworkBuilder::faults
//!
//! # Examples
//!
//! ```
//! use spin_sim::{FaultAction, FaultPlan};
//! use spin_topology::Topology;
//! use spin_types::{PortId, RouterId};
//!
//! // Explicit schedule: kill r0's North link at cycle 100, heal at 400.
//! let plan = FaultPlan::new()
//!     .kill(100, RouterId(0), PortId(1))
//!     .heal(400, RouterId(0), PortId(1));
//! assert_eq!(plan.len(), 2);
//!
//! // Seed-driven schedule: 3 random kills in cycles [500, 1500).
//! let topo = Topology::mesh(8, 8);
//! let random = FaultPlan::random_kills(&topo, 3, (500, 1500), None, 42);
//! assert_eq!(random.len(), 3);
//! ```

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use spin_topology::Topology;
use spin_types::{Cycle, PortId, RouterId};

/// What a [`FaultEvent`] does to its link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultAction {
    /// Take the bidirectional link down. A kill that would disconnect the
    /// network is rejected (and traced) rather than applied; a kill naming
    /// a port that is already dead or not a network port is also rejected.
    Kill,
    /// Bring a previously killed link back up. A heal naming a link that
    /// is not currently down is ignored.
    Heal,
}

/// One scheduled link fault. The link is identified by either endpoint;
/// both directions are affected atomically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the event applies, before any pipeline stage of that cycle.
    pub at: Cycle,
    /// Kill or heal.
    pub action: FaultAction,
    /// Endpoint router.
    pub router: RouterId,
    /// Endpoint port.
    pub port: PortId,
}

/// A deterministic schedule of link kill/heal events, sorted by cycle
/// (ties broken by router, port, then action) so application order never
/// depends on construction order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; zero per-cycle cost).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a link kill at cycle `at` (builder style).
    pub fn kill(mut self, at: Cycle, router: RouterId, port: PortId) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::Kill,
            router,
            port,
        });
        self.normalize();
        self
    }

    /// Schedules a link heal at cycle `at` (builder style).
    pub fn heal(mut self, at: Cycle, router: RouterId, port: PortId) -> Self {
        self.events.push(FaultEvent {
            at,
            action: FaultAction::Heal,
            router,
            port,
        });
        self.normalize();
        self
    }

    /// A seed-driven schedule of `n` kills of distinct links, spread
    /// uniformly over cycles `[window.0, window.1)`. When `heal_after` is
    /// `Some(d)`, every kill is paired with a heal `d` cycles later.
    ///
    /// Candidate links are the topology's bidirectional network links in
    /// canonical (lower endpoint first) order; the schedule depends only on
    /// `topo`'s link set, `n`, `window` and `seed` — never on the network's
    /// own RNG, so installing the plan perturbs no other randomness.
    /// Whether each kill is *applied* is still decided at runtime (a
    /// disconnecting kill is rejected and traced).
    ///
    /// # Panics
    ///
    /// Panics if `window` is empty or `n` exceeds the number of links.
    pub fn random_kills(
        topo: &Topology,
        n: usize,
        window: (Cycle, Cycle),
        heal_after: Option<Cycle>,
        seed: u64,
    ) -> Self {
        assert!(window.0 < window.1, "empty fault window");
        // Canonical undirected link list: keep the direction whose
        // (router, port) endpoint is lexicographically smaller.
        let mut links: Vec<(RouterId, PortId)> = topo
            .links()
            .filter(|(from, to)| (from.router.0, from.port.0) < (to.router.0, to.port.0))
            .map(|(from, _)| (from.router, from.port))
            .collect();
        assert!(
            n <= links.len(),
            "cannot kill {n} links: topology has only {}",
            links.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        links.shuffle(&mut rng);
        let mut plan = FaultPlan::new();
        for &(router, port) in links.iter().take(n) {
            let at = rng.random_range(window.0..window.1);
            plan.events.push(FaultEvent {
                at,
                action: FaultAction::Kill,
                router,
                port,
            });
            if let Some(d) = heal_after {
                plan.events.push(FaultEvent {
                    at: at + d,
                    action: FaultAction::Heal,
                    router,
                    port,
                });
            }
        }
        plan.normalize();
        plan
    }

    /// The scheduled events, sorted by application order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn normalize(&mut self) {
        self.events
            .sort_by_key(|e| (e.at, e.router.0, e.port.0, e.action));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_cycle() {
        let plan =
            FaultPlan::new()
                .kill(200, RouterId(1), PortId(2))
                .kill(100, RouterId(0), PortId(1));
        assert_eq!(plan.events()[0].at, 100);
        assert_eq!(plan.events()[1].at, 200);
    }

    #[test]
    fn random_kills_is_deterministic_and_distinct() {
        let topo = Topology::mesh(4, 4);
        let a = FaultPlan::random_kills(&topo, 4, (100, 500), Some(300), 7);
        let b = FaultPlan::random_kills(&topo, 4, (100, 500), Some(300), 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8); // 4 kills + 4 heals
        let mut kills: Vec<_> = a
            .events()
            .iter()
            .filter(|e| e.action == FaultAction::Kill)
            .map(|e| (e.router, e.port))
            .collect();
        kills.sort();
        kills.dedup();
        assert_eq!(kills.len(), 4, "kills must target distinct links");
        for e in a.events() {
            assert!(e.at >= 100 && e.at < 500 + 300);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let topo = Topology::mesh(4, 4);
        let a = FaultPlan::random_kills(&topo, 4, (100, 500), None, 7);
        let b = FaultPlan::random_kills(&topo, 4, (100, 500), None, 8);
        assert_ne!(a, b);
    }
}
