//! The sharded step kernel: one [`Network::step`] fanned out across worker
//! threads, bit-identical to the serial kernel.
//!
//! # Model
//!
//! This is conservative parallel discrete-event simulation (PDES) over the
//! cycle-synchronous pipeline: the router set is partitioned across shards
//! (a [`Partitioner`] picks the assignment), and each of the five
//! data-parallel stages of a cycle — link delivery, NIC streaming, route
//! compute, VC allocation, switch traversal — runs its partition slices
//! concurrently with a barrier between stages. The link delay lines *are*
//! the boundary queues with lookahead: every hop delay is `latency + 1 >= 2`
//! cycles (injection links are 2), so a flit sent at cycle `t` is
//! unobservable before `t + 2` and a stage may fan out freely within one
//! cycle without ever seeing a neighbouring shard's same-cycle sends.
//!
//! # Why sharded == serial, bit for bit
//!
//! * **Unique upstream** — each credit-mirror row (router, in-port, vnet,
//!   vc) has exactly one upstream writer (see [`MetaTable`]'s docs). In VC
//!   allocation both the reads (including bubble free-counts) and the
//!   writes of any row come from that unique upstream router, so direct
//!   cross-shard writes are race-free *and* order-free.
//! * **Deferred, keyed merges** — everything order-dependent (trace
//!   emissions, tail ejections, RNG draws, switch-traversal meta ops whose
//!   rows two routers touch) is logged per shard with its serial sort key
//!   (link id, NIC id, or router id) and replayed on the main thread after
//!   the barrier, stable-sorted by key. Each shard's log is already in
//!   program order, so the stable sort reconstructs the exact serial order
//!   for *arbitrary* partition assignments.
//! * **Serial spine** — everything owning global order stays on the main
//!   thread: the traffic source and its RNG, route-draw completion (the one
//!   `gen_range` per adaptive pick, replayed ascending by router), the SPIN
//!   engine, faults, stats/metrics rollover, and idle-router pruning.
//!
//! Wormhole switching reads mid-stage credit state in switch traversal, so
//! the builder clamps wormhole configurations to one shard.

use crate::config::Switching;
use crate::link::{Link, Phit};
use crate::network::Network;
use crate::nic::{ActiveInjection, Nic};
use crate::pipeline::meta::{MetaRaw, MetaTable, NetView};
use crate::pipeline::vc_alloc::hop_needs_bubble;
use crate::router::Router;
use crate::store::StoreRaw;
use spin_core::Sm;
use spin_routing::{finish_prepared, Prepared, Routing, VcMask, XyRouting};
use spin_topology::{Topology, TopologyKind};
use spin_trace::TraceEvent;
use spin_types::{Cycle, Flit, NodeId, PortId, RouterId, VcId, Vnet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Assigns every router to a shard. Implementations must be pure functions
/// of the topology: the same `(topo, shards)` input must always produce the
/// same assignment, or determinism across runs is lost.
pub trait Partitioner: std::fmt::Debug + Send + Sync {
    /// Short human-readable name (for logs and experiment manifests).
    fn name(&self) -> &'static str;
    /// `assign[r]` = shard of router `r`; every entry must be `< shards`.
    fn assign(&self, topo: &Topology, shards: usize) -> Vec<u8>;
}

/// Contiguous-ID partitioning balanced by router radix: routers are split
/// into `shards` consecutive-id bands with roughly equal total port counts
/// (a proxy for per-cycle work).
#[derive(Debug, Clone, Copy, Default)]
pub struct ContiguousPartitioner;

impl Partitioner for ContiguousPartitioner {
    fn name(&self) -> &'static str {
        "contiguous"
    }

    fn assign(&self, topo: &Topology, shards: usize) -> Vec<u8> {
        let total: usize = (0..topo.num_routers())
            .map(|r| topo.radix(RouterId(r as u32)))
            .sum();
        let total = total.max(1);
        let mut out = Vec::with_capacity(topo.num_routers());
        let mut cum = 0usize;
        for r in 0..topo.num_routers() {
            // Midpoint rule: a router lands in the band its radix-weighted
            // centre falls into, so bands are contiguous and balanced.
            let mid = cum + topo.radix(RouterId(r as u32)) / 2;
            out.push(((mid * shards / total).min(shards - 1)) as u8);
            cum += topo.radix(RouterId(r as u32));
        }
        out
    }
}

/// Coordinate-block partitioning: on meshes and tori, rows (y bands) go to
/// shards so most links stay shard-internal; other topologies fall back to
/// [`ContiguousPartitioner`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordBlockPartitioner;

impl Partitioner for CoordBlockPartitioner {
    fn name(&self) -> &'static str {
        "coord_block"
    }

    fn assign(&self, topo: &Topology, shards: usize) -> Vec<u8> {
        match *topo.kind() {
            TopologyKind::Mesh { width, height } | TopologyKind::Torus { width, height } => (0
                ..topo.num_routers())
                .map(|r| {
                    let y = r as u32 / width;
                    ((y as usize * shards / height as usize).min(shards - 1)) as u8
                })
                .collect(),
            _ => ContiguousPartitioner.assign(topo, shards),
        }
    }
}

/// The frozen ownership maps derived from a partition assignment.
#[derive(Debug)]
pub(crate) struct ShardPlan {
    pub(crate) shards: usize,
    /// `shard_of_router[r]` = shard that owns router `r`'s state.
    pub(crate) shard_of_router: Vec<u8>,
    /// Delivery-phase owner per flat link id (out-links then injection
    /// links): the shard of the *receiving* router — peer router for
    /// connected ports, the owning router for ejection/dangling ports, the
    /// attach router for injection links. Built as-built; faults drain dead
    /// links and heals restore identical endpoints, so the map stays valid.
    pub(crate) lid_owner: Vec<u8>,
    /// Streaming-phase owner per NIC: the shard of its attach router.
    pub(crate) nic_owner: Vec<u8>,
}

impl ShardPlan {
    fn build(
        topo: &Topology,
        assign: &[u8],
        shards: usize,
        link_owner: &[(u32, u8)],
        inj_base: u32,
    ) -> ShardPlan {
        let mut lid_owner = Vec::with_capacity(inj_base as usize + topo.num_nodes());
        for &(r, p) in link_owner {
            let rid = RouterId(r);
            let port = topo.port(rid, PortId(p));
            let owner = match port.conn {
                Some(peer) => assign[peer.router.index()],
                None => assign[rid.index()],
            };
            lid_owner.push(owner);
        }
        let mut nic_owner = Vec::with_capacity(topo.num_nodes());
        for n in 0..topo.num_nodes() {
            let at = topo.node_attach(NodeId(n as u32));
            // The injection link delivers at the attach router.
            lid_owner.push(assign[at.router.index()]);
            nic_owner.push(assign[at.router.index()]);
        }
        ShardPlan {
            shards,
            shard_of_router: assign.to_vec(),
            lid_owner,
            nic_owner,
        }
    }
}

/// Per-shard accumulated statistics deltas, applied serially at each merge.
#[derive(Debug, Default, Clone, Copy)]
struct StatsDelta {
    spin_orphans: u64,
    overflow_events: u64,
    packets_injected: u64,
    flits_injected: u64,
    bubble_grants: u64,
}

/// Order-dependent delivery-phase event, deferred and replayed in link-id
/// order: the head-hop trace emission, and the tail ejection (store free,
/// stats, traffic feedback, trace).
#[derive(Debug)]
enum P1Event {
    Hop(TraceEvent),
    Eject { node: NodeId, flit: Flit },
}

/// A prepared (RNG-free) route computation awaiting its serial completion.
#[derive(Debug)]
struct PendRoute {
    router: u32,
    p: PortId,
    vn: Vnet,
    v: VcId,
    prepared: Prepared,
    escape: bool,
}

/// A switch-traversal meta/stats op whose target row two routers may touch
/// in one cycle (the upstream `wire` vs the owner's `occ_add`): deferred
/// and applied in sender-router order, reproducing the serial interleave.
#[derive(Debug, Clone, Copy)]
enum P6Op {
    LinkFlit {
        r: RouterId,
        p: PortId,
    },
    Wire {
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
        tail: bool,
    },
    SpinInflight {
        r: RouterId,
        p: PortId,
        vn: Vnet,
    },
    OccAdd {
        r: RouterId,
        p: PortId,
        vn: Vnet,
        vc: VcId,
    },
}

/// The five data-parallel stages of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Deliver,
    Inject,
    Route,
    VcAlloc,
    Switch,
}

/// Per-shard working state: the phase's input partition, its deferred
/// output logs, and reusable scratch. One per shard, touched exclusively by
/// that shard during a phase and by the main thread between phases.
#[derive(Debug, Default)]
struct ShardCtx {
    /// Delivery partition: this shard's flat link ids, ascending.
    lids: Vec<u32>,
    /// Streaming partition: this shard's NIC ids, ascending.
    nic_ids: Vec<u32>,
    /// Router partition: indices into `cycle_ids`, ascending.
    rwork: Vec<u32>,
    /// Phit drain scratch (mirror of `Network::scratch_phits`).
    phits: Vec<Phit>,
    /// Candidate-port scratch for switch allocation.
    ports_scratch: Vec<u8>,
    /// Deferred delivery events, keyed by flat link id.
    p1_events: Vec<(u32, P1Event)>,
    /// Links still carrying phits after delivery (worklist retention).
    links_kept: Vec<u32>,
    /// Links woken by sends this phase (injection + switch traversal).
    links_woken: Vec<u32>,
    /// Routers woken by arrivals (delivery).
    routers_woken: Vec<u32>,
    /// Deferred `PacketInject` traces, keyed by NIC id.
    p3_traces: Vec<(u32, TraceEvent)>,
    /// Deferred `VcAllocated` traces, keyed by router id.
    p5_traces: Vec<(u32, TraceEvent)>,
    /// NICs still active after streaming (worklist retention).
    nics_kept: Vec<u32>,
    /// Prepared routes awaiting serial RNG completion.
    pend: Vec<PendRoute>,
    /// Deferred switch-traversal ops, keyed by sender router id.
    p6_ops: Vec<(u32, P6Op)>,
    /// Stats deltas accumulated this phase.
    d: StatsDelta,
}

/// Raw elementwise view of the [`Network`] captured at the top of each
/// parallel phase. `Copy` + `Send` so one value fans out to every worker.
///
/// # Safety contract
///
/// * Captured from `&mut Network`, so the pointers are exclusive at capture
///   time; the main thread must not touch any pointee collection until the
///   phase barrier completes.
/// * Workers materialize *elementwise* borrows only (one `Router`, `Nic`,
///   `Link`, inbox `Vec` element at a time), and the phase partitions
///   guarantee no two shards borrow the same element.
#[derive(Debug, Clone, Copy)]
#[allow(unsafe_code)]
struct RawNet {
    routers: *mut Router,
    nics: *mut Nic,
    inbox: *mut Vec<(PortId, Sm)>,
    out_links: *mut Link,
    inj_links: *mut Link,
    store: StoreRaw,
    meta: MetaRaw,
    /// Shared read-only view of the same table `meta` points into; used by
    /// the pure-reader route phase (never while `meta` writes).
    meta_table: *const MetaTable,
    topo: *const Topology,
    routing: *const dyn Routing,
    cfg: crate::config::SimConfig,
    now: Cycle,
    trace_on: bool,
    dense: bool,
    inj_base: u32,
    cycle_ids: *const u32,
    cycle_ids_len: usize,
    cycle_ranges: *const (u32, u32),
    cycle_coords: *const (PortId, Vnet, VcId),
    cycle_coords_len: usize,
    sm_busy: *const (u32, u8),
    sm_busy_len: usize,
    link_base: *const u32,
}

// SAFETY: RawNet is a bundle of raw pointers plus Copy config; every
// dereference happens in an unsafe method whose caller upholds the
// element-disjointness contract documented on the struct.
#[allow(unsafe_code)]
unsafe impl Send for RawNet {}
// SAFETY: as for Send — shared references expose no safe mutation; all
// access goes through unsafe methods with the same contract.
#[allow(unsafe_code)]
unsafe impl Sync for RawNet {}

#[allow(unsafe_code)]
impl RawNet {
    fn capture(net: &mut Network) -> RawNet {
        let trace_on = net.trace_on();
        // One *mut MetaTable is the provenance root for both the mutable
        // elementwise view and the shared read view.
        let meta_ptr: *mut MetaTable = &raw mut net.meta;
        RawNet {
            routers: net.routers.as_mut_ptr(),
            nics: net.nics.as_mut_ptr(),
            inbox: net.inbox.as_mut_ptr(),
            out_links: net.out_links.as_mut_ptr(),
            inj_links: net.inj_links.as_mut_ptr(),
            store: net.store.raw(),
            // SAFETY: meta_ptr is a fresh exclusive pointer to the live
            // table; raw() only reads Vec data pointers.
            meta: unsafe { (*meta_ptr).raw() },
            meta_table: meta_ptr as *const MetaTable,
            topo: &raw const net.topo,
            routing: net.routing.as_ref() as *const dyn Routing,
            cfg: net.cfg,
            now: net.now,
            trace_on,
            dense: net.dense_step,
            inj_base: net.inj_base,
            cycle_ids: net.cycle_ids.as_ptr(),
            cycle_ids_len: net.cycle_ids.len(),
            cycle_ranges: net.cycle_ranges.as_ptr(),
            cycle_coords: net.cycle_coords.as_ptr(),
            cycle_coords_len: net.cycle_coords.len(),
            sm_busy: net.sm_busy.as_ptr(),
            sm_busy_len: net.sm_busy.len(),
            link_base: net.link_base.as_ptr(),
        }
    }

    /// # Safety
    /// `i` in-bounds; no other live borrow of router `i` this phase.
    #[inline]
    unsafe fn router<'a>(self, i: usize) -> &'a mut Router {
        // SAFETY: per the method contract (partition-disjoint element).
        unsafe { &mut *self.routers.add(i) }
    }

    /// # Safety
    /// `i` in-bounds; no concurrent mutable borrow of router `i`.
    #[inline]
    unsafe fn router_ref<'a>(self, i: usize) -> &'a Router {
        // SAFETY: per the method contract.
        unsafe { &*self.routers.add(i) }
    }

    /// # Safety
    /// `n` in-bounds; no other live borrow of NIC `n` this phase.
    #[inline]
    unsafe fn nic<'a>(self, n: usize) -> &'a mut Nic {
        // SAFETY: per the method contract.
        unsafe { &mut *self.nics.add(n) }
    }

    /// # Safety
    /// `i` in-bounds; no other live borrow of inbox `i` this phase.
    #[inline]
    unsafe fn inbox_of<'a>(self, i: usize) -> &'a mut Vec<(PortId, Sm)> {
        // SAFETY: per the method contract.
        unsafe { &mut *self.inbox.add(i) }
    }

    /// # Safety
    /// `lid < inj_base`; no other live borrow of out-link `lid` this phase.
    #[inline]
    unsafe fn out_link<'a>(self, lid: usize) -> &'a mut Link {
        // SAFETY: per the method contract.
        unsafe { &mut *self.out_links.add(lid) }
    }

    /// # Safety
    /// `n` in-bounds; no other live borrow of injection link `n`.
    #[inline]
    unsafe fn inj_link<'a>(self, n: usize) -> &'a mut Link {
        // SAFETY: per the method contract.
        unsafe { &mut *self.inj_links.add(n) }
    }

    #[inline]
    fn topo<'a>(self) -> &'a Topology {
        // SAFETY: the topology is never mutated during a parallel phase
        // (faults apply serially between cycles).
        unsafe { &*self.topo }
    }

    #[inline]
    fn sm_busy<'a>(self) -> &'a [(u32, u8)] {
        // SAFETY: built serially before the phase, read-only during it.
        unsafe { std::slice::from_raw_parts(self.sm_busy, self.sm_busy_len) }
    }

    #[inline]
    fn link_base(self, i: usize) -> u32 {
        // SAFETY: link_base has one entry per router; read-only.
        unsafe { *self.link_base.add(i) }
    }

    /// The per-cycle router worklist snapshot (read-only during phases).
    #[inline]
    #[allow(clippy::type_complexity)]
    fn cycle<'a>(self) -> (&'a [u32], &'a [(u32, u32)], &'a [(PortId, Vnet, VcId)]) {
        // SAFETY: the coord cache is built serially before the router
        // phases and not touched until the next cycle.
        unsafe {
            (
                std::slice::from_raw_parts(self.cycle_ids, self.cycle_ids_len),
                std::slice::from_raw_parts(self.cycle_ranges, self.cycle_ids_len),
                std::slice::from_raw_parts(self.cycle_coords, self.cycle_coords_len),
            )
        }
    }
}

/// One phase dispatch: the raw network view, the shard contexts array, and
/// which phase to run.
#[derive(Debug, Clone, Copy)]
#[allow(unsafe_code)]
struct Job {
    raw: RawNet,
    ctxs: *mut ShardCtx,
    phase: Phase,
}

// SAFETY: Job carries RawNet (Send per its contract) and the ShardCtx array
// pointer; each worker dereferences only its own shard's element.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

#[derive(Debug)]
struct JobSlot {
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

#[derive(Debug)]
struct PoolShared {
    slot: Mutex<JobSlot>,
    start: Condvar,
    done: Mutex<usize>,
    finish: Condvar,
    panicked: AtomicBool,
}

/// A persistent pool of `shards - 1` phase workers; the main thread always
/// runs shard 0 inline. Condvar-parked between phases, so oversubscribed
/// hosts (including 1-core CI runners) never spin.
#[derive(Debug)]
struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

#[allow(unsafe_code)]
impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Mutex::new(0),
            finish: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spin-shard-{}", w + 1))
                    .spawn(move || worker_loop(&shared, w + 1))
                    .expect("failed to spawn shard worker thread")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Runs one phase across every shard: workers take shards `1..n`, the
    /// main thread runs shard 0 inline, then waits for the barrier.
    ///
    /// # Panics
    /// Re-raises (as a panic on the main thread) if any worker panicked.
    fn run(&self, job: Job) {
        let n = self.threads.len();
        if n == 0 {
            run_phase(job, 0);
            return;
        }
        *self.shared.done.lock().expect("shard pool mutex poisoned") = 0;
        {
            let mut slot = self.shared.slot.lock().expect("shard pool mutex poisoned");
            slot.epoch += 1;
            slot.job = Some(job);
        }
        self.shared.start.notify_all();
        run_phase(job, 0);
        let mut done = self.shared.done.lock().expect("shard pool mutex poisoned");
        while *done < n {
            done = self
                .shared
                .finish
                .wait(done)
                .expect("shard pool mutex poisoned");
        }
        drop(done);
        assert!(
            !self.shared.panicked.load(Ordering::SeqCst),
            "a shard worker thread panicked during a parallel phase"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = match self.shared.slot.lock() {
                Ok(s) => s,
                Err(p) => p.into_inner(),
            };
            slot.shutdown = true;
        }
        self.shared.start.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, shard: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = match shared.slot.lock() {
                Ok(s) => s,
                Err(p) => p.into_inner(),
            };
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    break slot.job.expect("job set with epoch bump");
                }
                slot = match shared.start.wait(slot) {
                    Ok(s) => s,
                    Err(p) => p.into_inner(),
                };
            }
        };
        if catch_unwind(AssertUnwindSafe(|| run_phase(job, shard))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        {
            let mut done = match shared.done.lock() {
                Ok(d) => d,
                Err(p) => p.into_inner(),
            };
            *done += 1;
        }
        shared.finish.notify_one();
    }
}

/// Runs `job.phase` for shard `shard`.
#[allow(unsafe_code)]
fn run_phase(job: Job, shard: usize) {
    // SAFETY: ctxs points at ShardState.ctxs (len == shards, boxed so the
    // address is stable); each shard index is claimed by exactly one thread
    // per phase (workers take 1..n, main takes 0).
    let ctx = unsafe { &mut *job.ctxs.add(shard) };
    match job.phase {
        Phase::Deliver => p1_deliver(job.raw, ctx),
        Phase::Inject => p3_inject(job.raw, ctx),
        Phase::Route => p4_route(job.raw, ctx),
        Phase::VcAlloc => p5_vc_alloc(job.raw, ctx),
        Phase::Switch => p6_switch(job.raw, ctx),
    }
}

/// The sharded-kernel state hung off the [`Network`]: the frozen plan, the
/// per-shard contexts, the worker pool, and merge scratch.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub(crate) plan: ShardPlan,
    /// The partitioner that produced the plan (kept for reporting).
    pub(crate) partitioner: Box<dyn Partitioner>,
    ctxs: Vec<ShardCtx>,
    pool: WorkerPool,
    ev_scratch: Vec<(u32, P1Event)>,
    trace_scratch: Vec<(u32, TraceEvent)>,
    pend_scratch: Vec<PendRoute>,
    op_scratch: Vec<(u32, P6Op)>,
}

impl ShardState {
    pub(crate) fn new(
        topo: &Topology,
        partitioner: Box<dyn Partitioner>,
        shards: usize,
        link_owner: &[(u32, u8)],
        inj_base: u32,
    ) -> ShardState {
        let assign = partitioner.assign(topo, shards);
        assert_eq!(
            assign.len(),
            topo.num_routers(),
            "partitioner {} returned {} assignments for {} routers",
            partitioner.name(),
            assign.len(),
            topo.num_routers()
        );
        assert!(
            assign.iter().all(|&s| (s as usize) < shards),
            "partitioner {} assigned a router to a shard >= {shards}",
            partitioner.name()
        );
        let plan = ShardPlan::build(topo, &assign, shards, link_owner, inj_base);
        ShardState {
            plan,
            partitioner,
            ctxs: (0..shards).map(|_| ShardCtx::default()).collect(),
            pool: WorkerPool::new(shards - 1),
            ev_scratch: Vec::new(),
            trace_scratch: Vec::new(),
            pend_scratch: Vec::new(),
            op_scratch: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker phase bodies. Each mirrors its serial stage statement for
// statement; divergences are exactly the deferrals documented on ShardCtx.
// ---------------------------------------------------------------------------

/// Phase 1 worker: link delivery over this shard's receiver-partitioned
/// link ids (mirrors `Network::deliver_phits`).
#[allow(unsafe_code)]
fn p1_deliver(raw: RawNet, ctx: &mut ShardCtx) {
    let now = raw.now;
    ctx.p1_events.clear();
    ctx.links_kept.clear();
    ctx.routers_woken.clear();
    ctx.d = StatsDelta::default();
    let lids = std::mem::take(&mut ctx.lids);
    let mut phits = std::mem::take(&mut ctx.phits);
    let topo = raw.topo();
    for &lid in &lids {
        phits.clear();
        if lid < raw.inj_base {
            // SAFETY: lid is owned by this shard's delivery partition.
            let link = unsafe { raw.out_link(lid as usize) };
            link.deliver(now, &mut phits);
            if link.in_flight() > 0 {
                ctx.links_kept.push(lid);
            }
            if phits.is_empty() {
                continue;
            }
            // Re-derive (router, port) without the reverse map: the worker
            // never needs it for anything but the topology lookup.
            let (r, p) = link_owner_of(raw, lid);
            let rid = RouterId(r);
            let port = topo.port(rid, PortId(p));
            if let Some(node) = port.node {
                for phit in phits.drain(..) {
                    if let Phit::Flit { flit, .. } = phit {
                        // Tail ejection frees the store and feeds stats +
                        // traffic: serial-only, so defer (non-tails are
                        // no-ops in the serial path too).
                        if flit.kind.is_tail() {
                            ctx.p1_events.push((lid, P1Event::Eject { node, flit }));
                        }
                    }
                }
            } else if let Some(peer) = port.conn {
                for phit in phits.drain(..) {
                    match phit {
                        Phit::Flit {
                            flit,
                            vc,
                            vnet,
                            spin,
                        } => {
                            shard_arrive_flit(
                                raw,
                                ctx,
                                lid,
                                peer.router,
                                peer.port,
                                flit,
                                vc,
                                vnet,
                                spin,
                                true,
                            );
                        }
                        Phit::Sm(sm) => {
                            ctx.routers_woken.push(peer.router.0);
                            // SAFETY: the receiving router (and its inbox)
                            // is owned by this shard: lid_owner is the
                            // receiver's shard.
                            unsafe { raw.inbox_of(peer.router.index()) }.push((peer.port, *sm));
                        }
                    }
                }
            }
        } else {
            let n = (lid - raw.inj_base) as usize;
            // SAFETY: injection link n is owned by this shard's partition.
            let link = unsafe { raw.inj_link(n) };
            link.deliver(now, &mut phits);
            if link.in_flight() > 0 {
                ctx.links_kept.push(lid);
            }
            let at = topo.node_attach(NodeId(n as u32));
            for phit in phits.drain(..) {
                if let Phit::Flit {
                    flit,
                    vc,
                    vnet,
                    spin,
                } = phit
                {
                    shard_arrive_flit(
                        raw, ctx, lid, at.router, at.port, flit, vc, vnet, spin, false,
                    );
                }
            }
        }
    }
    ctx.lids = lids;
    ctx.phits = phits;
}

/// Inverse of the flat link-id map (binary search over `link_base`).
fn link_owner_of(raw: RawNet, lid: u32) -> (u32, u8) {
    let topo = raw.topo();
    let n = topo.num_routers();
    let (mut lo, mut hi) = (0usize, n);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if raw.link_base(mid) <= lid {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo as u32, (lid - raw.link_base(lo)) as u8)
}

/// Phase 1 worker arrival: mirrors `Network::arrive_flit` with the trace
/// emission deferred (keyed by the delivering link id) and stats deltas
/// accumulated locally.
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
fn shard_arrive_flit(
    raw: RawNet,
    ctx: &mut ShardCtx,
    lid: u32,
    r: RouterId,
    p: PortId,
    flit: Flit,
    vc: VcId,
    vnet: Vnet,
    spin: bool,
    network_hop: bool,
) {
    let now = raw.now;
    ctx.routers_woken.push(r.0);
    // SAFETY: router r is the receiver; lid_owner put this arrival on r's
    // shard, which owns the Router element for the whole phase.
    let router = unsafe { raw.router(r.index()) };
    let tvc = if spin {
        match router.spin_rx(p, vnet) {
            Some(v) => v,
            None => {
                ctx.d.spin_orphans += 1;
                vc
            }
        }
    } else {
        vc
    };
    if flit.kind.is_head() {
        let topo = raw.topo();
        let is_global = network_hop && topo.is_global_port(r, p);
        // SAFETY: the head flit's handle is mutated exactly once per hop,
        // by the shard owning the arrival (this one).
        let pkt = unsafe { raw.store.get_mut(flit.packet) };
        if network_hop {
            pkt.hops += 1;
            if is_global {
                pkt.global_hops += 1;
            }
        }
        if let Some(inter) = pkt.intermediate {
            if topo.node_router(inter) == r {
                pkt.intermediate = None;
            }
        }
        let len = pkt.len;
        let packet = pkt.id;
        if network_hop && raw.trace_on {
            ctx.p1_events.push((
                lid,
                P1Event::Hop(TraceEvent::PacketHop {
                    packet,
                    router: r,
                    port: p,
                    vc: tvc,
                }),
            ));
        }
        let mut pb = crate::vc::PacketBuf::new(flit.packet, len);
        pb.received = 1;
        if router.vc(p, vnet, tvc).q.is_empty() {
            router.note_occupied(p, vnet, tvc);
        }
        router.vc_mut(p, vnet, tvc).q.push_back(pb);
    } else {
        let vcb = router.vc_mut(p, vnet, tvc);
        if let Some(pb) = vcb.q.iter_mut().rev().find(|pb| pb.received < pb.len) {
            pb.received += 1;
        } else {
            ctx.d.spin_orphans += 1;
        }
    }
    if spin {
        // SAFETY: meta rows of (r, p, *) are written only by arrivals at r
        // this phase — all on this shard.
        unsafe {
            raw.meta.occ_add(now, r, p, vnet, tvc, 1);
            raw.meta.spin_inflight_add(r, p, vnet, -1);
        }
        if flit.kind.is_tail() {
            router.clear_spin_rx(p, vnet);
        }
    } else {
        // SAFETY: as above.
        unsafe { raw.meta.arrive(now, r, p, vnet, tvc) };
    }
    let occ = router.vc(p, vnet, tvc).occupancy();
    if occ > raw.cfg.vc_depth as usize {
        ctx.d.overflow_events += 1;
    }
}

/// Phase 3 worker: NIC streaming over this shard's NICs (mirrors
/// `Network::inject_streams`; generation already ran serially).
#[allow(unsafe_code)]
fn p3_inject(raw: RawNet, ctx: &mut ShardCtx) {
    let now = raw.now;
    ctx.nics_kept.clear();
    ctx.links_woken.clear();
    ctx.p3_traces.clear();
    ctx.d = StatsDelta::default();
    let nic_ids = std::mem::take(&mut ctx.nic_ids);
    let topo = raw.topo();
    for &nid in &nic_ids {
        let n = nid as usize;
        let node = NodeId(nid);
        // SAFETY: NIC n is owned by this shard (nic_owner); so are the
        // meta rows of its attach (router, local port) — the NIC is their
        // unique upstream.
        let nic = unsafe { raw.nic(n) };
        if nic.active.is_none() {
            if let Some(vn) = nic.next_vnet() {
                let at = topo.node_attach(node);
                let vnet = Vnet(vn as u8);
                let vc = (0..raw.cfg.vcs_per_vnet)
                    .map(VcId)
                    .filter(|&v| !(raw.cfg.static_bubble && v.0 == raw.cfg.vcs_per_vnet - 1))
                    // SAFETY: reads this NIC's own attach-port rows.
                    .find(|&v| unsafe { raw.meta.allocatable(at.router, at.port, vnet, v) });
                if let Some(vc) = vc {
                    let handle = nic.queues[vn]
                        .pop_front()
                        .expect("next_vnet returned a non-empty queue");
                    // SAFETY: the handle is queued at exactly this NIC; no
                    // other shard touches it this phase.
                    let pkt = unsafe { raw.store.get_mut(handle) };
                    pkt.injected_at = now;
                    let len = pkt.len;
                    if raw.trace_on {
                        ctx.p3_traces.push((
                            nid,
                            TraceEvent::PacketInject {
                                packet: pkt.id,
                                src: pkt.src,
                                dst: pkt.dst,
                                vnet,
                                len,
                            },
                        ));
                    }
                    // SAFETY: this NIC's own attach-port row.
                    unsafe { raw.meta.reserve(now, at.router, at.port, vnet, vc) };
                    ctx.d.packets_injected += 1;
                    nic.active = Some(ActiveInjection {
                        handle,
                        len,
                        vnet,
                        flits_sent: 0,
                        vc,
                    });
                }
            }
        }
        if let Some(mut act) = nic.active.take() {
            let at = topo.node_attach(node);
            // SAFETY: reads this NIC's own attach-port row.
            let stalled = raw.cfg.switching == Switching::Wormhole
                && unsafe {
                    raw.meta
                        .space(at.router, at.port, act.vnet, act.vc, raw.cfg.vc_depth)
                } == 0;
            if stalled {
                nic.active = Some(act);
            } else {
                let flit = Flit::new(act.handle, act.flits_sent, act.len);
                let is_tail = flit.kind.is_tail();
                // SAFETY: injection link n belongs to this NIC.
                unsafe { raw.inj_link(n) }.send(
                    now,
                    Phit::Flit {
                        flit,
                        vc: act.vc,
                        vnet: act.vnet,
                        spin: false,
                    },
                );
                ctx.links_woken.push(raw.inj_base + nid);
                // SAFETY: this NIC's own attach-port rows.
                unsafe {
                    raw.meta
                        .inflight_add(now, at.router, at.port, act.vnet, act.vc, 1);
                }
                ctx.d.flits_injected += 1;
                act.flits_sent += 1;
                if is_tail {
                    // SAFETY: as above.
                    unsafe { raw.meta.release(now, at.router, at.port, act.vnet, act.vc) };
                } else {
                    nic.active = Some(act);
                }
            }
        }
        if nic.active.is_some() || nic.queues.iter().any(|q| !q.is_empty()) {
            ctx.nics_kept.push(nid);
        }
    }
    ctx.nic_ids = nic_ids;
}

/// Phase 4 worker: RNG-free route preparation over this shard's routers — a
/// pure reader (mirrors `Network::route_compute` up to the draw, which the
/// merge replays serially in router order).
#[allow(unsafe_code)]
fn p4_route(raw: RawNet, ctx: &mut ShardCtx) {
    let now = raw.now;
    ctx.pend.clear();
    let reserved = VcId(raw.cfg.vcs_per_vnet - 1);
    let (ids, ranges, coords) = raw.cycle();
    let topo = raw.topo();
    // SAFETY: the route phase only reads the table; no MetaRaw writes occur
    // anywhere until the phase barrier.
    let meta: &MetaTable = unsafe { &*raw.meta_table };
    // SAFETY: the routing object is shared read-only (Routing: Sync).
    let routing: &dyn Routing = unsafe { &*raw.routing };
    let rwork = std::mem::take(&mut ctx.rwork);
    for &k in &rwork {
        let k = k as usize;
        let ri = ids[k];
        let i = ri as usize;
        let (lo, hi) = ranges[k];
        if lo == hi {
            continue; // idle router (dense-oracle mode visits them all)
        }
        let rid = RouterId(ri);
        for &(p, vn, v) in &coords[lo as usize..hi as usize] {
            // SAFETY: router i belongs to this shard; phase is read-only.
            let router = unsafe { raw.router_ref(i) };
            let vcb = router.vc(p, vn, v);
            let Some(pb) = vcb.head() else { continue };
            if pb.out.is_some() || vcb.frozen || vcb.spinning || pb.received == 0 {
                continue;
            }
            if !pb.choices.is_empty() {
                let stuck = pb
                    .head_since
                    .map(|t| now.saturating_sub(t) >= raw.cfg.route_stick_after)
                    .unwrap_or(false);
                if stuck {
                    continue;
                }
            }
            let handle = pb.handle;
            // SAFETY: read-only header access; headers are not mutated
            // during the route phase.
            let pkt = unsafe { raw.store.get(handle) };
            let view = NetView {
                topo,
                meta,
                now,
                vcs: raw.cfg.vcs_per_vnet,
                hidden_vc: if raw.cfg.static_bubble && v != reserved {
                    Some(reserved)
                } else {
                    None
                },
            };
            let escape = raw.cfg.static_bubble && v == reserved;
            let prepared = if escape {
                XyRouting.route_prepare(&view, rid, p, pkt)
            } else {
                routing.route_prepare(&view, rid, p, pkt)
            };
            ctx.pend.push(PendRoute {
                router: ri,
                p,
                vn,
                v,
                prepared,
                escape,
            });
        }
    }
    ctx.rwork = rwork;
}

/// Phase 5 worker: VC allocation over this shard's routers (mirrors
/// `Network::vc_allocate`). Direct cross-shard meta writes are sound here:
/// every row read or written belongs to this router as unique upstream.
#[allow(unsafe_code)]
fn p5_vc_alloc(raw: RawNet, ctx: &mut ShardCtx) {
    let now = raw.now;
    ctx.p5_traces.clear();
    ctx.d = StatsDelta::default();
    let reserved = VcId(raw.cfg.vcs_per_vnet - 1);
    let (ids, ranges, coords) = raw.cycle();
    let topo = raw.topo();
    let rwork = std::mem::take(&mut ctx.rwork);
    for &k in &rwork {
        let k = k as usize;
        let ri = ids[k];
        let i = ri as usize;
        let (lo, hi) = ranges[k];
        if lo == hi {
            continue; // idle router (dense-oracle mode visits them all)
        }
        let rid = RouterId(ri);
        for &(p, vn, v) in &coords[lo as usize..hi as usize] {
            // SAFETY: router i belongs to this shard.
            let router = unsafe { raw.router(i) };
            let vcb = router.vc(p, vn, v);
            let Some(pb) = vcb.head() else { continue };
            if pb.out.is_some() || vcb.frozen || vcb.spinning || pb.choices.is_empty() {
                continue;
            }
            let grant = raw.cfg.static_bubble
                && pb
                    .head_since
                    .map(|since| now.saturating_sub(since) >= raw.cfg.bubble_timeout)
                    .unwrap_or(false);
            let mut alloc: Option<(PortId, VcId)> = None;
            'outer: for pass in 0..=(grant as usize) {
                for c in &pb.choices {
                    let mask = if pass == 0 {
                        c.vc_mask
                    } else {
                        VcMask::only(reserved)
                    };
                    let port = topo.port(rid, c.out_port);
                    if port.is_local() {
                        alloc = Some((c.out_port, VcId(0)));
                        break 'outer;
                    }
                    let Some(peer) = port.conn else { continue };
                    let needs_bubble =
                        raw.cfg.bubble_flow_control && hop_needs_bubble(topo, rid, p, c.out_port);
                    if needs_bubble {
                        let free = (0..raw.cfg.vcs_per_vnet)
                            .filter(|&v| {
                                // SAFETY: rows downstream of this router's
                                // out-port — unique-upstream owned.
                                unsafe { raw.meta.allocatable(peer.router, peer.port, vn, VcId(v)) }
                            })
                            .count();
                        if free < 2 {
                            continue;
                        }
                    }
                    for tv in 0..raw.cfg.vcs_per_vnet {
                        let tv = VcId(tv);
                        if !mask.contains(tv) {
                            continue;
                        }
                        // SAFETY: unique-upstream owned rows (reads and the
                        // reserve write below).
                        if unsafe { raw.meta.allocatable(peer.router, peer.port, vn, tv) } {
                            // SAFETY: as above.
                            unsafe { raw.meta.reserve(now, peer.router, peer.port, vn, tv) };
                            alloc = Some((c.out_port, tv));
                            if grant && tv == reserved {
                                ctx.d.bubble_grants += 1;
                            }
                            break 'outer;
                        }
                    }
                }
            }
            if let Some(out) = alloc {
                let handle = {
                    let pb = router
                        .vc_mut(p, vn, v)
                        .head_mut()
                        .expect("head still present");
                    pb.out = Some(out);
                    pb.handle
                };
                if raw.trace_on {
                    // SAFETY: read-only header access (headers are not
                    // mutated during VC allocation).
                    let packet = unsafe { raw.store.get(handle) }.id;
                    ctx.p5_traces.push((
                        ri,
                        TraceEvent::VcAllocated {
                            packet,
                            router: rid,
                            out_port: out.0,
                            vc: out.1,
                        },
                    ));
                }
            }
        }
    }
    ctx.rwork = rwork;
}

/// Phase 6 worker: switch allocation + traversal over this shard's routers
/// (mirrors `Network::switch_traverse` + `send_flit`), with every meta/stat
/// op on potentially-contended rows deferred into the keyed op log.
#[allow(unsafe_code)]
fn p6_switch(raw: RawNet, ctx: &mut ShardCtx) {
    debug_assert!(
        raw.cfg.switching == Switching::VirtualCutThrough,
        "wormhole reads mid-phase credits; the builder clamps it to 1 shard"
    );
    ctx.p6_ops.clear();
    ctx.links_woken.clear();
    let (ids, ranges, coords) = raw.cycle();
    let topo = raw.topo();
    let mut cand_ports = std::mem::take(&mut ctx.ports_scratch);
    let rwork = std::mem::take(&mut ctx.rwork);
    for &k in &rwork {
        let k = k as usize;
        let ri = ids[k];
        let i = ri as usize;
        let (lo, hi) = ranges[k];
        if lo == hi {
            continue; // idle router (dense-oracle mode visits them all)
        }
        let rid = RouterId(ri);
        let rc = &coords[lo as usize..hi as usize];
        // Ejection: stall-free, unbounded bandwidth.
        for &(p, vn, v) in rc {
            // SAFETY: router i belongs to this shard.
            let router = unsafe { raw.router_ref(i) };
            let vcb = router.vc(p, vn, v);
            let Some(pb) = vcb.head() else { continue };
            let Some((op, _)) = pb.out else { continue };
            if topo.port(rid, op).is_local() && pb.flit_available() {
                shard_send_flit(raw, ctx, ri, p, vn, v, op, VcId(0), false);
            }
        }
        cand_ports.clear();
        if raw.dense {
            cand_ports.extend(0..topo.radix(rid) as u8);
        } else {
            for &(p, vn, v) in rc {
                // SAFETY: as above.
                let router = unsafe { raw.router_ref(i) };
                let vcb = router.vc(p, vn, v);
                let want = if vcb.spinning {
                    vcb.frozen_out
                } else if vcb.frozen {
                    None
                } else {
                    vcb.head().and_then(|pb| pb.out.map(|(op, _)| op))
                };
                if let Some(op) = want {
                    if !cand_ports.contains(&op.0) {
                        cand_ports.push(op.0);
                    }
                }
            }
            cand_ports.sort_unstable();
        }
        for &cp in &cand_ports {
            let op_idx = cp as usize;
            let op = PortId(cp);
            if !topo.port(rid, op).is_network() {
                continue;
            }
            if raw.sm_busy().contains(&(rid.0, op.0)) {
                continue;
            }
            // SAFETY: as above.
            let router = unsafe { raw.router_ref(i) };
            let spin_vc = rc.iter().copied().find(|&(p, vn, v)| {
                let vcb = router.vc(p, vn, v);
                vcb.spinning
                    && vcb.frozen_out == Some(op)
                    && vcb.head().map(|pb| pb.flit_available()).unwrap_or(false)
            });
            if let Some((p, vn, v)) = spin_vc {
                shard_send_flit(raw, ctx, ri, p, vn, v, op, VcId(0), true);
                continue;
            }
            let n = rc.len();
            let start = router.sa_rr[op_idx] % n;
            let mut winner = None;
            for k in 0..n {
                let (p, vn, v) = rc[(start + k) % n];
                let vcb = router.vc(p, vn, v);
                if vcb.frozen || vcb.spinning {
                    continue;
                }
                let Some(pb) = vcb.head() else { continue };
                let Some((pout, tvc)) = pb.out else { continue };
                if pout != op || !pb.flit_available() {
                    continue;
                }
                winner = Some(((p, vn, v), tvc, (start + k) % n));
                break;
            }
            if let Some(((p, vn, v), tvc, pos)) = winner {
                // SAFETY: as above (now mutably, for the rr pointer).
                unsafe { raw.router(i) }.sa_rr[op_idx] = (pos + 1) % n;
                shard_send_flit(raw, ctx, ri, p, vn, v, op, tvc, false);
            }
        }
    }
    ctx.ports_scratch = cand_ports;
    ctx.rwork = rwork;
}

/// Phase 6 worker send: mirrors `Network::send_flit` with the link-use
/// stat, metrics hook and all meta ops deferred into the keyed op log (the
/// sender's own buffer/link mutations happen in place).
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
fn shard_send_flit(
    raw: RawNet,
    ctx: &mut ShardCtx,
    ri: u32,
    p: PortId,
    vn: Vnet,
    v: VcId,
    out_port: PortId,
    tvc: VcId,
    spin: bool,
) {
    let now = raw.now;
    let i = ri as usize;
    let rid = RouterId(ri);
    // SAFETY: the sending router belongs to this shard.
    let router = unsafe { raw.router(i) };
    let (flit, is_tail, fully_sent) = {
        let pb = router
            .vc_mut(p, vn, v)
            .head_mut()
            .expect("send_flit requires a head packet");
        let flit = Flit::new(pb.handle, pb.sent, pb.len);
        pb.sent += 1;
        (flit, flit.kind.is_tail(), pb.fully_sent())
    };
    let port = raw.topo().port(rid, out_port);
    if let Some(peer) = port.conn {
        ctx.p6_ops.push((
            ri,
            P6Op::LinkFlit {
                r: rid,
                p: out_port,
            },
        ));
        if spin {
            ctx.p6_ops.push((
                ri,
                P6Op::SpinInflight {
                    r: peer.router,
                    p: peer.port,
                    vn,
                },
            ));
        } else {
            ctx.p6_ops.push((
                ri,
                P6Op::Wire {
                    r: peer.router,
                    p: peer.port,
                    vn,
                    vc: tvc,
                    tail: is_tail,
                },
            ));
        }
    }
    let lid = raw.link_base(i) + out_port.index() as u32;
    // SAFETY: a router's out-links are touched only by the sending shard in
    // this phase (links are partitioned sender-side here, receiver-side in
    // delivery; the phases never overlap).
    unsafe { raw.out_link(lid as usize) }.send(
        now,
        Phit::Flit {
            flit,
            vc: tvc,
            vnet: vn,
            spin,
        },
    );
    ctx.links_woken.push(lid);
    ctx.p6_ops.push((
        ri,
        P6Op::OccAdd {
            r: rid,
            p,
            vn,
            vc: v,
        },
    ));
    if fully_sent {
        let vcb = router.vc_mut(p, vn, v);
        vcb.q.pop_front();
        if spin {
            vcb.spinning = false;
            vcb.frozen = false;
            vcb.frozen_out = None;
        }
        if let Some(next) = vcb.head_mut() {
            next.head_since = None;
        }
        if router.vc(p, vn, v).q.is_empty() {
            router.note_emptied(p, vn, v);
        }
    }
}

// ---------------------------------------------------------------------------
// Main-thread orchestration: partition builders, phase dispatch, merges.
// ---------------------------------------------------------------------------

impl Network {
    /// Number of shards the step kernel runs across (1 = serial).
    pub fn shards(&self) -> usize {
        self.sharding.as_ref().map_or(1, |s| s.plan.shards)
    }

    /// Name of the partitioner driving the sharded kernel (`None` when
    /// stepping serially).
    pub fn partitioner_name(&self) -> Option<&'static str> {
        self.sharding.as_ref().map(|s| s.partitioner.name())
    }

    /// The sharded cycle: the serial spine of [`Network::step_serial`] with
    /// the five data-parallel stages fanned out over the worker pool and
    /// merged back in serial order.
    pub(crate) fn step_sharded(&mut self) {
        let mut st = self
            .sharding
            .take()
            .expect("step_sharded requires shard state");
        self.now += 1;
        self.apply_faults();
        self.classify_cache = None;
        self.sm_busy.clear();
        self.pending_sms.clear();
        self.partition_lids(&mut st);
        self.run_phase_sharded(&mut st, Phase::Deliver);
        self.merge_deliver(&mut st);
        self.build_coord_cache();
        self.build_router_partitions(&mut st);
        self.process_sms();
        self.agents_tick();
        self.resolve_sms();
        self.generate_packets();
        self.partition_nics(&mut st);
        self.run_phase_sharded(&mut st, Phase::Inject);
        self.merge_inject(&mut st);
        self.run_phase_sharded(&mut st, Phase::Route);
        self.merge_route(&mut st);
        self.run_phase_sharded(&mut st, Phase::VcAlloc);
        self.merge_vc_alloc(&mut st);
        self.run_phase_sharded(&mut st, Phase::Switch);
        self.merge_switch(&mut st);
        self.spin_completions();
        self.prune_idle_routers();
        self.stats.cycles = self.now;
        self.stats.link_use.total += self.num_network_links;
        if let Some(m) = &mut self.metrics {
            if m.epoch_due(self.now) {
                let mut snap = Vec::new();
                self.meta.occupancy_snapshot_into(&mut snap);
                m.rollover(self.now, snap);
            }
        }
        self.sharding = Some(st);
    }

    /// Captures the raw view and runs one phase across every shard.
    fn run_phase_sharded(&mut self, st: &mut ShardState, phase: Phase) {
        let raw = RawNet::capture(self);
        let job = Job {
            raw,
            ctxs: st.ctxs.as_mut_ptr(),
            phase,
        };
        st.pool.run(job);
    }

    /// Splits this cycle's link worklist by receiver shard (each shard's
    /// list stays ascending because the source worklist is).
    fn partition_lids(&mut self, st: &mut ShardState) {
        for c in &mut st.ctxs {
            c.lids.clear();
        }
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        if self.dense_step {
            ids.extend(0..self.inj_base + self.inj_links.len() as u32);
        } else {
            self.active_links.sorted_into(&mut ids);
        }
        for &lid in &ids {
            st.ctxs[st.plan.lid_owner[lid as usize] as usize]
                .lids
                .push(lid);
        }
        self.scratch_ids = ids;
    }

    /// Splits this cycle's NIC worklist by attach shard (ascending).
    fn partition_nics(&mut self, st: &mut ShardState) {
        for c in &mut st.ctxs {
            c.nic_ids.clear();
        }
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        if self.dense_step {
            ids.extend(0..self.nics.len() as u32);
        } else {
            self.active_nics.sorted_into(&mut ids);
        }
        for &nid in &ids {
            st.ctxs[st.plan.nic_owner[nid as usize] as usize]
                .nic_ids
                .push(nid);
        }
        self.scratch_ids = ids;
    }

    /// Splits this cycle's router worklist (`cycle_ids` indices) by shard;
    /// shared by the route / VC-allocation / switch phases.
    fn build_router_partitions(&mut self, st: &mut ShardState) {
        for c in &mut st.ctxs {
            c.rwork.clear();
        }
        for (k, &ri) in self.cycle_ids.iter().enumerate() {
            st.ctxs[st.plan.shard_of_router[ri as usize] as usize]
                .rwork
                .push(k as u32);
        }
    }

    /// Delivery merge: rebuild the link worklist, apply wakeups and stat
    /// deltas, then replay the deferred events in flat-link-id order — the
    /// exact serial interleave of hop traces and tail ejections.
    fn merge_deliver(&mut self, st: &mut ShardState) {
        let ShardState {
            ctxs, ev_scratch, ..
        } = st;
        ev_scratch.clear();
        self.active_links.clear();
        for c in ctxs.iter_mut() {
            for &lid in &c.links_kept {
                self.active_links.insert(lid as usize);
            }
            for &r in &c.routers_woken {
                self.active_routers.insert(r as usize);
            }
            self.stats.spin_orphans += c.d.spin_orphans;
            self.stats.overflow_events += c.d.overflow_events;
            ev_scratch.append(&mut c.p1_events);
        }
        // Stable: each shard's log is ascending by lid with program order
        // within a lid, so the merged order is the serial delivery order.
        ev_scratch.sort_by_key(|&(lid, _)| lid);
        for (_, ev) in ev_scratch.drain(..) {
            match ev {
                P1Event::Hop(e) => self.emit(e),
                P1Event::Eject { node, flit } => self.eject_flit(node, flit),
            }
        }
    }

    /// Streaming merge: rebuild the NIC worklist, wake injection links,
    /// apply stat deltas and replay `PacketInject` traces in NIC order.
    fn merge_inject(&mut self, st: &mut ShardState) {
        let ShardState {
            ctxs,
            trace_scratch,
            ..
        } = st;
        trace_scratch.clear();
        self.active_nics.clear();
        for c in ctxs.iter_mut() {
            for &nid in &c.nics_kept {
                self.active_nics.insert(nid as usize);
            }
            for &lid in &c.links_woken {
                self.active_links.insert(lid as usize);
            }
            self.stats.packets_injected += c.d.packets_injected;
            self.stats.flits_injected += c.d.flits_injected;
            if let Some(m) = &mut self.metrics {
                for _ in 0..c.d.packets_injected {
                    m.on_packet_injected();
                }
                for _ in 0..c.d.flits_injected {
                    m.on_flit_injected();
                }
            }
            trace_scratch.append(&mut c.p3_traces);
        }
        trace_scratch.sort_by_key(|&(nid, _)| nid);
        for (_, ev) in trace_scratch.drain(..) {
            self.emit(ev);
        }
    }

    /// Route merge: complete every prepared route in ascending router order
    /// — the serial iteration order — so the shared RNG consumes draws in
    /// exactly the serial sequence, then write the choices back.
    fn merge_route(&mut self, st: &mut ShardState) {
        let ShardState {
            ctxs, pend_scratch, ..
        } = st;
        pend_scratch.clear();
        for c in ctxs.iter_mut() {
            pend_scratch.append(&mut c.pend);
        }
        // Stable: within a router the entries are in coord (program) order.
        pend_scratch.sort_by_key(|pr| pr.router);
        let now = self.now;
        let reserved = VcId(self.cfg.vcs_per_vnet - 1);
        for pr in pend_scratch.drain(..) {
            let mut choices = finish_prepared(pr.prepared, &mut self.rng);
            if pr.escape {
                for choice in &mut choices {
                    if self
                        .topo
                        .port(RouterId(pr.router), choice.out_port)
                        .is_network()
                    {
                        choice.vc_mask = VcMask::only(reserved);
                    }
                }
            }
            let pb = self.routers[pr.router as usize]
                .vc_mut(pr.p, pr.vn, pr.v)
                .head_mut()
                .expect("head still present");
            pb.choices = choices;
            if pb.head_since.is_none() {
                pb.head_since = Some(now);
            }
        }
    }

    /// VC-allocation merge: stat deltas plus `VcAllocated` traces replayed
    /// in router order.
    fn merge_vc_alloc(&mut self, st: &mut ShardState) {
        let ShardState {
            ctxs,
            trace_scratch,
            ..
        } = st;
        trace_scratch.clear();
        for c in ctxs.iter_mut() {
            self.stats.bubble_grants += c.d.bubble_grants;
            trace_scratch.append(&mut c.p5_traces);
        }
        trace_scratch.sort_by_key(|&(ri, _)| ri);
        for (_, ev) in trace_scratch.drain(..) {
            self.emit(ev);
        }
    }

    /// Switch merge: apply the deferred meta/stat ops in sender-router
    /// order — the serial send order — and wake the sending links.
    fn merge_switch(&mut self, st: &mut ShardState) {
        let ShardState {
            ctxs, op_scratch, ..
        } = st;
        op_scratch.clear();
        for c in ctxs.iter_mut() {
            for &lid in &c.links_woken {
                self.active_links.insert(lid as usize);
            }
            op_scratch.append(&mut c.p6_ops);
        }
        // Stable: within a sender the ops are in send (program) order.
        op_scratch.sort_by_key(|&(ri, _)| ri);
        let now = self.now;
        for (_, op) in op_scratch.drain(..) {
            match op {
                P6Op::LinkFlit { r, p } => {
                    self.stats.link_use.flit += 1;
                    if let Some(m) = &mut self.metrics {
                        m.on_link_flit(r, p);
                    }
                }
                P6Op::Wire { r, p, vn, vc, tail } => {
                    self.meta.wire(now, r, p, vn, vc, tail);
                }
                P6Op::SpinInflight { r, p, vn } => {
                    self.meta.spin_inflight_add(r, p, vn, 1);
                }
                P6Op::OccAdd { r, p, vn, vc } => {
                    self.meta.occ_add(now, r, p, vn, vc, -1);
                }
            }
        }
    }
}
