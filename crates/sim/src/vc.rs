//! Virtual-channel buffers: packet-granular queues with flit-accurate
//! arrival/departure timing.

use spin_routing::RouteChoices;
use spin_types::{Cycle, PacketHandle, PortId, VcId};
use std::collections::VecDeque;

/// A packet resident (possibly partially) in a VC buffer.
///
/// The buffer holds only the packet's store handle plus per-buffer flow
/// state; the authoritative header lives in the
/// [`PacketStore`](crate::store::PacketStore) (hops/intermediate updated
/// there once per hop, on head-flit arrival). `len` is cached because it is
/// immutable and on the per-flit hot path (`fully_sent`/`flit_available`).
#[derive(Debug, Clone)]
pub(crate) struct PacketBuf {
    /// Handle of the resident packet in the packet store.
    pub handle: PacketHandle,
    /// Packet length in flits (immutable; cached from the header).
    pub len: u16,
    /// Flits that have physically arrived.
    pub received: u16,
    /// Flits already forwarded onward.
    pub sent: u16,
    /// Current routing candidates (recomputed every waiting cycle).
    pub choices: RouteChoices,
    /// Allocated output (port, downstream VC) once VC allocation succeeds.
    pub out: Option<(PortId, VcId)>,
    /// Cycle this packet reached the head of its VC with a computed route
    /// (for Static Bubble timeouts).
    pub head_since: Option<Cycle>,
}

impl PacketBuf {
    pub(crate) fn new(handle: PacketHandle, len: u16) -> Self {
        PacketBuf {
            handle,
            len,
            received: 0,
            sent: 0,
            choices: RouteChoices::new(),
            out: None,
            head_since: None,
        }
    }

    /// True once every flit has been forwarded.
    pub(crate) fn fully_sent(&self) -> bool {
        self.sent >= self.len
    }

    /// True if a flit is available to forward this cycle.
    pub(crate) fn flit_available(&self) -> bool {
        self.sent < self.received
    }
}

/// One VC buffer at an input port.
#[derive(Debug, Clone, Default)]
pub(crate) struct Vc {
    /// Resident packets in arrival order (normally at most one under VCT;
    /// spins may briefly overlap an arriving packet with a departing one).
    pub q: VecDeque<PacketBuf>,
    /// Switch allocation disabled by SPIN.
    pub frozen: bool,
    /// The frozen outport while frozen.
    pub frozen_out: Option<PortId>,
    /// Streaming its head packet as part of a spin.
    pub spinning: bool,
}

impl Vc {
    /// Total flits buffered.
    pub(crate) fn occupancy(&self) -> usize {
        self.q.iter().map(|p| (p.received - p.sent) as usize).sum()
    }

    /// The head packet, if any.
    pub(crate) fn head(&self) -> Option<&PacketBuf> {
        self.q.front()
    }

    /// The head packet, mutable.
    pub(crate) fn head_mut(&mut self) -> Option<&mut PacketBuf> {
        self.q.front_mut()
    }
}
