//! The arena-backed packet store: the single authoritative home of every
//! in-flight packet header.
//!
//! # Ownership model
//!
//! * **Allocation** — the NIC injection stage ([`crate::pipeline::injection`])
//!   inserts the header the moment the traffic source emits a packet; the
//!   returned [`PacketHandle`] is what NIC queues, VC buffers
//!   ([`crate::vc::PacketBuf`]), link phits and flits carry from then on.
//! * **Mutation** — routing state (`hops`, `global_hops`, `intermediate`)
//!   is updated exactly once per hop, by the link-delivery stage when a
//!   head flit arrives at the next router ([`crate::pipeline::delivery`]).
//!   `injected_at` is stamped once, when the NIC starts streaming.
//!   `misroutes` is written only by `Routing::at_injection`, before the
//!   header enters the store. Nothing else writes headers.
//! * **Free** — the slot is released on tail-flit ejection at the
//!   destination NIC, after final stats accounting (the only point a header
//!   is read out whole). Freed slots go on a free list and are recycled for
//!   later packets with a bumped generation, so a stale handle can never
//!   silently alias a newer packet: [`PacketStore::get`] panics and
//!   [`PacketStore::try_get`] returns `None` for handles from a previous
//!   generation.
//!
//! Like [`crate::pipeline::meta::MetaTable`], the store is a flat
//! vector — handle lookups are one bounds-checked index, no hashing.

use spin_types::{Packet, PacketHandle};

#[derive(Debug)]
struct Slot {
    /// Incremented on every free; a handle is valid only while its
    /// generation matches.
    generation: u32,
    packet: Option<Packet>,
}

/// Slab/arena of in-flight packet headers with free-list slot recycling.
#[derive(Debug, Default)]
pub(crate) struct PacketStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl PacketStore {
    pub(crate) fn new() -> Self {
        PacketStore::default()
    }

    /// Inserts a header, returning the handle that names it. Reuses a freed
    /// slot when one is available.
    pub(crate) fn insert(&mut self, packet: Packet) -> PacketHandle {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.packet.is_none(), "free list pointed at a live slot");
            s.packet = Some(packet);
            PacketHandle::new(slot, s.generation)
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                packet: Some(packet),
            });
            PacketHandle::new(slot, 0)
        }
    }

    /// The header for `h`.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (its packet was freed, and possibly
    /// its slot recycled) — a use-after-free bug in the caller.
    #[inline]
    pub(crate) fn get(&self, h: PacketHandle) -> &Packet {
        let s = &self.slots[h.slot() as usize];
        assert!(
            s.generation == h.generation(),
            "stale packet handle {h}: slot is at generation {}",
            s.generation
        );
        s.packet.as_ref().expect("live generation but empty slot")
    }

    /// The header for `h`, mutable. Same panic contract as [`Self::get`].
    #[inline]
    pub(crate) fn get_mut(&mut self, h: PacketHandle) -> &mut Packet {
        let s = &mut self.slots[h.slot() as usize];
        assert!(
            s.generation == h.generation(),
            "stale packet handle {h}: slot is at generation {}",
            s.generation
        );
        s.packet.as_mut().expect("live generation but empty slot")
    }

    /// The header for `h`, or `None` if the handle is stale (test-only:
    /// the simulator proper treats a stale handle as a hard bug).
    #[cfg(test)]
    pub(crate) fn try_get(&self, h: PacketHandle) -> Option<&Packet> {
        let s = self.slots.get(h.slot() as usize)?;
        if s.generation != h.generation() {
            return None;
        }
        s.packet.as_ref()
    }

    /// Frees the slot for `h` and returns the header (tail ejection). The
    /// slot's generation is bumped so outstanding handles turn stale.
    pub(crate) fn remove(&mut self, h: PacketHandle) -> Packet {
        let s = &mut self.slots[h.slot() as usize];
        assert!(
            s.generation == h.generation(),
            "stale packet handle {h}: slot is at generation {}",
            s.generation
        );
        let pkt = s.packet.take().expect("live generation but empty slot");
        s.generation = s.generation.wrapping_add(1);
        self.free.push(h.slot());
        self.live -= 1;
        pkt
    }

    /// Number of live packets.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live + recyclable). Peak concurrent
    /// packets over the store's lifetime.
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Raw-pointer view for the sharded kernel's worker phases. Taking
    /// `&mut self` guarantees exclusive access at capture time; the caller
    /// upholds the aliasing discipline from then on (see [`StoreRaw`]).
    #[allow(unsafe_code)]
    pub(crate) fn raw(&mut self) -> StoreRaw {
        StoreRaw {
            slots: self.slots.as_mut_ptr(),
        }
    }
}

/// Unsafe elementwise view of a [`PacketStore`] for the sharded kernel:
/// handle-indexed access to individual slots with the same
/// generation-check panics as the safe accessors. No insert/remove — slot
/// allocation stays serial, so the slab never reallocates while a
/// `StoreRaw` is live.
///
/// # Safety contract (applies to every method)
///
/// * The originating `PacketStore` must outlive every use, with no
///   insert/remove (and hence no reallocation or generation bump) while
///   any `StoreRaw` is live.
/// * Concurrent callers must never pass the same handle to `get_mut`: the
///   sharded kernel guarantees this because a packet header is only
///   mutated by the shard that owns the arrival/injection event naming it,
///   and a handle is owned by exactly one in-flight event per phase.
#[derive(Debug, Clone, Copy)]
#[allow(unsafe_code)]
pub(crate) struct StoreRaw {
    slots: *mut Slot,
}

// SAFETY: StoreRaw is a raw pointer bundle; all dereferences are unsafe
// methods whose callers uphold the handle-disjointness contract above.
#[allow(unsafe_code)]
unsafe impl Send for StoreRaw {}
// SAFETY: as for Send — shared references expose no safe mutation; all
// access goes through unsafe methods with the same contract.
#[allow(unsafe_code)]
unsafe impl Sync for StoreRaw {}

#[allow(unsafe_code)]
impl StoreRaw {
    /// The header for `h`, read-only.
    ///
    /// # Safety
    /// `h.slot()` in-bounds for the originating store; no concurrent
    /// `get_mut` on the same handle.
    ///
    /// # Panics
    /// Panics on a stale handle, like [`PacketStore::get`].
    #[inline]
    pub(crate) unsafe fn get<'a>(self, h: PacketHandle) -> &'a Packet {
        // SAFETY: per the method contract; replicates PacketStore::get.
        let s = unsafe { &*self.slots.add(h.slot() as usize) };
        assert!(
            s.generation == h.generation(),
            "stale packet handle {h}: slot is at generation {}",
            s.generation
        );
        s.packet.as_ref().expect("live generation but empty slot")
    }

    /// The header for `h`, mutable.
    ///
    /// # Safety
    /// `h.slot()` in-bounds; this call has exclusive access to the slot
    /// (no concurrent `get`/`get_mut` on the same handle).
    ///
    /// # Panics
    /// Panics on a stale handle, like [`PacketStore::get_mut`].
    #[inline]
    pub(crate) unsafe fn get_mut<'a>(self, h: PacketHandle) -> &'a mut Packet {
        // SAFETY: per the method contract; replicates PacketStore::get_mut.
        let s = unsafe { &mut *self.slots.add(h.slot() as usize) };
        assert!(
            s.generation == h.generation(),
            "stale packet handle {h}: slot is at generation {}",
            s.generation
        );
        s.packet.as_mut().expect("live generation but empty slot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_types::{FlitKind, NodeId, PacketBuilder, PacketId};

    fn pkt(id: u64, len: u16) -> Packet {
        PacketBuilder::new(NodeId(0), NodeId(1)).len(len).build(id)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut store = PacketStore::new();
        let h = store.insert(pkt(7, 3));
        assert_eq!(store.get(h).id, PacketId(7));
        assert_eq!(store.live(), 1);
        store.get_mut(h).hops = 2;
        assert_eq!(store.get(h).hops, 2);
        let out = store.remove(h);
        assert_eq!(out.id, PacketId(7));
        assert_eq!(out.hops, 2);
        assert_eq!(store.live(), 0);
    }

    #[test]
    fn recycled_slot_invalidates_old_handle() {
        let mut store = PacketStore::new();
        let h1 = store.insert(pkt(1, 1));
        store.remove(h1);
        let h2 = store.insert(pkt(2, 1));
        // Slot reused, generation bumped: h1 must not alias packet 2.
        assert_eq!(h1.slot(), h2.slot());
        assert_ne!(h1.generation(), h2.generation());
        assert!(store.try_get(h1).is_none());
        assert_eq!(store.get(h2).id, PacketId(2));
        assert_eq!(store.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn get_after_free_panics() {
        let mut store = PacketStore::new();
        let h = store.insert(pkt(1, 1));
        store.remove(h);
        let _ = store.get(h);
    }

    #[test]
    fn flit_decomposition_references_store() {
        let mut store = PacketStore::new();
        let h = store.insert(pkt(9, 4));
        let flits: Vec<_> = store.get(h).flits(h).collect();
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().all(|f| f.packet == h));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use spin_types::{Flit, NodeId, PacketBuilder, PacketId, Vnet};
    use std::collections::VecDeque;

    /// A miniature per-VC FIFO receiver: reassembles flit streams back into
    /// (id, len) packets, checking head/body/tail structure on the way.
    fn reassemble(store: &PacketStore, stream: &[Flit]) -> Vec<(PacketId, u16)> {
        let mut done = Vec::new();
        let mut current: Option<(PacketId, u16, u16)> = None; // (id, len, seen)
        for f in stream {
            let hdr = store
                .try_get(f.packet)
                .expect("flit handle read after free");
            match current.as_mut() {
                None => {
                    assert!(f.kind.is_head(), "stream must start with a head flit");
                    assert_eq!(f.seq, 0);
                    current = Some((hdr.id, hdr.len, 1));
                }
                Some((id, len, seen)) => {
                    assert_eq!(*id, hdr.id, "flits of different packets interleaved");
                    assert_eq!(f.seq, *seen, "out-of-order flit");
                    *seen += 1;
                    let _ = len;
                }
            }
            if f.kind.is_tail() {
                let (id, len, seen) = current.take().expect("tail without head");
                assert_eq!(seen, len, "tail arrived before all flits");
                done.push((id, len));
            }
        }
        assert!(current.is_none(), "stream ended mid-packet");
        done
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Packets round-trip through the store: per-VC FIFO flit streams
        /// reassemble in order with intact head/body/tail structure, stale
        /// handles are never readable, and recycled slots never alias a
        /// live packet's stats (the recycled packet's mutated hops never
        /// leak into a newer occupant).
        #[test]
        fn prop_store_roundtrip_fifo(
            lens in proptest::collection::vec(1u16..8, 1..20),
            hop_bumps in proptest::collection::vec(0u32..5, 1..20),
        ) {
            let mut store = PacketStore::new();
            let mut stream: VecDeque<Flit> = VecDeque::new();
            let mut handles = Vec::new();
            // Inject every packet's flits into one VC-like FIFO stream.
            for (i, &len) in lens.iter().enumerate() {
                let pkt = PacketBuilder::new(NodeId(0), NodeId(1))
                    .len(len)
                    .vnet(Vnet(0))
                    .build(i as u64);
                let h = store.insert(pkt);
                // Simulate per-hop routing-state mutation on the single
                // authoritative header.
                store.get_mut(h).hops = hop_bumps[i % hop_bumps.len()];
                handles.push(h);
                for f in store.get(h).flits(h) {
                    stream.push_back(f);
                }
            }
            let stream: Vec<Flit> = stream.into();
            let out = reassemble(&store, &stream);
            prop_assert_eq!(out.len(), lens.len());
            for (i, (id, len)) in out.iter().enumerate() {
                prop_assert_eq!(*id, PacketId(i as u64));
                prop_assert_eq!(*len, lens[i]);
            }
            // Eject everything; handles must turn stale.
            for &h in &handles {
                let hdr = store.remove(h);
                prop_assert!(hdr.hops < 5);
                prop_assert!(store.try_get(h).is_none(), "handle readable after free");
            }
            prop_assert_eq!(store.live(), 0);
            // Re-inject: recycled slots must never alias the old packets'
            // stats (fresh headers start at hops = 0, new generation).
            let mut fresh = Vec::new();
            for (i, &len) in lens.iter().enumerate() {
                let pkt = PacketBuilder::new(NodeId(2), NodeId(3))
                    .len(len)
                    .build(1000 + i as u64);
                fresh.push(store.insert(pkt));
            }
            prop_assert!(store.capacity() <= lens.len());
            for (i, &h) in fresh.iter().enumerate() {
                prop_assert_eq!(store.get(h).id, PacketId(1000 + i as u64));
                prop_assert_eq!(store.get(h).hops, 0);
            }
            for &old in &handles {
                prop_assert!(store.try_get(old).is_none(), "old handle aliases recycled slot");
            }
        }
    }
}
