//! Cross-validation between the live simulator and a static deadlock model.
//!
//! A [`StaticModel`] is an oracle derived *offline* from the `(Topology,
//! Routing, VC policy)` triple — in practice the derived channel-dependency
//! graph built by the `spin-verify` crate (see `docs/VERIFY.md`). When one
//! is installed via [`NetworkBuilder::static_model`], the simulator checks
//! every ground-truth wait-graph deadlock it detects against the static
//! theory:
//!
//! * **ring mapping** — the deadlocked buffers reported by
//!   [`Network::wait_graph`] must induce a cycle in the static CDG. A
//!   runtime deadlock over channels the static analysis considers acyclic
//!   means either the analyzer missed a dependency or the simulator built
//!   an impossible wait — both are bugs, so the mismatch is recorded as a
//!   violation (tests assert the violation list stays empty).
//! * **spin bound** — across one deadlock *episode* (first nonempty
//!   detection until the deadlocked set empties again), the SPIN spins
//!   initiated by the affected routers must not exceed the model's bound
//!   for a ring of the episode's size (Theorems 1–2: `m-1` minimal,
//!   `m*p + (m-1)` non-minimal).
//!
//! The hook is entirely pull-based: [`Network::static_model_check`] does
//! nothing unless a model is installed, and the per-step cost of an
//! installed-but-unchecked model is zero (no model, one `is_some` branch
//! inside [`Network::run_until_deadlock`]'s existing periodic check).
//!
//! [`NetworkBuilder::static_model`]: crate::NetworkBuilder::static_model

use crate::network::Network;
use spin_deadlock::{BufferId, PortKey};
use spin_types::{Cycle, PacketId, RouterId};
use std::collections::BTreeSet;
use std::fmt;

/// One deadlocked packet as seen by the ground-truth wait-graph detector:
/// where it sits and the downstream ports it is waiting on.
#[derive(Debug, Clone)]
pub struct RingMember {
    /// The deadlocked packet.
    pub packet: PacketId,
    /// The input buffer its head flit occupies.
    pub at: BufferId,
    /// The downstream input ports of its (blocked) routing alternatives.
    pub wants: Vec<PortKey>,
}

/// A static deadlock oracle the simulator can be cross-validated against.
pub trait StaticModel: fmt::Debug + Send + Sync {
    /// Short name for violation messages (e.g. the analyzed config).
    fn name(&self) -> &str;

    /// Checks that a detected deadlock is consistent with the static
    /// model: every member buffer maps onto a known static channel and the
    /// member set induces a cycle in the static CDG. `Err` describes the
    /// mismatch.
    fn check_members(&self, members: &[RingMember]) -> Result<(), String>;

    /// The static spin bound for resolving a deadlock spanning `ring_len`
    /// channels, or `None` if the model classified the configuration
    /// deadlock-free (in which case any observed deadlock is itself a
    /// violation).
    fn spin_bound(&self, ring_len: usize) -> Option<u64>;
}

/// A closed cross-validation episode: one contiguous stretch of nonempty
/// ground-truth deadlock detections, resolved.
#[derive(Debug, Clone)]
pub struct EpisodeReport {
    /// Cycle of the first nonempty detection.
    pub opened: Cycle,
    /// Cycle the deadlocked set was first observed empty again.
    pub closed: Cycle,
    /// Distinct buffers that were deadlocked at some point in the episode.
    pub channels: usize,
    /// Distinct packets that were deadlocked at some point in the episode.
    pub packets: usize,
    /// Spins initiated by the episode's member routers while it was open.
    pub spins: u64,
    /// The static bound those spins were checked against.
    pub bound: u64,
}

/// An open episode being tracked.
#[derive(Debug)]
pub(crate) struct Episode {
    opened: Cycle,
    channels: BTreeSet<BufferId>,
    packets: BTreeSet<PacketId>,
    routers: BTreeSet<RouterId>,
    /// Per-router `spins_initiated` snapshot at open (indexed by router).
    spins_at_open: Vec<u64>,
}

/// Cross-validation state carried by [`Network`].
#[derive(Debug, Default)]
pub(crate) struct CrossValidation {
    pub(crate) episode: Option<Episode>,
    pub(crate) violations: Vec<String>,
    pub(crate) episodes: Vec<EpisodeReport>,
}

impl Network {
    fn per_router_spins(&self) -> Vec<u64> {
        self.agents
            .iter()
            .map(|a| a.stats().spins_initiated)
            .collect()
    }

    /// The oracle live deadlocks are checked against: the explicitly
    /// installed [`StaticModel`] if any, else the installed fabric
    /// manager's union-of-admitted-CDGs view (see [`crate::fabric`]).
    fn oracle(&self) -> Option<&dyn StaticModel> {
        self.static_model
            .as_deref()
            .or_else(|| self.fabric.as_deref().map(|f| f.model()))
    }

    /// Runs one cross-validation check against the installed
    /// [`StaticModel`] (no-op without one): builds the ground-truth wait
    /// graph, maps any deadlocked set onto the static CDG, and tracks the
    /// open episode's spin budget. Violations accumulate in
    /// [`Network::static_model_violations`].
    pub fn static_model_check(&mut self) {
        if self.static_model.is_none() && self.fabric.is_none() {
            return;
        }
        let members: Vec<RingMember> = self
            .wait_graph()
            .deadlocked_members()
            .into_iter()
            // Packets stuck in an injection (NIC-side local-port) queue are
            // victims of the deadlock, not ring members: nothing in the
            // network routes *into* a NIC buffer, so they hold no channel
            // of the dependency ring and the static CDG rightly has no
            // channel for them. Only network input buffers take part in
            // the ring mapping and the spin accounting.
            .filter(|(_, at, _)| self.topo.port(at.router, at.port).is_network())
            .map(|(packet, at, wants)| RingMember { packet, at, wants })
            .collect();
        if members.is_empty() {
            self.close_episode();
            return;
        }
        // Open or extend the episode.
        if self.xval.episode.is_none() {
            self.xval.episode = Some(Episode {
                opened: self.now,
                channels: BTreeSet::new(),
                packets: BTreeSet::new(),
                routers: BTreeSet::new(),
                spins_at_open: self.per_router_spins(),
            });
        }
        let mut grew = false;
        if let Some(ep) = self.xval.episode.as_mut() {
            for m in &members {
                grew |= ep.channels.insert(m.at);
                ep.packets.insert(m.packet);
                ep.routers.insert(m.at.router);
            }
        }
        if grew {
            // Only re-check the ring mapping when the member set actually
            // gained a buffer; repeated detections of the same stuck ring
            // would otherwise duplicate identical violations.
            let verdict = match self.oracle() {
                Some(model) => model.check_members(&members).err().map(|e| {
                    format!(
                        "cycle {}: deadlock does not map onto static model `{}`: {e}",
                        self.now,
                        model.name()
                    )
                }),
                None => None,
            };
            if let Some(v) = verdict {
                self.xval.violations.push(v);
            }
        }
    }

    /// Closes the open episode (the deadlocked set came back empty) and
    /// checks its spin budget against the static bound.
    fn close_episode(&mut self) {
        let Some(ep) = self.xval.episode.take() else {
            return;
        };
        let now_spins = self.per_router_spins();
        let spins: u64 = ep
            .routers
            .iter()
            .map(|r| now_spins[r.index()] - ep.spins_at_open[r.index()])
            .sum();
        let m = ep.channels.len();
        let (violation, bound) = match self.oracle() {
            Some(model) => match model.spin_bound(m) {
                Some(bound) if spins <= bound => (None, bound),
                Some(bound) => (
                    Some(format!(
                        "episode {}..{}: {} spins initiated by {} routers exceeds \
                         static bound {} of model `{}` (ring size {})",
                        ep.opened,
                        self.now,
                        spins,
                        ep.routers.len(),
                        bound,
                        model.name(),
                        m
                    )),
                    bound,
                ),
                None => (
                    Some(format!(
                        "episode {}..{}: ground truth deadlocked over {} buffers \
                         but model `{}` classifies the configuration deadlock-free",
                        ep.opened,
                        self.now,
                        m,
                        model.name()
                    )),
                    0,
                ),
            },
            None => (None, 0),
        };
        if let Some(v) = violation {
            self.xval.violations.push(v);
        } else if self.static_model.is_some() || self.fabric.is_some() {
            self.xval.episodes.push(EpisodeReport {
                opened: ep.opened,
                closed: self.now,
                channels: ep.channels.len(),
                packets: ep.packets.len(),
                spins,
                bound,
            });
        }
    }

    /// Cross-validation mismatches recorded so far (empty unless either
    /// the static model or the simulator is wrong — tests treat any entry
    /// as a hard failure).
    pub fn static_model_violations(&self) -> &[String] {
        &self.xval.violations
    }

    /// Cleanly closed (bound-respecting) cross-validation episodes.
    pub fn static_model_episodes(&self) -> &[EpisodeReport] {
        &self.xval.episodes
    }
}
