//! Epoch-stamped, duplicate-free activity sets — the worklists behind the
//! activity-driven step kernel.
//!
//! Every pipeline stage of [`Network::step`](crate::Network::step) iterates
//! a worklist of the entities that can possibly do work this cycle (routers
//! holding packets, links carrying phits, NICs with queued traffic) instead
//! of walking the whole fabric. An [`ActivitySet`] is the tiny data
//! structure that makes that sound:
//!
//! * **duplicate-free inserts** — a per-id mark (stamped with the set's
//!   current epoch) makes `insert` idempotent, so activity-creation sites
//!   can mark eagerly without coordination;
//! * **dense-equivalent iteration order** — ids are handed out ascending
//!   ([`ActivitySet::sorted_into`]), which is exactly the order the dense
//!   kernel visits them in, so a worklist walk is bit-identical to a dense
//!   walk over the same active entities;
//! * **O(1) clear** — bumping the epoch invalidates every mark at once
//!   (used by the dense-oracle rebuild paths).
//!
//! The invariants the sets must maintain (no lost wakeups, drain to empty
//! at quiescence) are documented in DESIGN.md §"Activity-driven kernel" and
//! checked by [`Network::activity_invariants`](crate::Network::activity_invariants)
//! under the bookkeeping proptest.

/// A duplicate-free set of small integer ids with sorted iteration and O(1)
/// clear. See the module docs for the role it plays in the step kernel.
#[derive(Debug, Default)]
pub(crate) struct ActivitySet {
    /// `marks[id] == epoch` ⇔ `id` is in `list`.
    marks: Vec<u32>,
    /// Member ids, unordered until [`ActivitySet::sort`] runs.
    list: Vec<u32>,
    /// Current membership stamp; never 0, so a zeroed mark is never a
    /// member.
    epoch: u32,
    /// True while `list` is known to be ascending.
    sorted: bool,
}

impl ActivitySet {
    /// Creates a set over the id universe `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        ActivitySet {
            marks: vec![0; n],
            list: Vec::new(),
            epoch: 1,
            sorted: true,
        }
    }

    /// Number of member ids.
    pub(crate) fn len(&self) -> usize {
        self.list.len()
    }

    /// True when no id is a member.
    pub(crate) fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// True if `id` is a member.
    pub(crate) fn contains(&self, id: usize) -> bool {
        self.marks[id] == self.epoch
    }

    /// Inserts `id`; a no-op if already present.
    #[inline]
    pub(crate) fn insert(&mut self, id: usize) {
        if self.marks[id] != self.epoch {
            self.marks[id] = self.epoch;
            self.sorted = self.sorted && self.list.last().is_none_or(|&last| last < id as u32);
            self.list.push(id as u32);
        }
    }

    /// Sorts the member list ascending (idempotent; lazily deferred until a
    /// stage actually iterates).
    fn sort(&mut self) {
        if !self.sorted {
            self.list.sort_unstable();
            self.sorted = true;
        }
    }

    /// Appends the member ids to `out` in ascending order — the dense
    /// kernel's visit order over the active subset.
    pub(crate) fn sorted_into(&mut self, out: &mut Vec<u32>) {
        self.sort();
        out.extend_from_slice(&self.list);
    }

    /// Keeps only members satisfying `keep`; dropped ids leave the set.
    /// Membership order is preserved.
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        let marks = &mut self.marks;
        self.list.retain(|&id| {
            if keep(id) {
                true
            } else {
                marks[id as usize] = 0;
                false
            }
        });
    }

    /// Removes every member in O(1) (epoch bump).
    pub(crate) fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.marks.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.list.clear();
        self.sorted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent_and_sorted() {
        let mut s = ActivitySet::new(10);
        for id in [7, 3, 3, 9, 0, 7] {
            s.insert(id);
        }
        assert_eq!(s.len(), 4);
        assert!(s.contains(3) && s.contains(7) && !s.contains(1));
        let mut out = Vec::new();
        s.sorted_into(&mut out);
        assert_eq!(out, vec![0, 3, 7, 9]);
    }

    #[test]
    fn ascending_inserts_skip_the_sort() {
        let mut s = ActivitySet::new(8);
        for id in 0..8 {
            s.insert(id);
        }
        assert!(s.sorted);
        let mut out = Vec::new();
        s.sorted_into(&mut out);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn retain_drops_membership() {
        let mut s = ActivitySet::new(6);
        for id in 0..6 {
            s.insert(id);
        }
        s.retain(|id| id % 2 == 0);
        assert_eq!(s.len(), 3);
        assert!(!s.contains(1) && s.contains(2));
        // A dropped id can rejoin.
        s.insert(1);
        assert!(s.contains(1));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn clear_is_total_and_reusable() {
        let mut s = ActivitySet::new(4);
        s.insert(2);
        s.clear();
        assert!(s.is_empty() && !s.contains(2));
        s.insert(2);
        assert!(s.contains(2));
        let mut out = Vec::new();
        s.sorted_into(&mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn epoch_wraparound_rezeros_marks() {
        let mut s = ActivitySet::new(3);
        s.epoch = u32::MAX;
        s.insert(1);
        s.clear();
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(1));
        s.insert(1);
        assert!(s.contains(1));
    }
}
