//! The cycle engine: the [`Network`] state, its public API, and the
//! per-cycle orchestrator. The pipeline stages themselves live in
//! [`crate::pipeline`] (one module per stage) and the debug/ground-truth
//! exports in [`crate::debug`].

use crate::activity::ActivitySet;
use crate::config::{NetworkBuilder, SimConfig, Switching};
use crate::faults::FaultPlan;
use crate::link::{Link, Phit};
use crate::nic::Nic;
use crate::pipeline::meta::{MetaTable, NetView};
use crate::router::Router;
use crate::stats::series::MetricsRing;
use crate::stats::NetStats;
use crate::store::PacketStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_core::{FsmState, RotatingPriority, Sm, SpinAgent, SpinConfig, SpinStats};
use spin_routing::{Routing, XyRouting};
use spin_topology::Topology;
use spin_trace::{TraceEvent, TraceRecord, TraceSink};
use spin_traffic::TrafficSource;
use spin_types::{Cycle, NodeId, PortConn, PortId, RouterId, VcId, Vnet};

/// The simulated network. Build with [`NetworkBuilder`]; drive with
/// [`Network::run`] / [`Network::step`]; inspect with [`Network::stats`].
pub struct Network {
    pub(crate) topo: Topology,
    pub(crate) cfg: SimConfig,
    pub(crate) routing: Box<dyn Routing>,
    pub(crate) traffic: Box<dyn TrafficSource>,
    pub(crate) routers: Vec<Router>,
    pub(crate) agents: Vec<SpinAgent>,
    pub(crate) spin_enabled: bool,
    pub(crate) meta: MetaTable,
    /// Arena of in-flight packet headers; flits and buffers carry handles
    /// into it (see [`crate::store`] for the ownership model).
    pub(crate) store: PacketStore,
    /// Router output links, flat-indexed `link_base[router] + port` in the
    /// same id space as `active_links` (local ports hold the ejection link
    /// to the attached NIC). Flat so the sharded kernel can hand disjoint
    /// element ranges to workers; use [`Network::link_at_mut`] for
    /// (router, port) access.
    pub(crate) out_links: Vec<Link>,
    /// Injection links: NIC -> router local port.
    pub(crate) inj_links: Vec<Link>,
    pub(crate) nics: Vec<Nic>,
    pub(crate) rng: StdRng,
    pub(crate) now: Cycle,
    pub(crate) next_packet_id: u64,
    pub(crate) stats: NetStats,
    pub(crate) priority: RotatingPriority,
    pub(crate) escape: XyRouting,
    pub(crate) num_network_links: u64,
    /// SM inbox per router, refilled each delivery phase.
    pub(crate) inbox: Vec<Vec<(PortId, Sm)>>,
    /// SMs emitted this cycle awaiting link contention resolution.
    pub(crate) pending_sms: Vec<(RouterId, PortId, Sm)>,
    /// Ports occupied by an SM this cycle (blocked for flits). A tiny
    /// linear-scanned set: cleared every cycle and almost always empty, so
    /// membership checks on the per-port switch-allocation path cost one
    /// length test instead of a hash.
    pub(crate) sm_busy: Vec<(u32, u8)>,
    /// Ground-truth deadlock classification cache (cycle, routers).
    pub(crate) classify_cache: Option<(Cycle, Vec<RouterId>)>,
    /// Structured event sink; `None` (the default) disables tracing at the
    /// cost of one branch per potential emission site.
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    /// Time-series metrics epoch ring (see `SimConfig::metrics`).
    pub(crate) metrics: Option<MetricsRing>,
    pub(crate) scratch_phits: Vec<Phit>,
    /// Scheduled runtime link faults (sorted; see [`crate::faults`]).
    pub(crate) faults: FaultPlan,
    /// Index of the next unapplied event in `faults`.
    pub(crate) fault_cursor: usize,
    /// Links currently down: both endpoints plus the original latency, so
    /// a heal can restore the link exactly as built.
    pub(crate) dead_links: Vec<(PortConn, PortConn, u32)>,
    /// Static deadlock oracle for cross-validation (see
    /// [`crate::static_model`]); `None` (the default) disables the hook at
    /// the cost of one branch per ground-truth check.
    pub(crate) static_model: Option<Box<dyn crate::static_model::StaticModel>>,
    /// Online fabric manager: admission check every kill/heal must pass
    /// before going live (see [`crate::fabric`]). Doubles as the static
    /// model when no explicit one is installed.
    pub(crate) fabric: Option<Box<dyn crate::fabric::FabricAdmission>>,
    /// Episode tracking and recorded violations for the static model.
    pub(crate) xval: crate::static_model::CrossValidation,
    /// Routers that may do work this cycle: any router holding packets, an
    /// undelivered SM, or a non-idle SPIN agent (see [`crate::activity`]).
    /// Inserted where activity is created (flit/SM arrival, agent state
    /// changes, fault endpoints); pruned once per cycle at the end of
    /// [`Network::step`].
    pub(crate) active_routers: ActivitySet,
    /// Links with phits in flight, over the flat id space `link_base[r] +
    /// p` for router out-links followed by `inj_base + n` for injection
    /// links — ascending flat order is exactly the dense delivery order.
    /// Inserted at every send site; pruned in delivery.
    pub(crate) active_links: ActivitySet,
    /// NICs with queued packets or an active injection stream. Inserted
    /// when the traffic source emits a packet; pruned in injection.
    pub(crate) active_nics: ActivitySet,
    /// Flat link-id base per router (prefix sums of radixes, like
    /// `MetricsRing::link_index`).
    pub(crate) link_base: Vec<u32>,
    /// First flat id of the injection links (== total out-link count).
    pub(crate) inj_base: u32,
    /// Reverse map: flat out-link id -> (router, port).
    pub(crate) link_owner: Vec<(u32, u8)>,
    /// Scratch buffer for per-stage worklist snapshots.
    pub(crate) scratch_ids: Vec<u32>,
    /// This cycle's router worklist snapshot (see
    /// [`Network::build_coord_cache`]).
    pub(crate) cycle_ids: Vec<u32>,
    /// Per `cycle_ids` entry: the `[lo, hi)` range of `cycle_coords`
    /// holding that router's occupied VC coordinates.
    pub(crate) cycle_ranges: Vec<(u32, u32)>,
    /// Concatenated occupied `(port, vnet, vc)` coordinates of every router
    /// in `cycle_ids`, each slice in ascending slot order.
    pub(crate) cycle_coords: Vec<(PortId, Vnet, VcId)>,
    /// Dense-step oracle mode: every stage iterates the full entity range
    /// (the pre-worklist kernel) while maintaining identical activity
    /// bookkeeping. Enabled via [`NetworkBuilder::dense_step`] or
    /// `SPIN_DENSE_STEP=1`; the differential tests step both kernels in
    /// lockstep.
    pub(crate) dense_step: bool,
    /// Sharded-kernel state when stepping across threads (`None` = serial;
    /// see [`crate::shard`]). Boxed: it is cold on every serial path.
    pub(crate) sharding: Option<Box<crate::shard::ShardState>>,
}

impl Network {
    pub(crate) fn from_builder(b: NetworkBuilder) -> Network {
        b.cfg.validate();
        let topo = b.topo;
        let routing = b
            .routing
            .expect("NetworkBuilder requires a routing algorithm");
        let traffic = b.traffic.expect("NetworkBuilder requires a traffic source");
        let spin_cfg = b.spin.map(|mut s| {
            s.num_routers = topo.num_routers() as u32;
            s.max_packet_len = b.cfg.max_packet_len;
            s
        });
        let spin_enabled = spin_cfg.is_some();
        assert!(
            !(spin_enabled && b.cfg.switching == Switching::Wormhole),
            "SPIN requires virtual cut-through switching (see Switching::Wormhole docs)"
        );
        assert!(
            b.faults.is_empty() || !(b.cfg.static_bubble || b.cfg.bubble_flow_control),
            "runtime fault injection is incompatible with static_bubble and \
             bubble_flow_control: their escape routes / bubble rings assume the \
             full built topology and do not adapt to dead links"
        );
        let agent_cfg = spin_cfg.unwrap_or_else(|| SpinConfig {
            num_routers: topo.num_routers() as u32,
            ..SpinConfig::default()
        });
        let routers: Vec<Router> = (0..topo.num_routers())
            .map(|r| {
                Router::new(
                    RouterId(r as u32),
                    topo.radix(RouterId(r as u32)),
                    b.cfg.vnets,
                    b.cfg.vcs_per_vnet,
                )
            })
            .collect();
        let agents = (0..topo.num_routers())
            .map(|r| SpinAgent::new(RouterId(r as u32), agent_cfg))
            .collect();
        let meta = MetaTable::new(&topo, b.cfg.vnets, b.cfg.vcs_per_vnet);
        let mut num_network_links = 0u64;
        let mut out_links: Vec<Link> = Vec::new();
        for r in 0..topo.num_routers() {
            let r = RouterId(r as u32);
            for p in 0..topo.radix(r) {
                let port = topo.port(r, PortId(p as u8));
                if port.is_network() {
                    num_network_links += 1;
                }
                // Effective hop delay = link latency + the 1-cycle
                // router pipeline (Garnet's 1-cycle router model).
                out_links.push(Link::new(port.latency + 1));
            }
        }
        let inj_links = (0..topo.num_nodes()).map(|_| Link::new(2)).collect();
        let nics = (0..topo.num_nodes())
            .map(|n| Nic::new(NodeId(n as u32), b.cfg.vnets))
            .collect();
        let inbox = vec![Vec::new(); topo.num_routers()];
        let mut link_base = Vec::with_capacity(topo.num_routers());
        let mut link_owner = Vec::new();
        let mut flat = 0u32;
        for r in 0..topo.num_routers() {
            link_base.push(flat);
            let radix = topo.radix(RouterId(r as u32)) as u32;
            for p in 0..radix {
                link_owner.push((r as u32, p as u8));
            }
            flat += radix;
        }
        let inj_base = flat;
        let dense_step = b.dense_step.unwrap_or_else(|| {
            std::env::var("SPIN_DENSE_STEP")
                .map(|v| v == "1")
                .unwrap_or(false)
        });
        let shards_req = b.shards.unwrap_or_else(|| {
            std::env::var("SPIN_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1)
        });
        // Wormhole switch traversal reads mid-phase credit state, which the
        // phase-parallel kernel cannot reproduce: clamp it to serial.
        let shards = if b.cfg.switching == Switching::Wormhole {
            1
        } else {
            shards_req.clamp(1, 255).min(topo.num_routers())
        };
        let sharding = (shards > 1).then(|| {
            let partitioner = b
                .partitioner
                .unwrap_or_else(|| Box::new(crate::shard::ContiguousPartitioner));
            Box::new(crate::shard::ShardState::new(
                &topo,
                partitioner,
                shards,
                &link_owner,
                inj_base,
            ))
        });
        let metrics = b.cfg.metrics.map(|mc| {
            let radixes: Vec<usize> = (0..topo.num_routers())
                .map(|r| topo.radix(RouterId(r as u32)))
                .collect();
            MetricsRing::new(mc, &radixes)
        });
        Network {
            priority: RotatingPriority::new(&agent_cfg),
            rng: StdRng::seed_from_u64(b.cfg.seed),
            routers,
            agents,
            spin_enabled,
            meta,
            store: PacketStore::new(),
            out_links,
            inj_links,
            nics,
            now: 0,
            next_packet_id: 0,
            stats: NetStats::default(),
            escape: XyRouting,
            num_network_links,
            inbox,
            pending_sms: Vec::new(),
            sm_busy: Vec::new(),
            classify_cache: None,
            trace: b.trace,
            metrics,
            scratch_phits: Vec::new(),
            faults: b.faults,
            fault_cursor: 0,
            dead_links: Vec::new(),
            static_model: b.static_model,
            fabric: b.fabric,
            xval: crate::static_model::CrossValidation::default(),
            active_routers: ActivitySet::new(topo.num_routers()),
            active_links: ActivitySet::new(inj_base as usize + topo.num_nodes()),
            active_nics: ActivitySet::new(topo.num_nodes()),
            link_base,
            inj_base,
            link_owner,
            scratch_ids: Vec::new(),
            cycle_ids: Vec::new(),
            cycle_ranges: Vec::new(),
            cycle_coords: Vec::new(),
            dense_step,
            sharding,
            cfg: b.cfg,
            routing,
            traffic,
            topo,
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Snapshot of all statistics, including SPIN protocol aggregates.
    pub fn stats(&self) -> NetStats {
        let mut s = self.stats.clone();
        let agg = self.spin_stats();
        s.probes_sent = agg.probes_sent;
        s.spins = agg.spins_initiated;
        s.loops_confirmed = agg.loops_confirmed;
        s.kills_sent = agg.kills_sent;
        s.probe_moves_sent = agg.probe_moves_sent;
        s
    }

    /// Aggregated SPIN protocol counters over all routers.
    pub fn spin_stats(&self) -> SpinStats {
        let mut agg = SpinStats::default();
        for a in &self.agents {
            let s = a.stats();
            agg.probes_sent += s.probes_sent;
            agg.loops_confirmed += s.loops_confirmed;
            agg.moves_sent += s.moves_sent;
            agg.probe_moves_sent += s.probe_moves_sent;
            agg.kills_sent += s.kills_sent;
            agg.spins += s.spins;
            agg.spins_initiated += s.spins_initiated;
            agg.drop_ttl += s.drop_ttl;
            agg.drop_priority += s.drop_priority;
            agg.drop_dup += s.drop_dup;
            agg.drop_free_vc += s.drop_free_vc;
            agg.drop_no_dependence += s.drop_no_dependence;
            agg.accept_failed += s.accept_failed;
        }
        agg
    }

    /// Starts a fresh measurement window (call after warmup).
    pub fn reset_measurement(&mut self) {
        self.stats.reset_window(self.now);
    }

    /// The recorded trace, if a retaining sink was installed via
    /// [`NetworkBuilder::trace_sink`] (`None` with tracing disabled or a
    /// non-retaining sink). Events appear in deterministic simulation
    /// order; see `spin_trace::jsonl` / `spin_trace::chrome` to export.
    pub fn trace_events(&self) -> Option<&[TraceRecord]> {
        self.trace.as_deref().and_then(|t| t.events())
    }

    /// The time-series metrics ring, if enabled via `SimConfig::metrics`.
    pub fn metrics(&self) -> Option<&MetricsRing> {
        self.metrics.as_ref()
    }

    /// The fabric manager's per-event admission log, if one was installed
    /// via [`NetworkBuilder::fabric`] (empty slice otherwise). Decisions
    /// appear in submission order; see [`crate::fabric::FabricEventReport`].
    pub fn fabric_events(&self) -> &[crate::fabric::FabricEventReport] {
        self.fabric.as_deref().map_or(&[], |f| f.events())
    }

    /// True when a trace sink is installed. Emission sites with non-trivial
    /// payload construction check this first so disabled tracing costs one
    /// branch.
    #[inline]
    pub(crate) fn trace_on(&self) -> bool {
        self.trace.is_some()
    }

    /// Records `event` at the current cycle (no-op without a sink).
    #[inline]
    pub(crate) fn emit(&mut self, event: TraceEvent) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(TraceRecord {
                cycle: self.now,
                event,
            });
        }
    }

    /// Runs `cycles` simulation cycles.
    pub fn run(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until the ground-truth detector finds a deadlock (checked every
    /// `check_every` cycles) or `max_cycles` elapse. Returns the cycle of
    /// first detection.
    pub fn run_until_deadlock(&mut self, max_cycles: Cycle, check_every: Cycle) -> Option<Cycle> {
        let check_every = check_every.max(1);
        for _ in 0..max_cycles {
            self.step();
            if self.now.is_multiple_of(check_every) {
                if self.static_model.is_some() || self.fabric.is_some() {
                    // Cross-validate the detection against the static CDG
                    // before (possibly) returning on it.
                    self.static_model_check();
                }
                if self.trace_on() {
                    // With tracing on, record how wide the deadlock is.
                    let routers = self.wait_graph().deadlocked_routers();
                    if !routers.is_empty() {
                        self.emit(TraceEvent::GroundTruthDeadlock {
                            routers: routers.len() as u32,
                        });
                        return Some(self.now);
                    }
                } else if self.wait_graph().has_deadlock() {
                    return Some(self.now);
                }
            }
        }
        None
    }

    /// Advances the network by one cycle: the seven-stage pipeline of
    /// DESIGN.md, in order. Dispatches to the sharded kernel when the
    /// builder configured more than one shard (see the `shard` module); the
    /// two kernels are bit-identical.
    pub fn step(&mut self) {
        if self.sharding.is_some() {
            self.step_sharded();
        } else {
            self.step_serial();
        }
    }

    /// The serial cycle: each stage lives in its own `crate::pipeline`
    /// module.
    pub(crate) fn step_serial(&mut self) {
        self.now += 1;
        self.apply_faults(); // pipeline::faults (no-op unless events are due)
        self.classify_cache = None;
        self.sm_busy.clear();
        self.pending_sms.clear();
        self.deliver_phits(); // pipeline::delivery
        self.build_coord_cache();
        self.process_sms(); // pipeline::spin_engine
        self.agents_tick(); // pipeline::spin_engine
        self.resolve_sms(); // pipeline::spin_engine
        self.inject(); // pipeline::injection
        self.route_compute(); // pipeline::route
        self.vc_allocate(); // pipeline::vc_alloc
        self.switch_traverse(); // pipeline::sw_alloc (sends via traversal)
        self.spin_completions(); // pipeline::spin_engine
        self.prune_idle_routers();
        self.stats.cycles = self.now;
        self.stats.link_use.total += self.num_network_links;
        if let Some(m) = &mut self.metrics {
            if m.epoch_due(self.now) {
                let mut snap = Vec::new();
                self.meta.occupancy_snapshot_into(&mut snap);
                m.rollover(self.now, snap);
            }
        }
    }

    /// True when the kernel is running in dense-oracle mode (see
    /// [`NetworkBuilder::dense_step`]).
    pub fn dense_step(&self) -> bool {
        self.dense_step
    }

    /// Marks a router as possibly having work next stage/cycle.
    #[inline]
    pub(crate) fn mark_router(&mut self, r: RouterId) {
        self.active_routers.insert(r.index());
    }

    /// Mutable access to the out-link of (router `r`, port `p`) in the
    /// flat link array (`link_base[r] + p`).
    #[inline]
    pub(crate) fn link_at_mut(&mut self, r: usize, p: usize) -> &mut Link {
        &mut self.out_links[self.link_base[r] as usize + p]
    }

    /// Marks the out-link (router `i`, `port`) as carrying phits.
    #[inline]
    pub(crate) fn mark_link(&mut self, i: usize, port: PortId) {
        self.active_links
            .insert(self.link_base[i] as usize + port.index());
    }

    /// Marks injection link `n` as carrying phits.
    #[inline]
    pub(crate) fn mark_inj_link(&mut self, n: usize) {
        self.active_links.insert(self.inj_base as usize + n);
    }

    /// Fills `out` with this stage's router worklist: every router in
    /// dense-oracle mode, otherwise the active set — both ascending, the
    /// dense visit order. A snapshot per stage is sound because no stage
    /// creates same-stage work on a router it has not yet visited (arrivals
    /// land next delivery; agent actions target the acting router).
    pub(crate) fn router_worklist_into(&mut self, out: &mut Vec<u32>) {
        out.clear();
        if self.dense_step {
            out.extend(0..self.routers.len() as u32);
        } else {
            self.active_routers.sorted_into(out);
        }
    }

    /// Builds the shared per-cycle router worklist snapshot (`cycle_ids`)
    /// and occupied-coordinate cache (`cycle_ranges` + `cycle_coords`)
    /// consumed by every stage after delivery.
    ///
    /// One snapshot per cycle is bit-identical to rebuilding it at the top
    /// of every stage because (a) active-router membership only grows in
    /// `apply_faults` and `deliver_phits` (flit/SM arrival), both already
    /// run, and (b) VC occupancy changes only at delivery (push), fault
    /// removal, and switch traversal (pop) — and a router's sends in
    /// `switch_traverse` happen only after its own arbitration consumed the
    /// cache, exactly like the per-stage rebuild this replaces.
    pub(crate) fn build_coord_cache(&mut self) {
        let mut ids = std::mem::take(&mut self.cycle_ids);
        self.router_worklist_into(&mut ids);
        self.cycle_ranges.clear();
        self.cycle_coords.clear();
        for &ri in &ids {
            let lo = self.cycle_coords.len() as u32;
            self.routers[ri as usize].append_coords(&mut self.cycle_coords);
            self.cycle_ranges.push((lo, self.cycle_coords.len() as u32));
        }
        self.cycle_ids = ids;
    }

    /// Hands the per-cycle coordinate cache to a stage (borrow-splitting;
    /// pair with [`Network::restore_coord_cache`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn take_coord_cache(
        &mut self,
    ) -> (Vec<u32>, Vec<(u32, u32)>, Vec<(PortId, Vnet, VcId)>) {
        (
            std::mem::take(&mut self.cycle_ids),
            std::mem::take(&mut self.cycle_ranges),
            std::mem::take(&mut self.cycle_coords),
        )
    }

    /// Returns the buffers taken by [`Network::take_coord_cache`].
    pub(crate) fn restore_coord_cache(
        &mut self,
        ids: Vec<u32>,
        ranges: Vec<(u32, u32)>,
        coords: Vec<(PortId, Vnet, VcId)>,
    ) {
        self.cycle_ids = ids;
        self.cycle_ranges = ranges;
        self.cycle_coords = coords;
    }

    /// End-of-cycle worklist retention: a router stays active while it
    /// holds packets, has an undelivered SM, or its SPIN agent is running
    /// (deadlines tick even with empty buffers). Every other wakeup source
    /// re-inserts at the point activity is created, so dropping a router
    /// here can never lose one.
    pub(crate) fn prune_idle_routers(&mut self) {
        let mut active = std::mem::take(&mut self.active_routers);
        active.retain(|i| {
            let i = i as usize;
            !self.routers[i].is_idle()
                || !self.inbox[i].is_empty()
                || (self.spin_enabled
                    && (self.agents[i].state() != FsmState::Off || self.agents[i].is_spinning()))
        });
        self.active_routers = active;
    }

    /// The routing-visible congestion view at the current cycle.
    pub(crate) fn view(&self) -> NetView<'_> {
        NetView {
            topo: &self.topo,
            meta: &self.meta,
            now: self.now,
            vcs: self.cfg.vcs_per_vnet,
            hidden_vc: hidden_vc(&self.cfg),
        }
    }

    /// Total packets currently buffered in the network (not NIC queues).
    pub fn packets_in_network(&self) -> usize {
        self.routers
            .iter()
            .map(|r| {
                r.in_vcs
                    .iter()
                    .flatten()
                    .flatten()
                    .map(|vc| vc.q.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total packets waiting in NIC injection queues (including one mid
    /// stream, if any).
    pub fn packets_queued(&self) -> usize {
        self.nics
            .iter()
            .map(|n| n.queued() + usize::from(n.active.is_some()))
            .sum()
    }

    /// Flits currently travelling on links (network, injection and
    /// ejection).
    pub fn flits_in_flight(&self) -> usize {
        let net: usize = self.out_links.iter().map(|l| l.in_flight()).sum();
        let inj: usize = self.inj_links.iter().map(|l| l.in_flight()).sum();
        net + inj
    }

    /// Drains the network: stops offering new traffic is the caller's job
    /// (use a zero-rate source), this just runs until no packets remain in
    /// routers or NICs, or `max_cycles` pass. Returns true if drained.
    pub fn drain(&mut self, max_cycles: Cycle) -> bool {
        let empty = |n: &Network| {
            n.packets_in_network() == 0 && n.packets_queued() == 0 && n.flits_in_flight() == 0
        };
        for _ in 0..max_cycles {
            if empty(self) {
                return true;
            }
            self.step();
        }
        empty(self)
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.topo.name())
            .field("routing", &self.routing.name())
            .field("now", &self.now)
            .field("spin", &self.spin_enabled)
            .finish()
    }
}

pub(crate) fn hidden_vc(cfg: &SimConfig) -> Option<VcId> {
    if cfg.static_bubble {
        Some(VcId(cfg.vcs_per_vnet - 1))
    } else {
        None
    }
}
