//! The cycle engine: per-cycle pipeline over all routers, links and NICs.

use crate::config::{NetworkBuilder, SimConfig, Switching};
use crate::link::{Link, Phit};
use crate::nic::{ActiveInjection, Nic};
use crate::router::{Router, SpinView};
use crate::stats::NetStats;
use crate::vc::PacketBuf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_core::{
    Action, FsmState, RotatingPriority, Sm, SmKind, SpinAgent, SpinConfig, SpinStats,
};
use spin_deadlock::{BufferId, WaitGraph};
use spin_routing::{NetworkView, RouteChoice, Routing, VcMask, XyRouting};
use spin_topology::Topology;
use spin_traffic::{PacketSpec, TrafficSource};
use spin_types::{
    Cycle, Flit, FlitKind, NodeId, Packet, PacketBuilder, PortId, RouterId, VcId, Vnet,
};
use std::collections::HashSet;

/// Per-VC allocation mirror. Each (input port, vnet, VC) buffer has exactly
/// one upstream, so this zero-delay mirror is race-free (see crate docs).
#[derive(Debug, Clone, Copy, Default)]
struct VcMeta {
    /// Reserved by an upstream allocation whose tail has not been sent yet.
    reserved: bool,
    /// Flits physically buffered.
    occupancy: u16,
    /// Flits on the wire heading here (normal sends).
    inflight: u16,
    /// Cycle the VC last became busy.
    busy_since: Cycle,
    busy: bool,
}

impl VcMeta {
    fn allocatable(&self) -> bool {
        !self.reserved && self.occupancy == 0 && self.inflight == 0
    }
}

/// Flat table of [`VcMeta`] plus per-(port,vnet) spin-flit in-flight
/// counters.
#[derive(Debug)]
struct MetaTable {
    data: Vec<VcMeta>,
    /// spin flits in flight towards (router, port, vnet).
    spin_inflight: Vec<u16>,
    /// data offset per router.
    offsets: Vec<usize>,
    /// spin_inflight offset per router.
    port_offsets: Vec<usize>,
    vnets: usize,
    vcs: usize,
}

impl MetaTable {
    fn new(topo: &Topology, vnets: u8, vcs: u8) -> Self {
        let mut offsets = Vec::with_capacity(topo.num_routers());
        let mut port_offsets = Vec::with_capacity(topo.num_routers());
        let (mut off, mut poff) = (0usize, 0usize);
        for r in 0..topo.num_routers() {
            offsets.push(off);
            port_offsets.push(poff);
            let radix = topo.radix(RouterId(r as u32));
            off += radix * vnets as usize * vcs as usize;
            poff += radix * vnets as usize;
        }
        MetaTable {
            data: vec![VcMeta::default(); off],
            spin_inflight: vec![0; poff],
            offsets,
            port_offsets,
            vnets: vnets as usize,
            vcs: vcs as usize,
        }
    }

    #[inline]
    fn idx(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> usize {
        self.offsets[r.index()] + (p.index() * self.vnets + vn.index()) * self.vcs + vc.index()
    }

    #[inline]
    fn pidx(&self, r: RouterId, p: PortId, vn: Vnet) -> usize {
        self.port_offsets[r.index()] + p.index() * self.vnets + vn.index()
    }

    #[inline]
    fn get(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> &VcMeta {
        &self.data[self.idx(r, p, vn, vc)]
    }

    fn allocatable(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId) -> bool {
        self.get(r, p, vn, vc).allocatable() && self.spin_inflight[self.pidx(r, p, vn)] == 0
    }

    fn touch(&mut self, now: Cycle, i: usize) {
        let m = &mut self.data[i];
        let busy_now = m.reserved || m.occupancy > 0 || m.inflight > 0;
        if busy_now && !m.busy {
            m.busy = true;
            m.busy_since = now;
        } else if !busy_now {
            m.busy = false;
        }
    }

    fn reserve(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].reserved = true;
        self.touch(now, i);
    }

    fn release(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId) {
        let i = self.idx(r, p, vn, vc);
        self.data[i].reserved = false;
        self.touch(now, i);
    }

    fn occ_add(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId, d: i32) {
        let i = self.idx(r, p, vn, vc);
        let m = &mut self.data[i];
        m.occupancy = (m.occupancy as i32 + d).max(0) as u16;
        self.touch(now, i);
    }

    fn inflight_add(&mut self, now: Cycle, r: RouterId, p: PortId, vn: Vnet, vc: VcId, d: i32) {
        let i = self.idx(r, p, vn, vc);
        let m = &mut self.data[i];
        m.inflight = (m.inflight as i32 + d).max(0) as u16;
        self.touch(now, i);
    }

    /// Free flit slots in a VC buffer (for wormhole per-flit flow control).
    fn space(&self, r: RouterId, p: PortId, vn: Vnet, vc: VcId, depth: u16) -> u16 {
        let m = self.get(r, p, vn, vc);
        depth.saturating_sub(m.occupancy + m.inflight)
    }

    fn spin_inflight_add(&mut self, r: RouterId, p: PortId, vn: Vnet, d: i32) {
        let i = self.pidx(r, p, vn);
        self.spin_inflight[i] = (self.spin_inflight[i] as i32 + d).max(0) as u16;
    }
}

/// The routing-visible congestion view (local credit knowledge).
struct NetView<'a> {
    topo: &'a Topology,
    meta: &'a MetaTable,
    now: Cycle,
    vcs: u8,
    /// Static Bubble: the reserved VC is invisible to routing decisions.
    hidden_vc: Option<VcId>,
}

impl NetworkView for NetView<'_> {
    fn topology(&self) -> &Topology {
        self.topo
    }
    fn now(&self) -> Cycle {
        self.now
    }
    fn free_vcs_downstream(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> usize {
        let Some(peer) = self.topo.neighbor(at, out_port) else { return 0 };
        (0..self.vcs)
            .filter(|&v| Some(VcId(v)) != self.hidden_vc)
            .filter(|&v| self.meta.allocatable(peer.router, peer.port, vnet, VcId(v)))
            .count()
    }
    fn min_vc_active_time(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> u64 {
        let Some(peer) = self.topo.neighbor(at, out_port) else { return u64::MAX / 2 };
        let mut min = u64::MAX / 2;
        for v in 0..self.vcs {
            if Some(VcId(v)) == self.hidden_vc {
                continue;
            }
            if self.meta.allocatable(peer.router, peer.port, vnet, VcId(v)) {
                return 0;
            }
            let m = self.meta.get(peer.router, peer.port, vnet, VcId(v));
            min = min.min(self.now.saturating_sub(m.busy_since));
        }
        min
    }
    fn downstream_occupancy(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> usize {
        let Some(peer) = self.topo.neighbor(at, out_port) else { return usize::MAX / 2 };
        (0..self.vcs)
            .map(|v| {
                let m = self.meta.get(peer.router, peer.port, vnet, VcId(v));
                m.occupancy as usize + m.inflight as usize
            })
            .sum()
    }
}

/// The simulated network. Build with [`NetworkBuilder`]; drive with
/// [`Network::run`] / [`Network::step`]; inspect with [`Network::stats`].
pub struct Network {
    topo: Topology,
    cfg: SimConfig,
    routing: Box<dyn Routing>,
    traffic: Box<dyn TrafficSource>,
    routers: Vec<Router>,
    agents: Vec<SpinAgent>,
    spin_enabled: bool,
    meta: MetaTable,
    /// Router output links: `out_links[router][port]` (local ports hold the
    /// ejection link to the attached NIC).
    out_links: Vec<Vec<Link>>,
    /// Injection links: NIC -> router local port.
    inj_links: Vec<Link>,
    nics: Vec<Nic>,
    rng: StdRng,
    now: Cycle,
    next_packet_id: u64,
    stats: NetStats,
    priority: RotatingPriority,
    escape: XyRouting,
    num_network_links: u64,
    /// SM inbox per router, refilled each delivery phase.
    inbox: Vec<Vec<(PortId, Sm)>>,
    /// SMs emitted this cycle awaiting link contention resolution.
    pending_sms: Vec<(RouterId, PortId, Sm)>,
    /// Ports occupied by an SM this cycle (blocked for flits).
    sm_busy: HashSet<(u32, u8)>,
    /// Ground-truth deadlock classification cache (cycle, routers).
    classify_cache: Option<(Cycle, Vec<RouterId>)>,
    scratch_phits: Vec<Phit>,
}

impl Network {
    pub(crate) fn from_builder(b: NetworkBuilder) -> Network {
        b.cfg.validate();
        let topo = b.topo;
        let routing = b.routing.expect("NetworkBuilder requires a routing algorithm");
        let traffic = b.traffic.expect("NetworkBuilder requires a traffic source");
        let spin_cfg = b.spin.map(|mut s| {
            s.num_routers = topo.num_routers() as u32;
            s.max_packet_len = b.cfg.max_packet_len;
            s
        });
        let spin_enabled = spin_cfg.is_some();
        assert!(
            !(spin_enabled && b.cfg.switching == Switching::Wormhole),
            "SPIN requires virtual cut-through switching (see Switching::Wormhole docs)"
        );
        let agent_cfg = spin_cfg.unwrap_or_else(|| SpinConfig {
            num_routers: topo.num_routers() as u32,
            ..SpinConfig::default()
        });
        let routers: Vec<Router> = (0..topo.num_routers())
            .map(|r| {
                Router::new(
                    RouterId(r as u32),
                    topo.radix(RouterId(r as u32)),
                    b.cfg.vnets,
                    b.cfg.vcs_per_vnet,
                )
            })
            .collect();
        let agents = (0..topo.num_routers())
            .map(|r| SpinAgent::new(RouterId(r as u32), agent_cfg))
            .collect();
        let meta = MetaTable::new(&topo, b.cfg.vnets, b.cfg.vcs_per_vnet);
        let mut num_network_links = 0u64;
        let out_links: Vec<Vec<Link>> = (0..topo.num_routers())
            .map(|r| {
                let r = RouterId(r as u32);
                (0..topo.radix(r))
                    .map(|p| {
                        let port = topo.port(r, PortId(p as u8));
                        if port.is_network() {
                            num_network_links += 1;
                        }
                        // Effective hop delay = link latency + the 1-cycle
                        // router pipeline (Garnet's 1-cycle router model).
                        Link::new(port.latency + 1)
                    })
                    .collect()
            })
            .collect();
        let inj_links = (0..topo.num_nodes()).map(|_| Link::new(2)).collect();
        let nics = (0..topo.num_nodes())
            .map(|n| Nic::new(NodeId(n as u32), b.cfg.vnets))
            .collect();
        let inbox = vec![Vec::new(); topo.num_routers()];
        Network {
            priority: RotatingPriority::new(&agent_cfg),
            rng: StdRng::seed_from_u64(b.cfg.seed),
            routers,
            agents,
            spin_enabled,
            meta,
            out_links,
            inj_links,
            nics,
            now: 0,
            next_packet_id: 0,
            stats: NetStats::default(),
            escape: XyRouting,
            num_network_links,
            inbox,
            pending_sms: Vec::new(),
            sm_busy: HashSet::new(),
            classify_cache: None,
            scratch_phits: Vec::new(),
            cfg: b.cfg,
            routing,
            traffic,
            topo,
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Snapshot of all statistics, including SPIN protocol aggregates.
    pub fn stats(&self) -> NetStats {
        let mut s = self.stats.clone();
        let agg = self.spin_stats();
        s.probes_sent = agg.probes_sent;
        s.spins = agg.spins_initiated;
        s.loops_confirmed = agg.loops_confirmed;
        s.kills_sent = agg.kills_sent;
        s.probe_moves_sent = agg.probe_moves_sent;
        s
    }

    /// Aggregated SPIN protocol counters over all routers.
    pub fn spin_stats(&self) -> SpinStats {
        let mut agg = SpinStats::default();
        for a in &self.agents {
            let s = a.stats();
            agg.probes_sent += s.probes_sent;
            agg.loops_confirmed += s.loops_confirmed;
            agg.moves_sent += s.moves_sent;
            agg.probe_moves_sent += s.probe_moves_sent;
            agg.kills_sent += s.kills_sent;
            agg.spins += s.spins;
            agg.spins_initiated += s.spins_initiated;
            agg.drop_ttl += s.drop_ttl;
            agg.drop_priority += s.drop_priority;
            agg.drop_dup += s.drop_dup;
            agg.drop_free_vc += s.drop_free_vc;
            agg.drop_no_dependence += s.drop_no_dependence;
            agg.accept_failed += s.accept_failed;
        }
        agg
    }

    /// Starts a fresh measurement window (call after warmup).
    pub fn reset_measurement(&mut self) {
        self.stats.reset_window(self.now);
    }

    /// Runs `cycles` simulation cycles.
    pub fn run(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until the ground-truth detector finds a deadlock (checked every
    /// `check_every` cycles) or `max_cycles` elapse. Returns the cycle of
    /// first detection.
    pub fn run_until_deadlock(&mut self, max_cycles: Cycle, check_every: Cycle) -> Option<Cycle> {
        let check_every = check_every.max(1);
        for _ in 0..max_cycles {
            self.step();
            if self.now.is_multiple_of(check_every) && self.wait_graph().has_deadlock() {
                return Some(self.now);
            }
        }
        None
    }

    /// Advances the network by one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        self.classify_cache = None;
        self.sm_busy.clear();
        self.pending_sms.clear();
        self.deliver_phits();
        self.process_sms();
        self.agents_tick();
        self.resolve_sms();
        self.inject();
        self.route_compute();
        self.vc_allocate();
        self.switch_traverse();
        self.spin_completions();
        self.stats.cycles = self.now;
        self.stats.link_use.total += self.num_network_links;
    }

    // ------------------------------------------------------------------
    // Stage 1: link delivery
    // ------------------------------------------------------------------

    fn deliver_phits(&mut self) {
        let now = self.now;
        let mut phits = std::mem::take(&mut self.scratch_phits);
        for r in 0..self.routers.len() {
            for p in 0..self.out_links[r].len() {
                phits.clear();
                self.out_links[r][p].deliver(now, &mut phits);
                if phits.is_empty() {
                    continue;
                }
                let rid = RouterId(r as u32);
                let port = self.topo.port(rid, PortId(p as u8));
                if let Some(node) = port.node {
                    for phit in phits.drain(..) {
                        if let Phit::Flit { flit, .. } = phit {
                            self.eject_flit(node, flit);
                        }
                    }
                } else if let Some(peer) = port.conn {
                    for phit in phits.drain(..) {
                        match phit {
                            Phit::Flit { flit, vc, spin } => {
                                self.arrive_flit(peer.router, peer.port, flit, vc, spin, true);
                            }
                            Phit::Sm(sm) => {
                                self.inbox[peer.router.index()].push((peer.port, sm));
                            }
                        }
                    }
                }
            }
        }
        for n in 0..self.inj_links.len() {
            phits.clear();
            self.inj_links[n].deliver(now, &mut phits);
            let at = self.topo.node_attach(NodeId(n as u32));
            for phit in phits.drain(..) {
                if let Phit::Flit { flit, vc, spin } = phit {
                    self.arrive_flit(at.router, at.port, flit, vc, spin, false);
                }
            }
        }
        self.scratch_phits = phits;
    }

    fn arrive_flit(
        &mut self,
        r: RouterId,
        p: PortId,
        flit: Flit,
        vc: VcId,
        spin: bool,
        network_hop: bool,
    ) {
        let now = self.now;
        let vnet = flit.packet.vnet;
        let tvc = if spin {
            match self.routers[r.index()].spin_rx.get(&(p, vnet)) {
                Some(&v) => v,
                None => {
                    self.stats.spin_orphans += 1;
                    vc
                }
            }
        } else {
            vc
        };
        if flit.kind.is_head() {
            let mut packet = flit.packet.clone();
            if network_hop {
                packet.hops += 1;
                if self.topo.is_global_port(r, p) {
                    packet.global_hops += 1;
                }
            }
            if let Some(i) = packet.intermediate {
                if self.topo.node_router(i) == r {
                    packet.intermediate = None;
                }
            }
            let mut pb = PacketBuf::new(packet);
            pb.received = 1;
            let router = &mut self.routers[r.index()];
            if router.vc(p, vnet, tvc).q.is_empty() {
                router.occupied_vcs += 1;
            }
            router.vc_mut(p, vnet, tvc).q.push_back(pb);
        } else {
            let vcb = self.routers[r.index()].vc_mut(p, vnet, tvc);
            if let Some(pb) = vcb
                .q
                .iter_mut()
                .rev()
                .find(|pb| pb.received < pb.packet.len)
            {
                pb.received += 1;
            } else {
                // A body flit with no waiting header can only come from a
                // mis-steered spin push.
                self.stats.spin_orphans += 1;
            }
        }
        self.meta.occ_add(now, r, p, vnet, tvc, 1);
        if spin {
            self.meta.spin_inflight_add(r, p, vnet, -1);
            if flit.kind.is_tail() {
                self.routers[r.index()].spin_rx.remove(&(p, vnet));
            }
        } else {
            self.meta.inflight_add(now, r, p, vnet, tvc, -1);
        }
        let occ = self.routers[r.index()].vc(p, vnet, tvc).occupancy();
        if occ > self.cfg.vc_depth as usize {
            self.stats.overflow_events += 1;
        }
    }

    fn eject_flit(&mut self, node: NodeId, flit: Flit) {
        if !flit.kind.is_tail() {
            return;
        }
        let pkt = &flit.packet;
        let now = self.now;
        self.stats.packets_delivered += 1;
        self.stats.flits_delivered += pkt.len as u64;
        let net_lat = now.saturating_sub(pkt.injected_at);
        let tot_lat = now.saturating_sub(pkt.created_at);
        self.stats.network_latency_sum += net_lat;
        self.stats.total_latency_sum += tot_lat;
        self.stats.max_latency = self.stats.max_latency.max(tot_lat);
        self.stats.window_flits_delivered += pkt.len as u64;
        self.stats.window_packets_delivered += 1;
        self.stats.window_network_latency_sum += net_lat;
        self.stats.window_total_latency_sum += tot_lat;
        let spec = PacketSpec { dst: node, len: pkt.len, vnet: pkt.vnet };
        self.traffic.delivered(&spec, pkt.src, now);
    }

    // ------------------------------------------------------------------
    // Stage 2/3: SPIN protocol
    // ------------------------------------------------------------------

    fn process_sms(&mut self) {
        if !self.spin_enabled {
            for ib in &mut self.inbox {
                ib.clear();
            }
            return;
        }
        let now = self.now;
        for i in 0..self.routers.len() {
            if self.inbox[i].is_empty() {
                continue;
            }
            let mut msgs = std::mem::take(&mut self.inbox[i]);
            msgs.sort_by(|a, b| {
                let ka = (a.1.kind.priority_class(), self.priority.priority(a.1.sender, now));
                let kb = (b.1.kind.priority_class(), self.priority.priority(b.1.sender, now));
                kb.cmp(&ka)
            });
            for (port, sm) in msgs {
                let actions = {
                    let view = SpinView { router: &self.routers[i], topo: &self.topo };
                    self.agents[i].on_sm(now, &view, port, sm)
                };
                self.apply_actions(i, actions);
            }
        }
    }

    fn agents_tick(&mut self) {
        if !self.spin_enabled {
            return;
        }
        let now = self.now;
        for i in 0..self.routers.len() {
            // An idle router with an Off FSM has nothing to do; skipping it
            // keeps large lightly-loaded networks cheap.
            if self.routers[i].occupied_vcs == 0
                && self.agents[i].state() == FsmState::Off
            {
                continue;
            }
            let actions = {
                let view = SpinView { router: &self.routers[i], topo: &self.topo };
                self.agents[i].on_cycle(now, &view)
            };
            self.apply_actions(i, actions);
        }
    }

    fn apply_actions(&mut self, i: usize, actions: Vec<Action>) {
        let rid = RouterId(i as u32);
        for a in actions {
            match a {
                Action::SendSm { out_port, sm } => {
                    if !self.topo.port(rid, out_port).is_network() {
                        continue; // SMs never leave through NIC ports.
                    }
                    if sm.sender == rid {
                        if sm.kind == SmKind::Probe && sm.path.is_empty() {
                            self.classify(rid, false);
                        } else if sm.kind == SmKind::Move {
                            self.classify(rid, true);
                        }
                    }
                    self.pending_sms.push((rid, out_port, sm));
                }
                Action::Freeze { in_port, vnet, vc, out_port } => {
                    let router = &mut self.routers[i];
                    let vcb = router.vc_mut(in_port, vnet, vc);
                    vcb.frozen = true;
                    vcb.frozen_out = Some(out_port);
                    router.spin_rx.insert((in_port, vnet), vc);
                }
                Action::UnfreezeAll => {
                    for (p, vn, v) in self.routers[i].vc_coords().collect::<Vec<_>>() {
                        let vcb = self.routers[i].vc_mut(p, vn, v);
                        vcb.frozen = false;
                        vcb.frozen_out = None;
                    }
                }
                Action::StartSpin => {
                    let frozen: Vec<_> = self.agents[i].frozen().to_vec();
                    if self.agents[i].state() == FsmState::ForwardProgress {
                        // Counted once per recovery, at the initiator.
                    }
                    for f in frozen {
                        let vcb = self.routers[i].vc_mut(f.in_port, f.vnet, f.vc);
                        if vcb.head().is_some() {
                            vcb.spinning = true;
                        }
                    }
                }
            }
        }
    }

    /// Classifies an originated probe or confirmed recovery against ground
    /// truth (Fig. 9). `confirmed` distinguishes a move launch (a recovery
    /// that will spin) from a mere probe launch.
    fn classify(&mut self, r: RouterId, confirmed: bool) {
        if !self.cfg.classify_probes {
            return;
        }
        let routers = match &self.classify_cache {
            Some((c, v)) if *c == self.now => v.clone(),
            _ => {
                let v = self.wait_graph().deadlocked_routers();
                self.classify_cache = Some((self.now, v.clone()));
                v
            }
        };
        if routers.binary_search(&r).is_err() {
            if confirmed {
                self.stats.false_positive_spins += 1;
            } else {
                self.stats.false_positive_probes += 1;
            }
        }
    }

    fn resolve_sms(&mut self) {
        if self.pending_sms.is_empty() {
            return;
        }
        let now = self.now;
        let mut pending = std::mem::take(&mut self.pending_sms);
        // Highest (class, sender priority, sender id) wins each (router,
        // port); the rest are dropped — bufferless SM transport.
        pending.sort_by(|a, b| {
            let ka = (
                a.0,
                a.1,
                a.2.kind.priority_class(),
                self.priority.priority(a.2.sender, now),
                a.2.sender.0,
            );
            let kb = (
                b.0,
                b.1,
                b.2.kind.priority_class(),
                self.priority.priority(b.2.sender, now),
                b.2.sender.0,
            );
            ka.cmp(&kb)
        });
        let mut idx = 0;
        while idx < pending.len() {
            let (r, p, _) = (pending[idx].0, pending[idx].1, ());
            // Find the end of this (router, port) group; the last element
            // has the highest priority.
            let mut end = idx;
            while end + 1 < pending.len() && pending[end + 1].0 == r && pending[end + 1].1 == p {
                end += 1;
            }
            let (_, _, sm) = pending[end].clone();
            match sm.kind {
                SmKind::Probe => self.stats.link_use.probe += 1,
                _ => self.stats.link_use.other_sm += 1,
            }
            self.sm_busy.insert((r.0, p.0));
            self.out_links[r.index()][p.index()].send(now, Phit::Sm(sm));
            idx = end + 1;
        }
    }

    // ------------------------------------------------------------------
    // Stage 4: injection
    // ------------------------------------------------------------------

    fn inject(&mut self) {
        let now = self.now;
        for n in 0..self.nics.len() {
            let node = NodeId(n as u32);
            if let Some(spec) = self.traffic.generate(node, now) {
                assert!(
                    spec.vnet.0 < self.cfg.vnets,
                    "traffic source emitted vnet {} but the network has {} vnets                      (configure the source and SimConfig consistently)",
                    spec.vnet.0,
                    self.cfg.vnets
                );
                assert!(
                    spec.len <= self.cfg.max_packet_len,
                    "traffic source emitted a {}-flit packet but max_packet_len is {}",
                    spec.len,
                    self.cfg.max_packet_len
                );
                let mut pkt = PacketBuilder::new(node, spec.dst)
                    .vnet(spec.vnet)
                    .len(spec.len)
                    .injected_at(now)
                    .build(self.next_packet_id);
                self.next_packet_id += 1;
                {
                    let view = NetView {
                        topo: &self.topo,
                        meta: &self.meta,
                        now,
                        vcs: self.cfg.vcs_per_vnet,
                        hidden_vc: hidden_vc(&self.cfg),
                    };
                    self.routing.at_injection(&view, &mut pkt, &mut self.rng);
                }
                self.stats.packets_created += 1;
                self.nics[n].queues[spec.vnet.index()].push_back(pkt);
            }
            // Start streaming a new packet if idle.
            if self.nics[n].active.is_none() {
                if let Some(vn) = self.nics[n].next_vnet() {
                    let at = self.topo.node_attach(node);
                    let vnet = Vnet(vn as u8);
                    let vc = (0..self.cfg.vcs_per_vnet)
                        .map(VcId)
                        .filter(|&v| {
                            !(self.cfg.static_bubble && v.0 == self.cfg.vcs_per_vnet - 1)
                        })
                        .find(|&v| self.meta.allocatable(at.router, at.port, vnet, v));
                    if let Some(vc) = vc {
                        let mut pkt = self.nics[n].queues[vn]
                            .pop_front()
                            .expect("next_vnet returned a non-empty queue");
                        pkt.injected_at = now;
                        self.meta.reserve(now, at.router, at.port, vnet, vc);
                        self.stats.packets_injected += 1;
                        self.nics[n].active =
                            Some(ActiveInjection { packet: pkt, flits_sent: 0, vc });
                    }
                }
            }
            // Stream one flit of the active packet.
            if let Some(mut act) = self.nics[n].active.take() {
                let at = self.topo.node_attach(node);
                if self.cfg.switching == Switching::Wormhole
                    && self
                        .meta
                        .space(at.router, at.port, act.packet.vnet, act.vc, self.cfg.vc_depth)
                        == 0
                {
                    self.nics[n].active = Some(act);
                    continue;
                }
                let flit = make_flit(&act.packet, act.flits_sent);
                let is_tail = flit.kind.is_tail();
                self.inj_links[n].send(
                    now,
                    Phit::Flit { flit, vc: act.vc, spin: false },
                );
                self.meta
                    .inflight_add(now, at.router, at.port, act.packet.vnet, act.vc, 1);
                self.stats.flits_injected += 1;
                act.flits_sent += 1;
                if is_tail {
                    self.meta.release(now, at.router, at.port, act.packet.vnet, act.vc);
                } else {
                    self.nics[n].active = Some(act);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 5: route compute
    // ------------------------------------------------------------------

    fn view(&self) -> NetView<'_> {
        NetView {
            topo: &self.topo,
            meta: &self.meta,
            now: self.now,
            vcs: self.cfg.vcs_per_vnet,
            hidden_vc: if self.cfg.static_bubble {
                Some(VcId(self.cfg.vcs_per_vnet - 1))
            } else {
                None
            },
        }
    }

    fn route_compute(&mut self) {
        let now = self.now;
        let reserved = VcId(self.cfg.vcs_per_vnet - 1);
        for i in 0..self.routers.len() {
            if self.routers[i].occupied_vcs == 0 {
                continue;
            }
            let rid = RouterId(i as u32);
            let coords = self.routers[i].active_coords();
            for (p, vn, v) in coords {
                let vcb = self.routers[i].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                if pb.out.is_some() || vcb.frozen || vcb.spinning || pb.received == 0 {
                    continue;
                }
                // Adaptive re-selection while freshly blocked; the choice
                // freezes after `route_stick_after` cycles so SPIN's probes
                // trace a stable dependence (and genuinely deadlocked
                // packets, which never move again, always end up stable).
                if !pb.choices.is_empty() {
                    let stuck = pb
                        .head_since
                        .map(|t| now.saturating_sub(t) >= self.cfg.route_stick_after)
                        .unwrap_or(false);
                    if stuck {
                        continue;
                    }
                }
                let pkt = pb.packet.clone();
                let view = NetView {
                    topo: &self.topo,
                    meta: &self.meta,
                    now,
                    vcs: self.cfg.vcs_per_vnet,
                    hidden_vc: if self.cfg.static_bubble && v != reserved {
                        Some(reserved)
                    } else {
                        None
                    },
                };
                let choices = if self.cfg.static_bubble && v == reserved {
                    // Recovery packets drain over the acyclic XY escape
                    // route, staying in the reserved VC layer.
                    let mut c = self.escape.route(&view, rid, p, &pkt, &mut self.rng);
                    for choice in &mut c {
                        if self.topo.port(rid, choice.out_port).is_network() {
                            choice.vc_mask = VcMask::only(reserved);
                        }
                    }
                    c
                } else {
                    self.routing.route(&view, rid, p, &pkt, &mut self.rng)
                };
                let pb = self.routers[i]
                    .vc_mut(p, vn, v)
                    .head_mut()
                    .expect("head still present");
                pb.choices = choices;
                if pb.head_since.is_none() {
                    pb.head_since = Some(now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 6: VC allocation (virtual cut-through)
    // ------------------------------------------------------------------

    fn vc_allocate(&mut self) {
        let now = self.now;
        let reserved = VcId(self.cfg.vcs_per_vnet - 1);
        for i in 0..self.routers.len() {
            if self.routers[i].occupied_vcs == 0 {
                continue;
            }
            let rid = RouterId(i as u32);
            let coords = self.routers[i].active_coords();
            for (p, vn, v) in coords {
                let vcb = self.routers[i].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                if pb.out.is_some() || vcb.frozen || vcb.spinning || pb.choices.is_empty() {
                    continue;
                }
                let mut candidates: spin_routing::RouteChoices = pb.choices.clone();
                // Static Bubble: a long-blocked head may use the reserved
                // VC (the recovery grant).
                let mut grant_used = false;
                if self.cfg.static_bubble {
                    if let Some(since) = pb.head_since {
                        if now.saturating_sub(since) >= self.cfg.bubble_timeout {
                            for c in pb.choices.clone() {
                                candidates.push(RouteChoice {
                                    out_port: c.out_port,
                                    vc_mask: VcMask::only(reserved),
                                });
                            }
                            grant_used = true;
                        }
                    }
                }
                let mut alloc: Option<(PortId, VcId)> = None;
                'outer: for c in &candidates {
                    let port = self.topo.port(rid, c.out_port);
                    if port.is_local() {
                        alloc = Some((c.out_port, VcId(0)));
                        break;
                    }
                    let Some(peer) = port.conn else { continue };
                    // Bubble flow control: injections and turns must leave
                    // one VC free at the target port (the bubble).
                    let needs_bubble =
                        self.cfg.bubble_flow_control && self.hop_needs_bubble(rid, p, c.out_port);
                    if needs_bubble {
                        let free = (0..self.cfg.vcs_per_vnet)
                            .filter(|&v| {
                                self.meta.allocatable(peer.router, peer.port, vn, VcId(v))
                            })
                            .count();
                        if free < 2 {
                            continue;
                        }
                    }
                    for tv in 0..self.cfg.vcs_per_vnet {
                        let tv = VcId(tv);
                        if !c.vc_mask.contains(tv) {
                            continue;
                        }
                        if self.meta.allocatable(peer.router, peer.port, vn, tv) {
                            self.meta.reserve(now, peer.router, peer.port, vn, tv);
                            alloc = Some((c.out_port, tv));
                            if grant_used && tv == reserved {
                                self.stats.bubble_grants += 1;
                            }
                            break 'outer;
                        }
                    }
                }
                if let Some(out) = alloc {
                    self.routers[i]
                        .vc_mut(p, vn, v)
                        .head_mut()
                        .expect("head still present")
                        .out = Some(out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 7: switch allocation + traversal
    // ------------------------------------------------------------------

    fn switch_traverse(&mut self) {
        for i in 0..self.routers.len() {
            if self.routers[i].occupied_vcs == 0 {
                continue;
            }
            let rid = RouterId(i as u32);
            let coords = self.routers[i].active_coords();
            // Ejection: stall-free, unbounded bandwidth (paper Sec. II-F).
            for &(p, vn, v) in &coords {
                let vcb = self.routers[i].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                let Some((op, _)) = pb.out else { continue };
                if self.topo.port(rid, op).is_local() && pb.flit_available() {
                    self.send_flit(i, p, vn, v, op, VcId(0), false);
                }
            }
            // Network ports: spins pre-empt, then round-robin SA.
            for op_idx in 0..self.out_links[i].len() {
                let op = PortId(op_idx as u8);
                if !self.topo.port(rid, op).is_network() {
                    continue;
                }
                if self.sm_busy.contains(&(rid.0, op.0)) {
                    continue;
                }
                // Spin streaming gets the link.
                let spin_vc = coords.iter().copied().find(|&(p, vn, v)| {
                    let vcb = self.routers[i].vc(p, vn, v);
                    vcb.spinning
                        && vcb.frozen_out == Some(op)
                        && vcb.head().map(|pb| pb.flit_available()).unwrap_or(false)
                });
                if let Some((p, vn, v)) = spin_vc {
                    self.send_flit(i, p, vn, v, op, VcId(0), true);
                    continue;
                }
                // Round-robin switch allocation.
                let n = coords.len();
                if n == 0 {
                    continue;
                }
                let start = self.routers[i].sa_rr[op_idx] % n;
                let mut winner = None;
                for k in 0..n {
                    let (p, vn, v) = coords[(start + k) % n];
                    let vcb = self.routers[i].vc(p, vn, v);
                    if vcb.frozen || vcb.spinning {
                        continue;
                    }
                    let Some(pb) = vcb.head() else { continue };
                    let Some((pout, tvc)) = pb.out else { continue };
                    if pout != op || !pb.flit_available() {
                        continue;
                    }
                    // Wormhole: per-flit backpressure (VCT pre-reserves a
                    // whole packet's space at allocation, so no check).
                    if self.cfg.switching == Switching::Wormhole {
                        if let Some(peer) = self.topo.port(rid, op).conn {
                            if self.meta.space(peer.router, peer.port, vn, tvc, self.cfg.vc_depth)
                                == 0
                            {
                                continue;
                            }
                        }
                    }
                    winner = Some(((p, vn, v), tvc, (start + k) % n));
                    break;
                }
                if let Some(((p, vn, v), tvc, pos)) = winner {
                    self.routers[i].sa_rr[op_idx] = (pos + 1) % n;
                    self.send_flit(i, p, vn, v, op, tvc, false);
                }
            }
        }
    }

    /// Emits one flit from (router i, in-port p, vnet vn, vc v) through
    /// `out_port` towards downstream VC `tvc` (ignored for spin pushes,
    /// which land in the receiver's earmarked VC).
    #[allow(clippy::too_many_arguments)]
    fn send_flit(
        &mut self,
        i: usize,
        p: PortId,
        vn: Vnet,
        v: VcId,
        out_port: PortId,
        tvc: VcId,
        spin: bool,
    ) {
        let now = self.now;
        let rid = RouterId(i as u32);
        let (flit, is_tail, fully_sent) = {
            let pb = self.routers[i]
                .vc_mut(p, vn, v)
                .head_mut()
                .expect("send_flit requires a head packet");
            let flit = make_flit(&pb.packet, pb.sent);
            pb.sent += 1;
            (flit.clone(), flit.kind.is_tail(), pb.fully_sent())
        };
        let port = self.topo.port(rid, out_port);
        if let Some(peer) = port.conn {
            self.stats.link_use.flit += 1;
            if spin {
                self.meta.spin_inflight_add(peer.router, peer.port, vn, 1);
            } else {
                self.meta.inflight_add(now, peer.router, peer.port, vn, tvc, 1);
                if is_tail {
                    self.meta.release(now, peer.router, peer.port, vn, tvc);
                }
            }
        }
        self.out_links[i][out_port.index()].send(now, Phit::Flit { flit, vc: tvc, spin });
        self.meta.occ_add(now, rid, p, vn, v, -1);
        if fully_sent {
            let router = &mut self.routers[i];
            let vcb = router.vc_mut(p, vn, v);
            vcb.q.pop_front();
            if spin {
                vcb.spinning = false;
                vcb.frozen = false;
                vcb.frozen_out = None;
            }
            if let Some(next) = vcb.head_mut() {
                next.head_since = None;
            }
            if router.vc(p, vn, v).q.is_empty() {
                router.occupied_vcs -= 1;
            }
        }
    }

    /// Bubble flow control: does a hop from `in_port` to `out_port` at
    /// router `r` need to preserve a bubble? Injections and dimension /
    /// direction changes do; continuing straight along a ring does not
    /// (the in-flight packet only rotates its ring's occupancy).
    fn hop_needs_bubble(&self, r: RouterId, in_port: PortId, out_port: PortId) -> bool {
        if self.topo.port(r, in_port).is_local() {
            return true; // injection into the ring
        }
        use spin_topology::TopologyKind;
        match self.topo.kind() {
            TopologyKind::Mesh { .. } | TopologyKind::Torus { .. } => {
                match (self.topo.port_dir(in_port), self.topo.port_dir(out_port)) {
                    // Straight = leaving through the port opposite the one
                    // we entered (same dimension, same direction).
                    (Some(din), Some(dout)) => dout != din.opposite(),
                    _ => true,
                }
            }
            TopologyKind::Ring { .. } => {
                // Ports 1 (cw) and 2 (ccw): straight-through pairs.
                !(in_port.0 == 1 && out_port.0 == 2 || in_port.0 == 2 && out_port.0 == 1)
            }
            _ => true, // conservative on arbitrary graphs
        }
    }

    fn spin_completions(&mut self) {
        if !self.spin_enabled {
            return;
        }
        let now = self.now;
        for i in 0..self.routers.len() {
            if self.agents[i].is_spinning() && !self.routers[i].any_spinning() {
                if self.agents[i].state() == FsmState::ForwardProgress {
                    self.stats.spins += 1;
                }
                let actions = {
                    let view = SpinView { router: &self.routers[i], topo: &self.topo };
                    self.agents[i].notify_spin_complete(now, &view)
                };
                self.apply_actions(i, actions);
            }
        }
    }

    // ------------------------------------------------------------------
    // Ground truth
    // ------------------------------------------------------------------

    /// Builds the AND-OR wait-for graph of the current buffer state (see
    /// [`spin_deadlock::WaitGraph`]).
    pub fn wait_graph(&self) -> WaitGraph {
        let mut g = WaitGraph::new();
        let mut synthetic: u64 = 0;
        // Free capacity at every network input port.
        for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            for p in 0..self.topo.radix(rid) {
                let port = PortId(p as u8);
                if !self.topo.port(rid, port).is_network() {
                    continue;
                }
                for vn in 0..self.cfg.vnets {
                    let vnet = Vnet(vn);
                    let mut free = 0;
                    for v in 0..self.cfg.vcs_per_vnet {
                        let vc = VcId(v);
                        if self.meta.allocatable(rid, port, vnet, vc) {
                            free += 1;
                            continue;
                        }
                        // A VC reserved by an in-flight upstream allocation
                        // holds no packet yet, but the allocated packet is
                        // guaranteed to arrive, drain and free it: model it
                        // as a live occupant so waiters on this port are
                        // not misclassified as deadlocked.
                        let m = self.meta.get(rid, port, vnet, vc);
                        if m.occupancy == 0 && (m.reserved || m.inflight > 0) {
                            synthetic += 1;
                            g.add_packet(
                                spin_types::PacketId(u64::MAX - synthetic),
                                BufferId { router: rid, port, vnet, vc },
                                Vec::new(),
                            );
                        }
                    }
                    if free > 0 {
                        g.add_free_vcs(rid, port, vnet, free);
                    }
                }
            }
        }
        // Blocked packets and their alternative sets.
        let view = self.view();
        for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            for (p, vn, v) in self.routers[r].vc_coords() {
                let vcb = self.routers[r].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                let at = BufferId { router: rid, port: p, vnet: vn, vc: v };
                if pb.out.is_some() {
                    // Allocated: guaranteed to drain (VCT). Record it as a
                    // live occupant so packets waiting on this buffer see
                    // it will free up.
                    g.add_packet(pb.packet.id, at, Vec::new());
                    continue;
                }
                // Non-head residents (transient spin overlap) will drain
                // once the head does; record them as live occupants too.
                for extra in vcb.q.iter().skip(1) {
                    g.add_packet(extra.packet.id, at, Vec::new());
                }
                let stuck = pb
                    .head_since
                    .map(|t| self.now.saturating_sub(t) >= self.cfg.route_stick_after)
                    .unwrap_or(false);
                let alts = if stuck && !pb.choices.is_empty() {
                    // The committed (frozen) choice is the packet's real
                    // dependence once it sticks.
                    pb.choices.clone()
                } else {
                    self.routing.alternatives(&view, rid, p, &pb.packet)
                };
                let mut wants = Vec::new();
                let mut ejecting = false;
                for c in alts {
                    let port = self.topo.port(rid, c.out_port);
                    if port.is_local() {
                        ejecting = true;
                        break;
                    }
                    if let Some(peer) = port.conn {
                        wants.push((peer.router, peer.port, vn));
                    }
                }
                if ejecting {
                    g.add_packet(pb.packet.id, at, Vec::new());
                } else {
                    g.add_packet(pb.packet.id, at, wants);
                }
            }
        }
        g
    }

    /// Debug dump: counts blocked head packets by (has-route, allocated,
    /// free-VCs-at-first-choice) and prints a sample.
    pub fn dump_blocked(&self, limit: usize) {
        let view = self.view();
        let mut printed = 0;
        let (mut no_route, mut allocated, mut blocked_free, mut blocked_full) = (0, 0, 0, 0);
        for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            for (p, vn, v) in self.routers[r].vc_coords() {
                let vcb = self.routers[r].vc(p, vn, v);
                let Some(pb) = vcb.head() else { continue };
                if pb.out.is_some() {
                    allocated += 1;
                    continue;
                }
                let Some(c) = pb.choices.first() else {
                    no_route += 1;
                    continue;
                };
                let free = view.free_vcs_downstream(rid, c.out_port, vn);
                if free > 0 {
                    blocked_free += 1;
                    if printed < limit {
                        printed += 1;
                        println!(
                            "  BLOCKED-WITH-FREE r{r} p{} vn{} vc{} pkt{} -> port {} free={} frozen={} spinning={} recv={}/{} sent={}",
                            p.0, vn.0, v.0, pb.packet.id.0, c.out_port.0, free,
                            vcb.frozen, vcb.spinning, pb.received, pb.packet.len, pb.sent
                        );
                    }
                } else {
                    blocked_full += 1;
                }
            }
        }
        println!(
            "  blocked summary: no_route={no_route} allocated={allocated} blocked_with_free={blocked_free} blocked_full={blocked_full}"
        );
    }

    /// Debug: follows committed dependences from the first blocked network
    /// VC and prints the walk until it closes a cycle or breaks.
    pub fn trace_committed_cycle(&self) {
        // find a blocked network-VC head
        let mut start = None;
        'find: for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            for (p, vn, v) in self.routers[r].vc_coords() {
                if !self.topo.port(rid, p).is_network() {
                    continue;
                }
                let vcb = self.routers[r].vc(p, vn, v);
                if let Some(pb) = vcb.head() {
                    if pb.out.is_none() && !pb.choices.is_empty() {
                        start = Some((rid, p, vn, v));
                        break 'find;
                    }
                }
            }
        }
        let Some(mut cur) = start else {
            println!("  no blocked VC found");
            return;
        };
        let mut seen = std::collections::HashSet::new();
        for step in 0..200 {
            let (rid, p, vn, v) = cur;
            if !seen.insert(cur) {
                println!("  step {step}: cycle closes at r{} p{} vn{} vc{}", rid.0, p.0, vn.0, v.0);
                return;
            }
            let vcb = self.routers[rid.index()].vc(p, vn, v);
            let Some(pb) = vcb.head() else {
                println!("  step {step}: r{} p{} vn{} vc{}: EMPTY, chain breaks", rid.0, p.0, vn.0, v.0);
                return;
            };
            let Some(c) = pb.choices.first() else {
                println!("  step {step}: unrouted head, chain breaks");
                return;
            };
            if pb.out.is_some() {
                println!("  step {step}: allocated head, chain flows");
                return;
            }
            if self.topo.port(rid, c.out_port).is_local() {
                println!("  step {step}: ejecting head, chain flows");
                return;
            }
            let peer = self.topo.neighbor(rid, c.out_port).unwrap();
            println!(
                "  step {step}: r{} p{} vn{} vc{} pkt{} len{} -> out p{} prio {}",
                rid.0, p.0, vn.0, v.0, pb.packet.id.0, pb.packet.len, c.out_port.0,
                self.agents[rid.index()].dynamic_priority(self.now)
            );
            // which VC downstream? with 1 vc per vnet it's vc0; in general
            // follow the first occupied blocked VC.
            let nvcs = self.cfg.vcs_per_vnet;
            let mut next = None;
            for tv in 0..nvcs {
                let nvcb = self.routers[peer.router.index()].vc(peer.port, vn, VcId(tv));
                if nvcb.head().is_some() {
                    next = Some((peer.router, peer.port, vn, VcId(tv)));
                    break;
                }
            }
            match next {
                Some(n) => cur = n,
                None => {
                    println!("  downstream VCs empty: chain flows");
                    return;
                }
            }
        }
        println!("  walk exceeded 200 steps");
    }

    /// Total packets currently buffered in the network (not NIC queues).
    pub fn packets_in_network(&self) -> usize {
        self.routers
            .iter()
            .map(|r| {
                r.in_vcs
                    .iter()
                    .flatten()
                    .flatten()
                    .map(|vc| vc.q.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total packets waiting in NIC injection queues (including one mid
    /// stream, if any).
    pub fn packets_queued(&self) -> usize {
        self.nics
            .iter()
            .map(|n| n.queued() + usize::from(n.active.is_some()))
            .sum()
    }

    /// Flits currently travelling on links (network, injection and
    /// ejection).
    pub fn flits_in_flight(&self) -> usize {
        let net: usize = self.out_links.iter().flatten().map(|l| l.in_flight()).sum();
        let inj: usize = self.inj_links.iter().map(|l| l.in_flight()).sum();
        net + inj
    }

    /// Drains the network: stops offering new traffic is the caller's job
    /// (use a zero-rate source), this just runs until no packets remain in
    /// routers or NICs, or `max_cycles` pass. Returns true if drained.
    pub fn drain(&mut self, max_cycles: Cycle) -> bool {
        let empty = |n: &Network| {
            n.packets_in_network() == 0 && n.packets_queued() == 0 && n.flits_in_flight() == 0
        };
        for _ in 0..max_cycles {
            if empty(self) {
                return true;
            }
            self.step();
        }
        empty(self)
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.topo.name())
            .field("routing", &self.routing.name())
            .field("now", &self.now)
            .field("spin", &self.spin_enabled)
            .finish()
    }
}

fn hidden_vc(cfg: &SimConfig) -> Option<VcId> {
    if cfg.static_bubble {
        Some(VcId(cfg.vcs_per_vnet - 1))
    } else {
        None
    }
}

fn make_flit(pkt: &Packet, seq: u16) -> Flit {
    let kind = match (seq, pkt.len) {
        (0, 1) => FlitKind::HeadTail,
        (0, _) => FlitKind::Head,
        (s, l) if s + 1 == l => FlitKind::Tail,
        _ => FlitKind::Body,
    };
    Flit { packet: pkt.clone(), kind, seq }
}
