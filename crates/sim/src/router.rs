//! Router state: input VC arrays, switch-allocation round-robin pointers,
//! SPIN spin-landing overrides, and the adapter exposing buffer state to the
//! SPIN agent.

use crate::store::PacketStore;
use crate::vc::Vc;
use spin_core::{SpinRouterView, VcStatus};
use spin_topology::Topology;
use spin_types::{PacketId, PortId, RouterId, VcId, Vnet};

#[derive(Debug)]
pub(crate) struct Router {
    pub id: RouterId,
    /// `in_vcs[port][vnet][vc]`.
    pub in_vcs: Vec<Vec<Vec<Vc>>>,
    /// Round-robin switch-allocation pointer per output port.
    pub sa_rr: Vec<usize>,
    /// Landing VC for spin-pushed packets, flat-indexed by
    /// `port * vnets + vnet` (like [`crate::pipeline::meta::MetaTable`]:
    /// no hashing on the per-flit SPIN receive path). Written on freeze,
    /// consumed until the pushed packet's tail arrives.
    spin_rx: Vec<Option<VcId>>,
    /// Vnet count, for `spin_rx` indexing.
    vnets: usize,
    /// Number of VCs currently holding at least one packet (maintained by
    /// the network on packet arrival/departure; lets idle routers skip all
    /// per-cycle work).
    pub occupied_vcs: usize,
}

impl Router {
    pub(crate) fn new(id: RouterId, radix: usize, vnets: u8, vcs: u8) -> Self {
        let in_vcs = (0..radix)
            .map(|_| {
                (0..vnets)
                    .map(|_| (0..vcs).map(|_| Vc::default()).collect())
                    .collect()
            })
            .collect();
        Router {
            id,
            in_vcs,
            sa_rr: vec![0; radix],
            spin_rx: vec![None; radix * vnets as usize],
            vnets: vnets as usize,
            occupied_vcs: 0,
        }
    }

    pub(crate) fn vc(&self, port: PortId, vnet: Vnet, vc: VcId) -> &Vc {
        &self.in_vcs[port.index()][vnet.index()][vc.index()]
    }

    pub(crate) fn vc_mut(&mut self, port: PortId, vnet: Vnet, vc: VcId) -> &mut Vc {
        &mut self.in_vcs[port.index()][vnet.index()][vc.index()]
    }

    /// The earmarked landing VC for spin pushes arriving at (port, vnet).
    pub(crate) fn spin_rx(&self, port: PortId, vnet: Vnet) -> Option<VcId> {
        self.spin_rx[port.index() * self.vnets + vnet.index()]
    }

    /// Earmarks `vc` as the landing VC for spin pushes at (port, vnet).
    pub(crate) fn set_spin_rx(&mut self, port: PortId, vnet: Vnet, vc: VcId) {
        self.spin_rx[port.index() * self.vnets + vnet.index()] = Some(vc);
    }

    /// Clears the earmark (the pushed packet's tail arrived).
    pub(crate) fn clear_spin_rx(&mut self, port: PortId, vnet: Vnet) {
        self.spin_rx[port.index() * self.vnets + vnet.index()] = None;
    }

    /// Fills `out` with the coordinates of VCs currently holding at least
    /// one packet. The hot loops (route compute, VC allocation, switch
    /// traversal) iterate this instead of every VC slot — a large idle
    /// network costs nothing — and pass in the network's scratch buffer so
    /// no stage allocates a fresh coordinate list per router per cycle.
    pub(crate) fn active_coords_into(&self, out: &mut Vec<(PortId, Vnet, VcId)>) {
        out.clear();
        for (p, vns) in self.in_vcs.iter().enumerate() {
            for (vn, vcs) in vns.iter().enumerate() {
                for (i, vc) in vcs.iter().enumerate() {
                    if !vc.q.is_empty() {
                        out.push((PortId(p as u8), Vnet(vn as u8), VcId(i as u8)));
                    }
                }
            }
        }
    }

    /// Iterates (port, vnet, vc) coordinates.
    pub(crate) fn vc_coords(&self) -> impl Iterator<Item = (PortId, Vnet, VcId)> + '_ {
        self.in_vcs.iter().enumerate().flat_map(|(p, vns)| {
            vns.iter().enumerate().flat_map(move |(vn, vcs)| {
                (0..vcs.len()).map(move |v| (PortId(p as u8), Vnet(vn as u8), VcId(v as u8)))
            })
        })
    }

    /// True while any VC is streaming a spin.
    pub(crate) fn any_spinning(&self) -> bool {
        self.in_vcs.iter().flatten().flatten().any(|vc| vc.spinning)
    }
}

/// Read-only adapter giving the SPIN agent the paper's router-visible
/// state. Packet identity is resolved through the packet store (the agent
/// sees [`PacketId`]s, never headers).
pub(crate) struct SpinView<'a> {
    pub router: &'a Router,
    pub topo: &'a Topology,
    pub store: &'a PacketStore,
}

impl SpinRouterView for SpinView<'_> {
    fn num_ports(&self) -> u8 {
        self.router.in_vcs.len() as u8
    }

    fn num_vnets(&self) -> u8 {
        self.router
            .in_vcs
            .first()
            .map(|v| v.len() as u8)
            .unwrap_or(0)
    }

    fn num_vcs(&self, port: PortId, vnet: Vnet) -> u8 {
        self.router.in_vcs[port.index()][vnet.index()].len() as u8
    }

    fn is_network_port(&self, port: PortId) -> bool {
        self.topo.port(self.router.id, port).is_network()
    }

    fn vc_status(&self, port: PortId, vnet: Vnet, vc: VcId) -> VcStatus {
        let vcb = self.router.vc(port, vnet, vc);
        let Some(pb) = vcb.head() else {
            return VcStatus::Empty;
        };
        if let Some(out) = vcb.frozen_out.filter(|_| vcb.frozen) {
            return VcStatus::Waiting(out);
        }
        if pb.out.is_some() {
            // Allocated: the packet is draining, not a dependence.
            return VcStatus::Routing;
        }
        match pb.choices.first() {
            None => VcStatus::Routing,
            Some(c) if self.topo.port(self.router.id, c.out_port).is_local() => VcStatus::Ejecting,
            Some(c) => VcStatus::Waiting(c.out_port),
        }
    }

    fn vc_packet(&self, port: PortId, vnet: Vnet, vc: VcId) -> Option<PacketId> {
        self.router
            .vc(port, vnet, vc)
            .head()
            .map(|pb| self.store.get(pb.handle).id)
    }
}
