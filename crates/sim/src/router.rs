//! Router state: input VC arrays, switch-allocation round-robin pointers,
//! SPIN spin-landing overrides, and the adapter exposing buffer state to the
//! SPIN agent.

use crate::vc::Vc;
use spin_core::{SpinRouterView, VcStatus};
use spin_topology::Topology;
use spin_types::{PacketId, PortId, RouterId, VcId, Vnet};
use std::collections::HashMap;

#[derive(Debug)]
pub(crate) struct Router {
    pub id: RouterId,
    /// `in_vcs[port][vnet][vc]`.
    pub in_vcs: Vec<Vec<Vec<Vc>>>,
    /// Round-robin switch-allocation pointer per output port.
    pub sa_rr: Vec<usize>,
    /// Landing VC for spin-pushed packets, per (input port, vnet). Written
    /// on freeze, consumed until the pushed packet's tail arrives.
    pub spin_rx: HashMap<(PortId, Vnet), VcId>,
    /// Number of VCs currently holding at least one packet (maintained by
    /// the network on packet arrival/departure; lets idle routers skip all
    /// per-cycle work).
    pub occupied_vcs: usize,
}

impl Router {
    pub(crate) fn new(id: RouterId, radix: usize, vnets: u8, vcs: u8) -> Self {
        let in_vcs = (0..radix)
            .map(|_| {
                (0..vnets)
                    .map(|_| (0..vcs).map(|_| Vc::default()).collect())
                    .collect()
            })
            .collect();
        Router {
            id,
            in_vcs,
            sa_rr: vec![0; radix],
            spin_rx: HashMap::new(),
            occupied_vcs: 0,
        }
    }

    pub(crate) fn vc(&self, port: PortId, vnet: Vnet, vc: VcId) -> &Vc {
        &self.in_vcs[port.index()][vnet.index()][vc.index()]
    }

    pub(crate) fn vc_mut(&mut self, port: PortId, vnet: Vnet, vc: VcId) -> &mut Vc {
        &mut self.in_vcs[port.index()][vnet.index()][vc.index()]
    }

    /// Coordinates of VCs currently holding at least one packet. The hot
    /// loops (route compute, VC allocation, switch traversal) iterate this
    /// instead of every VC slot: a large idle network costs nothing.
    pub(crate) fn active_coords(&self) -> Vec<(PortId, Vnet, VcId)> {
        let mut v = Vec::new();
        for (p, vns) in self.in_vcs.iter().enumerate() {
            for (vn, vcs) in vns.iter().enumerate() {
                for (i, vc) in vcs.iter().enumerate() {
                    if !vc.q.is_empty() {
                        v.push((PortId(p as u8), Vnet(vn as u8), VcId(i as u8)));
                    }
                }
            }
        }
        v
    }

    /// Iterates (port, vnet, vc) coordinates.
    pub(crate) fn vc_coords(&self) -> impl Iterator<Item = (PortId, Vnet, VcId)> + '_ {
        self.in_vcs.iter().enumerate().flat_map(|(p, vns)| {
            vns.iter().enumerate().flat_map(move |(vn, vcs)| {
                (0..vcs.len()).map(move |v| (PortId(p as u8), Vnet(vn as u8), VcId(v as u8)))
            })
        })
    }

    /// True while any VC is streaming a spin.
    pub(crate) fn any_spinning(&self) -> bool {
        self.in_vcs.iter().flatten().flatten().any(|vc| vc.spinning)
    }
}

/// Read-only adapter giving the SPIN agent the paper's router-visible
/// state.
pub(crate) struct SpinView<'a> {
    pub router: &'a Router,
    pub topo: &'a Topology,
}

impl SpinRouterView for SpinView<'_> {
    fn num_ports(&self) -> u8 {
        self.router.in_vcs.len() as u8
    }

    fn num_vnets(&self) -> u8 {
        self.router
            .in_vcs
            .first()
            .map(|v| v.len() as u8)
            .unwrap_or(0)
    }

    fn num_vcs(&self, port: PortId, vnet: Vnet) -> u8 {
        self.router.in_vcs[port.index()][vnet.index()].len() as u8
    }

    fn is_network_port(&self, port: PortId) -> bool {
        self.topo.port(self.router.id, port).is_network()
    }

    fn vc_status(&self, port: PortId, vnet: Vnet, vc: VcId) -> VcStatus {
        let vcb = self.router.vc(port, vnet, vc);
        let Some(pb) = vcb.head() else {
            return VcStatus::Empty;
        };
        if let Some(out) = vcb.frozen_out.filter(|_| vcb.frozen) {
            return VcStatus::Waiting(out);
        }
        if pb.out.is_some() {
            // Allocated: the packet is draining, not a dependence.
            return VcStatus::Routing;
        }
        match pb.choices.first() {
            None => VcStatus::Routing,
            Some(c) if self.topo.port(self.router.id, c.out_port).is_local() => VcStatus::Ejecting,
            Some(c) => VcStatus::Waiting(c.out_port),
        }
    }

    fn vc_packet(&self, port: PortId, vnet: Vnet, vc: VcId) -> Option<PacketId> {
        self.router.vc(port, vnet, vc).head().map(|pb| pb.packet.id)
    }
}
