//! Router state: input VC arrays, switch-allocation round-robin pointers,
//! SPIN spin-landing overrides, and the adapter exposing buffer state to the
//! SPIN agent.

use crate::store::PacketStore;
use crate::vc::Vc;
use spin_core::{SpinRouterView, VcStatus};
use spin_topology::Topology;
use spin_types::{PacketId, PortId, RouterId, VcId, Vnet};

#[derive(Debug)]
pub(crate) struct Router {
    pub id: RouterId,
    /// `in_vcs[port][vnet][vc]`.
    pub in_vcs: Vec<Vec<Vec<Vc>>>,
    /// Round-robin switch-allocation pointer per output port.
    pub sa_rr: Vec<usize>,
    /// Landing VC for spin-pushed packets, flat-indexed by
    /// `port * vnets + vnet` (like [`crate::pipeline::meta::MetaTable`]:
    /// no hashing on the per-flit SPIN receive path). Written on freeze,
    /// consumed until the pushed packet's tail arrives.
    spin_rx: Vec<Option<VcId>>,
    /// Vnet count, for `spin_rx` and slot indexing.
    vnets: usize,
    /// VCs per (port, vnet), for slot indexing.
    vcs: usize,
    /// Flat slots `(port * vnets + vnet) * vcs + vc` of VCs currently
    /// holding at least one packet, kept sorted ascending — which is
    /// exactly the dense port-major scan order, so iterating it visits
    /// occupied VCs in the order a full scan would. Maintained at the
    /// three points occupancy transitions (head-flit arrival into an empty
    /// VC, departure of a packet's last flit, fault removal) via
    /// [`Router::note_occupied`] / [`Router::note_emptied`].
    active_slots: Vec<u16>,
}

impl Router {
    pub(crate) fn new(id: RouterId, radix: usize, vnets: u8, vcs: u8) -> Self {
        debug_assert!(
            radix * vnets as usize * vcs as usize <= u16::MAX as usize,
            "flat VC slot index must fit in u16"
        );
        let in_vcs = (0..radix)
            .map(|_| {
                (0..vnets)
                    .map(|_| (0..vcs).map(|_| Vc::default()).collect())
                    .collect()
            })
            .collect();
        Router {
            id,
            in_vcs,
            sa_rr: vec![0; radix],
            spin_rx: vec![None; radix * vnets as usize],
            vnets: vnets as usize,
            vcs: vcs as usize,
            active_slots: Vec::new(),
        }
    }

    pub(crate) fn vc(&self, port: PortId, vnet: Vnet, vc: VcId) -> &Vc {
        &self.in_vcs[port.index()][vnet.index()][vc.index()]
    }

    pub(crate) fn vc_mut(&mut self, port: PortId, vnet: Vnet, vc: VcId) -> &mut Vc {
        &mut self.in_vcs[port.index()][vnet.index()][vc.index()]
    }

    #[inline]
    fn slot(&self, port: PortId, vnet: Vnet, vc: VcId) -> u16 {
        ((port.index() * self.vnets + vnet.index()) * self.vcs + vc.index()) as u16
    }

    #[inline]
    fn decode(&self, slot: u16) -> (PortId, Vnet, VcId) {
        let s = slot as usize;
        let v = s % self.vcs;
        let pv = s / self.vcs;
        (
            PortId((pv / self.vnets) as u8),
            Vnet((pv % self.vnets) as u8),
            VcId(v as u8),
        )
    }

    /// True when no VC holds a packet (the router can skip every per-cycle
    /// stage).
    #[inline]
    pub(crate) fn is_idle(&self) -> bool {
        self.active_slots.is_empty()
    }

    /// Records that the VC at (port, vnet, vc) went empty → occupied.
    /// Idempotent (membership is checked), so callers may mark defensively.
    pub(crate) fn note_occupied(&mut self, port: PortId, vnet: Vnet, vc: VcId) {
        let s = self.slot(port, vnet, vc);
        if let Err(i) = self.active_slots.binary_search(&s) {
            self.active_slots.insert(i, s);
        }
    }

    /// Records that the VC at (port, vnet, vc) went occupied → empty.
    pub(crate) fn note_emptied(&mut self, port: PortId, vnet: Vnet, vc: VcId) {
        debug_assert!(self.vc(port, vnet, vc).q.is_empty());
        let s = self.slot(port, vnet, vc);
        if let Ok(i) = self.active_slots.binary_search(&s) {
            self.active_slots.remove(i);
        }
    }

    /// Coordinates of VCs currently holding at least one packet, in the
    /// dense (port, vnet, vc) scan order.
    pub(crate) fn occupied_slots(&self) -> impl Iterator<Item = (PortId, Vnet, VcId)> + '_ {
        self.active_slots.iter().map(|&s| self.decode(s))
    }

    /// Appends the coordinates of VCs currently holding at least one packet
    /// (dense scan order). The per-cycle coordinate cache
    /// ([`crate::Network::build_coord_cache`]) concatenates these so the
    /// hot loops (route compute, VC allocation, switch traversal) share one
    /// walk instead of re-deriving the list per router per stage.
    pub(crate) fn append_coords(&self, out: &mut Vec<(PortId, Vnet, VcId)>) {
        out.extend(self.occupied_slots());
    }

    /// Iterates (port, vnet, vc) coordinates.
    pub(crate) fn vc_coords(&self) -> impl Iterator<Item = (PortId, Vnet, VcId)> + '_ {
        self.in_vcs.iter().enumerate().flat_map(|(p, vns)| {
            vns.iter().enumerate().flat_map(move |(vn, vcs)| {
                (0..vcs.len()).map(move |v| (PortId(p as u8), Vnet(vn as u8), VcId(v as u8)))
            })
        })
    }

    /// True while any VC is streaming a spin. Deliberately a full scan, not
    /// an `active_slots` walk: the `spinning` flag lives on the VC, and
    /// this stays correct even if a spinning VC's queue were drained by a
    /// path that leaves the flag set.
    pub(crate) fn any_spinning(&self) -> bool {
        self.in_vcs.iter().flatten().flatten().any(|vc| vc.spinning)
    }

    /// Recomputes the occupied-slot list from the VC queues — the ground
    /// truth `active_slots` must mirror. Debug/verification use only.
    pub(crate) fn scan_occupied_slots(&self) -> Vec<u16> {
        let mut slots = Vec::new();
        for (p, vns) in self.in_vcs.iter().enumerate() {
            for (vn, vcs) in vns.iter().enumerate() {
                for (v, vc) in vcs.iter().enumerate() {
                    if !vc.q.is_empty() {
                        slots.push(self.slot(PortId(p as u8), Vnet(vn as u8), VcId(v as u8)));
                    }
                }
            }
        }
        slots
    }

    /// The maintained occupied-slot list (debug/verification use).
    pub(crate) fn active_slot_list(&self) -> &[u16] {
        &self.active_slots
    }

    /// The earmarked landing VC for spin pushes arriving at (port, vnet).
    pub(crate) fn spin_rx(&self, port: PortId, vnet: Vnet) -> Option<VcId> {
        self.spin_rx[port.index() * self.vnets + vnet.index()]
    }

    /// Earmarks `vc` as the landing VC for spin pushes at (port, vnet).
    pub(crate) fn set_spin_rx(&mut self, port: PortId, vnet: Vnet, vc: VcId) {
        self.spin_rx[port.index() * self.vnets + vnet.index()] = Some(vc);
    }

    /// Clears the earmark (the pushed packet's tail arrived).
    pub(crate) fn clear_spin_rx(&mut self, port: PortId, vnet: Vnet) {
        self.spin_rx[port.index() * self.vnets + vnet.index()] = None;
    }
}

/// Read-only adapter giving the SPIN agent the paper's router-visible
/// state. Packet identity is resolved through the packet store (the agent
/// sees [`PacketId`]s, never headers).
pub(crate) struct SpinView<'a> {
    pub router: &'a Router,
    pub topo: &'a Topology,
    pub store: &'a PacketStore,
}

impl SpinRouterView for SpinView<'_> {
    fn num_ports(&self) -> u8 {
        self.router.in_vcs.len() as u8
    }

    fn num_vnets(&self) -> u8 {
        self.router
            .in_vcs
            .first()
            .map(|v| v.len() as u8)
            .unwrap_or(0)
    }

    fn num_vcs(&self, port: PortId, vnet: Vnet) -> u8 {
        self.router.in_vcs[port.index()][vnet.index()].len() as u8
    }

    fn is_network_port(&self, port: PortId) -> bool {
        self.topo.port(self.router.id, port).is_network()
    }

    fn vc_status(&self, port: PortId, vnet: Vnet, vc: VcId) -> VcStatus {
        let vcb = self.router.vc(port, vnet, vc);
        let Some(pb) = vcb.head() else {
            return VcStatus::Empty;
        };
        if let Some(out) = vcb.frozen_out.filter(|_| vcb.frozen) {
            return VcStatus::Waiting(out);
        }
        if pb.out.is_some() {
            // Allocated: the packet is draining, not a dependence.
            return VcStatus::Routing;
        }
        match pb.choices.first() {
            None => VcStatus::Routing,
            Some(c) if self.topo.port(self.router.id, c.out_port).is_local() => VcStatus::Ejecting,
            Some(c) => VcStatus::Waiting(c.out_port),
        }
    }

    fn vc_packet(&self, port: PortId, vnet: Vnet, vc: VcId) -> Option<PacketId> {
        self.router
            .vc(port, vnet, vc)
            .head()
            .map(|pb| self.store.get(pb.handle).id)
    }

    fn for_each_occupied(&self, f: &mut dyn FnMut(PortId, Vnet, VcId)) {
        for (p, vn, v) in self.router.occupied_slots() {
            f(p, vn, v);
        }
    }
}
