//! Online fabric-manager admission hook: every runtime link kill/heal is
//! submitted to an installed [`FabricAdmission`] implementation *before*
//! it goes live, and rejected changes are quarantined (a kill stays up, a
//! heal stays down) with the previous routing tables retained.
//!
//! The trait lives in the sim crate so the simulator does not depend on
//! the verify crate; the production implementation — `FabricManager`,
//! which re-derives the channel dependency graph incrementally and issues
//! SPIN-certified verdicts — lives in `spin-verify` (see `docs/FABRIC.md`).
//! The sim side only knows three things: ask for a verdict, count the
//! decision, and consult the manager's [`StaticModel`] view so the live
//! wait-graph is cross-checked against the *admitted* CDG.

use crate::static_model::StaticModel;
use spin_trace::FabricVerdict;
use spin_types::{Cycle, PortId, RouterId};

/// What the fabric manager decided about one kill/heal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionDecision {
    /// The verdict the re-certification produced.
    pub verdict: FabricVerdict,
    /// Destinations whose CDG contribution was re-walked for this event —
    /// the deterministic "reconfiguration downtime" measure (a full
    /// re-derivation re-walks every destination).
    pub targets_rewalked: u64,
}

impl AdmissionDecision {
    /// True when the change may go live.
    pub fn admitted(&self) -> bool {
        self.verdict.admits()
    }
}

/// Which way a fabric event changed the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricAction {
    /// A link kill was submitted.
    Kill,
    /// A link heal was submitted.
    Heal,
}

impl FabricAction {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FabricAction::Kill => "kill",
            FabricAction::Heal => "heal",
        }
    }
}

/// One admission event as recorded by the manager, for post-run reporting
/// (`fabric_campaign` serializes these into `results/fabric_campaign.json`).
/// Wall-clock analysis time lives only here — never in [`crate::NetStats`],
/// which must stay bit-deterministic across shard/thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricEventReport {
    /// Cycle the event was submitted at.
    pub at: Cycle,
    /// Kill or heal.
    pub action: FabricAction,
    /// Local endpoint router of the changed link.
    pub router: RouterId,
    /// Local endpoint port of the changed link.
    pub port: PortId,
    /// Whether the change went live.
    pub admitted: bool,
    /// The verdict behind the decision.
    pub verdict: FabricVerdict,
    /// Destinations re-walked by the incremental derivation.
    pub targets_rewalked: u64,
    /// Total destinations in the config (the full-re-derivation cost).
    pub total_targets: u64,
    /// Rings enumerated in the re-certified CDG (0 when acyclic).
    pub rings: u64,
    /// Largest certified per-ring spin bound (0 when acyclic).
    pub max_spin_bound: u64,
    /// Wall-clock nanoseconds the online analysis took for this event.
    pub analysis_ns: u64,
}

/// The admission check the `faults` pipeline stage consults before a
/// kill/heal goes live. Implementations mirror the live topology: they
/// must apply admitted changes to their own copy and roll back rejected
/// ones, so their CDG always describes the fabric the simulator actually
/// runs.
pub trait FabricAdmission: std::fmt::Debug + Send {
    /// Re-certifies the fabric with the link at (`router`, `port`) killed.
    /// On an admitting verdict the manager keeps the degraded config; on a
    /// rejecting one it must roll back to the previous config.
    fn admit_kill(&mut self, now: Cycle, router: RouterId, port: PortId) -> AdmissionDecision;

    /// Re-certifies the fabric with the link at (`router`, `port`) healed.
    /// Rollback semantics mirror [`FabricAdmission::admit_kill`].
    fn admit_heal(&mut self, now: Cycle, router: RouterId, port: PortId) -> AdmissionDecision;

    /// The static-model view of everything admitted so far: the union of
    /// all admitted CDGs, so a live deadlock spanning epochs still maps
    /// onto channels some admitted CDG certified.
    fn model(&self) -> &dyn StaticModel;

    /// Every decision made so far, in submission order.
    fn events(&self) -> &[FabricEventReport];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_admits_follow_verdict() {
        let d = AdmissionDecision {
            verdict: FabricVerdict::DeadlockFree,
            targets_rewalked: 3,
        };
        assert!(d.admitted());
        let q = AdmissionDecision {
            verdict: FabricVerdict::UncertifiedTruncated,
            targets_rewalked: 64,
        };
        assert!(!q.admitted());
    }

    #[test]
    fn action_names_are_stable() {
        assert_eq!(FabricAction::Kill.name(), "kill");
        assert_eq!(FabricAction::Heal.name(), "heal");
    }
}
