//! Simulator unit tests: delivery, conservation, determinism, deadlock
//! formation without SPIN and recovery with it, and baseline freedom.

use crate::{Network, NetworkBuilder, SimConfig};
use spin_core::SpinConfig;
use spin_routing::{EscapeVc, FavorsMinimal, ReservedVcAdaptive, Ugal, WestFirst, XyRouting};
use spin_topology::Topology;
use spin_traffic::{PacketSpec, Pattern, SyntheticConfig, SyntheticTraffic, TrafficSource};
use spin_types::{Cycle, NodeId, Vnet};

/// Emits exactly one packet at cycle 1 from node `src` to `dst`.
#[derive(Debug)]
struct OneShot {
    src: NodeId,
    dst: NodeId,
    len: u16,
    fired: bool,
}

impl TrafficSource for OneShot {
    fn generate(&mut self, node: NodeId, now: Cycle) -> Option<PacketSpec> {
        if !self.fired && node == self.src && now >= 1 {
            self.fired = true;
            Some(PacketSpec {
                dst: self.dst,
                len: self.len,
                vnet: Vnet(0),
            })
        } else {
            None
        }
    }
    fn offered_load(&self) -> f64 {
        0.0
    }
}

/// Delegates to an inner source until `cutoff`, then goes silent (for
/// conservation tests that drain the network).
#[derive(Debug)]
struct Cutoff<T> {
    inner: T,
    cutoff: Cycle,
}

impl<T: TrafficSource> TrafficSource for Cutoff<T> {
    fn generate(&mut self, node: NodeId, now: Cycle) -> Option<PacketSpec> {
        if now > self.cutoff {
            None
        } else {
            self.inner.generate(node, now)
        }
    }
    fn delivered(&mut self, spec: &PacketSpec, src: NodeId, now: Cycle) {
        self.inner.delivered(spec, src, now);
    }
    fn offered_load(&self) -> f64 {
        self.inner.offered_load()
    }
}

fn mesh_net(vcs: u8, vnets: u8, rate: f64, pattern: Pattern, spin: bool, seed: u64) -> Network {
    let topo = Topology::mesh(4, 4);
    let mut tc = SyntheticConfig::new(pattern, rate);
    tc.vnets = vnets;
    if vnets == 1 {
        tc.data_fraction = 0.0; // single-flit packets on one vnet
    }
    let traffic = SyntheticTraffic::new(tc, &topo, seed);
    let mut b = NetworkBuilder::new(topo)
        .config(SimConfig {
            vcs_per_vnet: vcs,
            vnets,
            seed,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic);
    if spin {
        b = b.spin(SpinConfig {
            t_dd: 64,
            ..SpinConfig::default()
        });
    }
    b.build()
}

#[test]
fn one_packet_crosses_the_mesh() {
    let topo = Topology::mesh(4, 4);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 1,
            ..SimConfig::default()
        })
        .routing(XyRouting)
        .traffic(OneShot {
            src: NodeId(0),
            dst: NodeId(15),
            len: 5,
            fired: false,
        })
        .build();
    net.run(100);
    let s = net.stats();
    assert_eq!(s.packets_created, 1);
    assert_eq!(s.packets_delivered, 1);
    assert_eq!(s.flits_delivered, 5);
    // 6 network hops at 2 cycles each + injection/ejection links + packet
    // serialization: latency must be at least the hop distance and well
    // under congestion levels.
    let lat = s.avg_total_latency();
    assert!(lat >= 12.0, "latency {lat} below physical minimum");
    assert!(lat <= 30.0, "latency {lat} absurd for an idle mesh");
}

#[test]
fn light_load_everything_delivered() {
    let topo = Topology::mesh(4, 4);
    let tc = SyntheticConfig::new(Pattern::UniformRandom, 0.05);
    let traffic = Cutoff {
        inner: SyntheticTraffic::new(tc, &topo, 3),
        cutoff: 3000,
    };
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vcs_per_vnet: 2,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .build();
    net.run(3000);
    assert!(net.drain(4000), "network failed to drain after cutoff");
    let s = net.stats();
    assert!(s.packets_created > 100);
    assert_eq!(
        s.packets_created, s.packets_delivered,
        "conservation violated: {} created vs {} delivered",
        s.packets_created, s.packets_delivered
    );
    assert_eq!(s.overflow_events, 0);
    assert_eq!(s.spin_orphans, 0);
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut net = mesh_net(1, 1, 0.2, Pattern::UniformRandom, true, 42);
        net.run(2000);
        let s = net.stats();
        (
            s.packets_delivered,
            s.flits_delivered,
            s.window_network_latency_sum,
            s.spins,
        )
    };
    assert_eq!(run(), run());
}

/// Finds a seed whose SPIN-less run truly deadlocks (deadlock formation is
/// seed-sensitive at a given operating point).
fn deadlocking_seed() -> (u64, u64) {
    for seed in 1..16 {
        let mut net = mesh_net(1, 1, 0.6, Pattern::UniformRandom, false, seed);
        if let Some(at) = net.run_until_deadlock(10_000, 50) {
            return (seed, at);
        }
    }
    panic!("no seed deadlocked: unrestricted 1-VC adaptive routing should deadlock");
}

#[test]
fn adaptive_one_vc_without_spin_deadlocks() {
    // The premise of Fig. 3: unrestricted adaptive routing with few VCs
    // deadlocks at high load (for some fraction of seeds).
    let (_seed, at) = deadlocking_seed();
    assert!(at > 0);
}

#[test]
fn spin_recovers_and_keeps_delivering() {
    // Same adversarial setup, SPIN on: the network must keep making
    // progress far past the point the SPIN-less network deadlocks.
    let (seed, dead_at) = deadlocking_seed();
    let mut net = mesh_net(1, 1, 0.6, Pattern::UniformRandom, true, seed);
    net.run((dead_at * 4).max(4000));
    let s = net.stats();
    assert!(
        s.spins > 0,
        "no spins despite operation past the deadlock point"
    );
    assert_eq!(s.spin_orphans, 0, "spin flits lost their landing VC");
    assert_eq!(s.overflow_events, 0, "buffer overflow during spins");
    // Delivery must continue in the latter half of the run.
    let before = s.packets_delivered;
    net.run(2000);
    let after = net.stats().packets_delivered;
    assert!(
        after > before,
        "delivery stalled after recovery ({before} -> {after})"
    );
}

#[test]
fn spin_run_has_no_permanent_deadlock() {
    // With SPIN on, any true deadlock must dissolve: sample ground truth
    // periodically; progress must resume within a recovery period.
    let mut net = mesh_net(1, 1, 0.5, Pattern::Transpose, true, 11);
    let mut observed_deadlock = false;
    for _ in 0..20 {
        net.run(500);
        if net.wait_graph().has_deadlock() {
            observed_deadlock = true;
            let before = net.stats().packets_delivered;
            net.run(2500);
            let after = net.stats().packets_delivered;
            assert!(after > before, "deadlock was never resolved by SPIN");
        }
    }
    // The point of the test is vacuous if no deadlock ever formed.
    assert!(
        observed_deadlock || net.stats().spins == 0,
        "spins happened but ground truth never saw a deadlock"
    );
}

#[test]
fn west_first_never_deadlocks() {
    let topo = Topology::mesh(4, 4);
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.8);
    tc.vnets = 1;
    tc.data_fraction = 0.0;
    let traffic = SyntheticTraffic::new(tc, &topo, 5);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 1,
            ..SimConfig::default()
        })
        .routing(WestFirst)
        .traffic(traffic)
        .build();
    assert!(
        net.run_until_deadlock(15_000, 100).is_none(),
        "Dally baseline deadlocked"
    );
    assert!(net.stats().packets_delivered > 1000);
}

#[test]
fn escape_vc_never_deadlocks() {
    let topo = Topology::mesh(4, 4);
    let mut tc = SyntheticConfig::new(Pattern::Transpose, 0.8);
    tc.vnets = 1;
    tc.data_fraction = 0.0;
    let traffic = SyntheticTraffic::new(tc, &topo, 5);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 2,
            ..SimConfig::default()
        })
        .routing(EscapeVc)
        .traffic(traffic)
        .build();
    assert!(
        net.run_until_deadlock(15_000, 100).is_none(),
        "Duato baseline deadlocked"
    );
    assert!(net.stats().packets_delivered > 500);
}

#[test]
fn static_bubble_recovers_via_reserved_vc() {
    let topo = Topology::mesh(4, 4);
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.7);
    tc.vnets = 1;
    tc.data_fraction = 0.0;
    let traffic = SyntheticTraffic::new(tc, &topo, 9);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 2,
            static_bubble: true,
            bubble_timeout: 64,
            ..SimConfig::default()
        })
        .routing(ReservedVcAdaptive::new(2))
        .traffic(traffic)
        .build();
    net.run(15_000);
    let s = net.stats();
    assert!(s.packets_delivered > 1000, "static bubble starved");
    assert!(
        s.bubble_grants > 0,
        "recovery path never exercised at high load"
    );
    // Long-run progress check.
    let before = s.packets_delivered;
    net.run(3000);
    assert!(net.stats().packets_delivered > before);
}

#[test]
fn ugal_dragonfly_delivers() {
    let topo = Topology::dragonfly(2, 4, 2, 9);
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.1);
    tc.vnets = 3;
    let traffic = SyntheticTraffic::new(tc, &topo, 13);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 3,
            ..SimConfig::default()
        })
        .routing(Ugal::dally_baseline())
        .traffic(traffic)
        .build();
    net.run(5000);
    let s = net.stats();
    assert!(s.packets_delivered > 500, "dragonfly UGAL starved");
    assert!(
        net.run_until_deadlock(5000, 200).is_none(),
        "UGAL Dally baseline deadlocked"
    );
}

#[test]
fn spin_works_on_irregular_topology() {
    // SPIN's headline capability: deadlock-free fully adaptive routing on
    // an arbitrary graph with one VC.
    let topo = Topology::random_connected(12, 8, 1, 21).unwrap();
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.4);
    tc.vnets = 1;
    tc.data_fraction = 0.0;
    let traffic = SyntheticTraffic::new(tc, &topo, 17);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 1,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig {
            t_dd: 64,
            ..SpinConfig::default()
        })
        .build();
    net.run(20_000);
    let s = net.stats();
    assert!(s.packets_delivered > 1000, "irregular network starved");
    let before = s.packets_delivered;
    net.run(2000);
    assert!(
        net.stats().packets_delivered > before,
        "irregular network wedged"
    );
}

#[test]
fn link_utilization_accounting_consistent() {
    let mut net = mesh_net(1, 1, 0.4, Pattern::UniformRandom, true, 23);
    net.run(5000);
    let s = net.stats();
    let u = s.link_use;
    assert!(u.total > 0);
    assert!(u.flit + u.probe + u.other_sm <= u.total);
    assert!(u.flit_fraction() > 0.0);
    let sum = u.flit_fraction() + u.probe_fraction() + u.other_sm_fraction() + u.idle_fraction();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn latency_increases_with_load() {
    let lat_at = |rate: f64| {
        let mut net = mesh_net(2, 1, rate, Pattern::UniformRandom, true, 31);
        net.run(1000);
        net.reset_measurement();
        net.run(4000);
        net.stats().avg_total_latency()
    };
    let low = lat_at(0.02);
    let high = lat_at(0.35);
    assert!(low > 0.0);
    assert!(
        high > low,
        "latency did not grow with load: {low} at 0.02 vs {high} at 0.35"
    );
}

#[test]
fn throughput_tracks_offered_load_below_saturation() {
    let mut net = mesh_net(2, 1, 0.1, Pattern::UniformRandom, true, 37);
    net.run(2000);
    net.reset_measurement();
    net.run(8000);
    let thr = net.stats().throughput(16);
    assert!(
        (thr - 0.1).abs() < 0.02,
        "accepted throughput {thr} far from offered 0.1"
    );
}

#[test]
fn probe_classification_counts_false_positives() {
    // With a small t_dd, congestion (not deadlock) triggers probes that the
    // ground-truth detector vetoes.
    let topo = Topology::mesh(4, 4);
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.45);
    tc.vnets = 1;
    tc.data_fraction = 0.0;
    let traffic = SyntheticTraffic::new(tc, &topo, 41);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 2,
            classify_probes: true,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig {
            t_dd: 16,
            ..SpinConfig::default()
        })
        .build();
    net.run(10_000);
    let s = net.stats();
    assert!(
        s.probes_sent > 0,
        "no probes at a congested operating point"
    );
    assert!(
        s.false_positive_probes <= s.probes_sent,
        "false positives exceed probes"
    );
}

#[test]
fn multi_vnet_traffic_isolated() {
    // 3 vnets with mixed packet sizes: everything still delivered, data
    // packets only on the response vnet (by construction of the source).
    let mut net = mesh_net(1, 3, 0.15, Pattern::UniformRandom, true, 43);
    net.run(8000);
    let s = net.stats();
    assert!(s.packets_delivered > 500);
    assert!(
        s.flits_delivered > s.packets_delivered,
        "no data packets seen"
    );
}

#[test]
fn torus_dor_one_vc_deadlocks_without_bubble() {
    // The classic motivation for bubble flow control: dimension rings on a
    // torus deadlock under DOR with one VC.
    let mut any = false;
    for seed in 1..8 {
        let topo = Topology::torus(4, 4);
        let mut tc = SyntheticConfig::single_flit(Pattern::UniformRandom, 0.5);
        tc.vnets = 1;
        let traffic = SyntheticTraffic::new(tc, &topo, seed);
        let mut net = NetworkBuilder::new(topo)
            .config(SimConfig {
                vnets: 1,
                vcs_per_vnet: 1,
                ..SimConfig::default()
            })
            .routing(XyRouting)
            .traffic(traffic)
            .build();
        if net.run_until_deadlock(8_000, 50).is_some() {
            any = true;
            break;
        }
    }
    assert!(any, "torus DOR with 1 VC never deadlocked across seeds");
}

#[test]
fn bubble_flow_control_keeps_torus_deadlock_free() {
    let topo = Topology::torus(4, 4);
    let mut tc = SyntheticConfig::single_flit(Pattern::UniformRandom, 0.6);
    tc.vnets = 1;
    let traffic = SyntheticTraffic::new(tc, &topo, 3);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 2,
            bubble_flow_control: true,
            ..SimConfig::default()
        })
        .routing(XyRouting)
        .traffic(traffic)
        .build();
    assert!(
        net.run_until_deadlock(15_000, 100).is_none(),
        "bubble flow control failed to keep the torus deadlock-free"
    );
    assert!(
        net.stats().packets_delivered > 1_000,
        "bubble FC starved the torus"
    );
}

#[test]
fn up_down_routing_is_deadlock_free_on_irregular_graph() {
    use spin_routing::UpDown;
    let topo = Topology::random_connected(12, 8, 1, 77).unwrap();
    let ud = UpDown::new(&topo);
    let mut tc = SyntheticConfig::single_flit(Pattern::UniformRandom, 0.5);
    tc.vnets = 1;
    let traffic = SyntheticTraffic::new(tc, &topo, 5);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 1,
            ..SimConfig::default()
        })
        .routing(ud)
        .traffic(traffic)
        .build();
    assert!(
        net.run_until_deadlock(10_000, 100).is_none(),
        "up*/down* deadlocked on an irregular graph"
    );
    assert!(net.stats().packets_delivered > 500);
}

#[test]
fn spin_survives_link_failures() {
    // The paper's resiliency motivation: break mesh links and keep routing
    // fully adaptively with SPIN.
    let mesh = Topology::mesh(4, 4);
    use spin_types::PortId;
    let degraded = mesh
        .with_failed_links(&[
            (spin_types::RouterId(5), PortId(1)),
            (spin_types::RouterId(10), PortId(2)),
        ])
        .expect("degraded mesh stays connected");
    let mut tc = SyntheticConfig::single_flit(Pattern::UniformRandom, 0.2);
    tc.vnets = 1;
    let traffic = SyntheticTraffic::new(tc, &degraded, 9);
    let mut net = NetworkBuilder::new(degraded)
        .config(SimConfig {
            vnets: 1,
            vcs_per_vnet: 1,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig {
            t_dd: 64,
            ..SpinConfig::default()
        })
        .build();
    let mut last = 0;
    for _ in 0..5 {
        net.run(3_000);
        let d = net.stats().packets_delivered;
        assert!(d > last, "degraded mesh wedged");
        last = d;
    }
    assert_eq!(net.stats().spin_orphans, 0);
}

#[test]
fn concentrated_mesh_runs() {
    let topo = Topology::cmesh(3, 3, 2).unwrap();
    assert_eq!(topo.num_nodes(), 18);
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.05);
    tc.vnets = 3;
    let traffic = SyntheticTraffic::new(tc, &topo, 1);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vcs_per_vnet: 1,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .build();
    net.run(5_000);
    assert!(net.stats().packets_delivered > 200);
}

#[test]
fn wormhole_switching_delivers_with_shallow_buffers() {
    use crate::Switching;
    let topo = Topology::mesh(4, 4);
    let tc = SyntheticConfig::new(Pattern::UniformRandom, 0.1);
    let traffic = Cutoff {
        inner: SyntheticTraffic::new(tc, &topo, 5),
        cutoff: 4000,
    };
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vcs_per_vnet: 2,
            vc_depth: 2, // shallower than the 5-flit data packets
            switching: Switching::Wormhole,
            ..SimConfig::default()
        })
        .routing(XyRouting)
        .traffic(traffic)
        .build();
    net.run(4_000);
    assert!(net.drain(8_000), "wormhole network failed to drain");
    let s = net.stats();
    assert_eq!(
        s.packets_created, s.packets_delivered,
        "wormhole lost packets"
    );
    assert!(s.packets_delivered > 300);
    // Shallow buffers must never overflow despite 5-flit packets.
    assert_eq!(s.overflow_events, 0);
}

#[test]
#[should_panic(expected = "SPIN requires virtual cut-through")]
fn wormhole_with_spin_rejected() {
    use crate::Switching;
    let topo = Topology::mesh(2, 2);
    let tc = SyntheticConfig::new(Pattern::UniformRandom, 0.1);
    let traffic = SyntheticTraffic::new(tc, &topo, 1);
    let _ = NetworkBuilder::new(topo)
        .config(SimConfig {
            switching: Switching::Wormhole,
            vc_depth: 2,
            ..SimConfig::default()
        })
        .routing(XyRouting)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .build();
}

#[test]
fn wormhole_latency_reflects_serialization() {
    use crate::Switching;
    // A single 5-flit packet through shallow wormhole buffers takes longer
    // than through VCT buffers sized for the whole packet.
    let run = |switching: Switching, depth: u16| {
        let topo = Topology::mesh(4, 4);
        let mut net = NetworkBuilder::new(topo)
            .config(SimConfig {
                vnets: 1,
                vcs_per_vnet: 1,
                vc_depth: depth,
                switching,
                ..SimConfig::default()
            })
            .routing(XyRouting)
            .traffic(OneShot {
                src: NodeId(0),
                dst: NodeId(15),
                len: 5,
                fired: false,
            })
            .build();
        net.run(200);
        assert_eq!(net.stats().packets_delivered, 1);
        net.stats().avg_total_latency()
    };
    let vct = run(Switching::VirtualCutThrough, 5);
    let worm1 = run(Switching::Wormhole, 1);
    assert!(
        worm1 >= vct,
        "1-deep wormhole ({worm1}) cannot be faster than VCT ({vct})"
    );
}

// ---- runtime fault injection ------------------------------------------

/// A faulted mesh under sustained load with a traffic cutoff, so the
/// network can drain and packet conservation can be checked exactly.
fn faulted_mesh(plan: crate::FaultPlan, spin: bool, seed: u64) -> Network {
    let topo = Topology::mesh(4, 4);
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.2);
    tc.vnets = 1;
    tc.data_fraction = 0.0;
    let traffic = Cutoff {
        inner: SyntheticTraffic::new(tc, &topo, seed),
        cutoff: 2_000,
    };
    let mut b = NetworkBuilder::new(topo)
        .config(SimConfig {
            vcs_per_vnet: 2,
            vnets: 1,
            seed,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .faults(plan);
    if spin {
        b = b.spin(SpinConfig {
            t_dd: 64,
            ..Default::default()
        });
    }
    b.build()
}

#[test]
fn empty_fault_plan_is_bit_identical() {
    // The fault stage must cost nothing observable when nothing is
    // scheduled: a run with an explicitly installed empty plan matches a
    // run without one, stat for stat.
    let mut plain = mesh_net(2, 1, 0.3, Pattern::UniformRandom, true, 99);
    let mut faulted = {
        let topo = Topology::mesh(4, 4);
        let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.3);
        tc.vnets = 1;
        tc.data_fraction = 0.0;
        NetworkBuilder::new(topo.clone())
            .config(SimConfig {
                vcs_per_vnet: 2,
                vnets: 1,
                seed: 99,
                ..SimConfig::default()
            })
            .routing(FavorsMinimal)
            .traffic(SyntheticTraffic::new(tc, &topo, 99))
            .spin(SpinConfig {
                t_dd: 64,
                ..Default::default()
            })
            .faults(crate::FaultPlan::new())
            .build()
    };
    plain.run(3_000);
    faulted.run(3_000);
    assert_eq!(plain.stats(), faulted.stats());
}

#[test]
fn mid_run_kill_conserves_every_packet() {
    // A link dies under load; every packet is either delivered or
    // explicitly dropped-by-fault — no silent loss, no wedge.
    for spin in [false, true] {
        let plan =
            crate::FaultPlan::new().kill(700, spin_types::RouterId(5), spin_types::PortId(1));
        let mut net = faulted_mesh(plan, spin, 17);
        net.run(2_000);
        assert!(
            net.drain(20_000),
            "faulted network failed to drain (spin={spin})"
        );
        let s = net.stats();
        assert_eq!(s.links_killed, 1);
        assert_eq!(s.link_kills_rejected, 0);
        assert!(s.packets_delivered > 100, "barely any traffic ran");
        assert_eq!(
            s.packets_created,
            s.packets_delivered + s.packets_dropped_by_fault,
            "packet conservation violated (spin={spin})"
        );
    }
}

#[test]
fn kill_then_heal_restores_service_and_conserves() {
    let plan = crate::FaultPlan::new()
        .kill(500, spin_types::RouterId(5), spin_types::PortId(1))
        .heal(1_200, spin_types::RouterId(5), spin_types::PortId(1));
    let mut net = faulted_mesh(plan, true, 23);
    net.run(2_000);
    assert!(net.drain(20_000), "healed network failed to drain");
    let s = net.stats();
    assert_eq!(s.links_killed, 1);
    assert_eq!(s.links_healed, 1);
    assert_eq!(
        s.packets_created,
        s.packets_delivered + s.packets_dropped_by_fault
    );
    // The healed link carries traffic again: utilisation accounting stayed
    // consistent (total accrues per live link per cycle).
    assert!(
        s.link_use.flit + s.link_use.probe + s.link_use.other_sm <= s.link_use.total,
        "link accounting corrupted across kill/heal"
    );
}

#[test]
fn disconnecting_kill_is_rejected_and_harmless() {
    // Pre-failing one 2x2-mesh link leaves a 4-router path, so router 0's
    // one remaining network link is a bridge: killing it would partition
    // the network and must be rejected (with a witness) rather than
    // applied, leaving traffic unharmed. The schedule also kills the
    // already-dead port, which is rejected as not-a-network-port.
    let topo = Topology::mesh(2, 2)
        .with_failed_links(&[(spin_types::RouterId(0), spin_types::PortId(2))])
        .expect("2x2 mesh minus one link stays connected");
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.2);
    tc.vnets = 1;
    tc.data_fraction = 0.0;
    let traffic = Cutoff {
        inner: SyntheticTraffic::new(tc, &topo, 3),
        cutoff: 1_000,
    };
    // Ports of router 0: 2 (E) is pre-failed; of 1 (N) and 3 (S) exactly
    // one is the bridge to the rest — schedule kills on all three.
    let plan = crate::FaultPlan::new()
        .kill(100, spin_types::RouterId(0), spin_types::PortId(1))
        .kill(150, spin_types::RouterId(0), spin_types::PortId(2))
        .kill(200, spin_types::RouterId(0), spin_types::PortId(3));
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vcs_per_vnet: 2,
            vnets: 1,
            seed: 3,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .faults(plan)
        .build();
    net.run(1_000);
    assert!(net.drain(5_000));
    let s = net.stats();
    assert_eq!(s.links_killed, 0);
    assert_eq!(s.link_kills_rejected, 3);
    assert_eq!(s.packets_dropped_by_fault, 0);
    assert_eq!(s.packets_created, s.packets_delivered);
}

#[test]
fn dead_link_invisible_to_ground_truth_checker() {
    // After a kill the wait graph must neither fabricate a deadlock out of
    // phantom capacity at the dead ports nor wedge: the run keeps
    // delivering and the checker stays quiet.
    let plan = crate::FaultPlan::new().kill(600, spin_types::RouterId(9), spin_types::PortId(2));
    let mut net = faulted_mesh(plan, true, 41);
    net.run(700); // fault applied; traffic still flowing
    let mut last = net.stats().packets_delivered;
    for _ in 0..6 {
        net.run(300);
        let d = net.stats().packets_delivered;
        if net.wait_graph().has_deadlock() {
            // SPIN may be mid-recovery; a *permanent* deadlock is the bug.
            net.run(2_000);
            assert!(
                !net.wait_graph().has_deadlock(),
                "permanent deadlock after link kill"
            );
        }
        assert!(d >= last, "delivery went backwards");
        last = d;
    }
    assert!(net.drain(20_000), "faulted spin mesh failed to drain");
}

#[test]
fn random_kill_plan_runs_on_dragonfly() {
    // Dragonfly + UGAL with seed-driven kills: the schedule is derived
    // from the topology's own link set and every run conserves packets.
    let topo = Topology::dragonfly(2, 4, 2, 9);
    let plan = crate::FaultPlan::random_kills(&topo, 2, (400, 800), None, 5);
    let mut tc = SyntheticConfig::new(Pattern::UniformRandom, 0.1);
    tc.vnets = 1;
    tc.data_fraction = 0.0;
    let traffic = Cutoff {
        inner: SyntheticTraffic::new(tc, &topo, 7),
        cutoff: 1_500,
    };
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig {
            vcs_per_vnet: 3,
            vnets: 1,
            seed: 7,
            ..SimConfig::default()
        })
        .routing(Ugal::with_spin())
        .traffic(traffic)
        .spin(SpinConfig {
            t_dd: 64,
            ..Default::default()
        })
        .faults(plan)
        .build();
    net.run(1_500);
    assert!(net.drain(30_000), "faulted dragonfly failed to drain");
    let s = net.stats();
    assert!(s.links_killed + s.link_kills_rejected == 2);
    assert_eq!(
        s.packets_created,
        s.packets_delivered + s.packets_dropped_by_fault
    );
}
