//! Network interface controllers: unbounded injection queues, one
//! flit/cycle injection bandwidth, stall-free ejection.

use spin_types::{NodeId, PacketHandle, VcId, Vnet};
use std::collections::VecDeque;

/// A packet currently streaming from the NIC into its router's local input
/// port. Holds the store handle plus the immutable header fields the
/// per-cycle streaming loop needs (`len`, `vnet`), so streaming never
/// touches the store.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActiveInjection {
    pub handle: PacketHandle,
    pub len: u16,
    pub vnet: Vnet,
    pub flits_sent: u16,
    pub vc: VcId,
}

#[derive(Debug)]
pub(crate) struct Nic {
    /// The attached terminal (kept for debugging dumps).
    #[allow(dead_code)]
    pub node: NodeId,
    /// Per-vnet unbounded injection queues of packet-store handles (the
    /// headers live in the [`crate::store::PacketStore`]).
    pub queues: Vec<VecDeque<PacketHandle>>,
    /// Round-robin pointer over vnets.
    pub rr: usize,
    pub active: Option<ActiveInjection>,
}

impl Nic {
    pub(crate) fn new(node: NodeId, vnets: u8) -> Self {
        Nic {
            node,
            queues: (0..vnets).map(|_| VecDeque::new()).collect(),
            rr: 0,
            active: None,
        }
    }

    /// Total queued packets across vnets.
    pub(crate) fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Picks the next non-empty vnet queue round-robin.
    pub(crate) fn next_vnet(&mut self) -> Option<usize> {
        let n = self.queues.len();
        for i in 0..n {
            let vn = (self.rr + i) % n;
            if !self.queues[vn].is_empty() {
                self.rr = (vn + 1) % n;
                return Some(vn);
            }
        }
        None
    }
}
