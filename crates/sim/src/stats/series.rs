//! Time-series metrics: a bounded ring of fixed-length *epochs*, each
//! accumulating injection/ejection rates, a log2 latency histogram, per-link
//! flit counts and an end-of-epoch per-VC occupancy snapshot.
//!
//! End-of-run aggregates ([`NetStats`](crate::NetStats)) answer "how did the
//! run go on average"; the epoch ring answers "what happened *when*" — the
//! transient of a deadlock forming, the throughput collapse before a spin,
//! the drain afterwards. Experiments enable it via
//! [`SimConfig::metrics`](crate::SimConfig) and read the epochs back with
//! [`Network::metrics`](crate::Network::metrics).
//!
//! The ring is bounded ([`EpochConfig::max_epochs`]): a long steady-state
//! run keeps only the most recent window instead of growing without limit,
//! which is what makes it safe to leave enabled on multi-million-cycle
//! sweeps.

use spin_types::{Cycle, PortId, RouterId};

/// Number of log2 latency buckets: bucket `i` counts packets whose total
/// latency `l` satisfies `floor(log2(l)) == i` (bucket 0 holds `l <= 1`,
/// the last bucket holds everything `>= 2^(LATENCY_BUCKETS-1)`).
pub const LATENCY_BUCKETS: usize = 16;

/// Configuration of the epoch ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Epoch length in cycles (the sampling period of every series).
    pub epoch_len: Cycle,
    /// Maximum retained epochs; older epochs are evicted FIFO.
    pub max_epochs: usize,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            epoch_len: 100,
            max_epochs: 1024,
        }
    }
}

/// One closed epoch of the time series: counters accumulated over
/// `[start, end)` plus a per-VC occupancy snapshot taken at `end`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Epoch {
    /// First cycle of the epoch.
    pub start: Cycle,
    /// One past the last cycle of the epoch.
    pub end: Cycle,
    /// Flits that left NIC queues onto injection links.
    pub flits_injected: u64,
    /// Flits ejected at destination NICs.
    pub flits_delivered: u64,
    /// Packets that started injection.
    pub packets_injected: u64,
    /// Packets fully ejected.
    pub packets_delivered: u64,
    /// log2-bucketed total-latency histogram of packets delivered this
    /// epoch (see [`LATENCY_BUCKETS`]).
    pub latency_hist: [u64; LATENCY_BUCKETS],
    /// Link-cycles used by special messages this epoch (all classes).
    pub sm_link_cycles: u64,
    /// Flits sent per directed link, indexed by the ring's flat
    /// (router, port) index (see [`MetricsRing::link_index`]).
    pub link_flits: Vec<u32>,
    /// Per-VC buffered-flit occupancy sampled at the epoch boundary, in
    /// the simulator's flat (router, port, vnet, vc) order.
    pub vc_occupancy: Vec<u16>,
}

impl Epoch {
    /// Total packets binned into the latency histogram.
    pub fn hist_count(&self) -> u64 {
        self.latency_hist.iter().sum()
    }
}

/// The log2 bucket of a latency value.
pub fn latency_bucket(latency: u64) -> usize {
    ((u64::BITS - latency.leading_zeros()).saturating_sub(1) as usize).min(LATENCY_BUCKETS - 1)
}

/// The bounded epoch ring accumulating the live epoch and retaining closed
/// ones FIFO.
#[derive(Debug, Clone)]
pub struct MetricsRing {
    cfg: EpochConfig,
    /// Flat link-index base per router (prefix sums of radixes).
    port_base: Vec<usize>,
    num_links: usize,
    epochs: Vec<Epoch>,
    cur: Epoch,
    evicted: u64,
}

impl MetricsRing {
    /// Creates a ring for routers with the given `radixes` (ports per
    /// router, topology order).
    pub fn new(cfg: EpochConfig, radixes: &[usize]) -> Self {
        let mut port_base = Vec::with_capacity(radixes.len());
        let mut off = 0usize;
        for &r in radixes {
            port_base.push(off);
            off += r;
        }
        let cfg = EpochConfig {
            epoch_len: cfg.epoch_len.max(1),
            max_epochs: cfg.max_epochs.max(1),
        };
        MetricsRing {
            cur: Epoch {
                start: 0,
                end: 0,
                link_flits: vec![0; off],
                ..Epoch::default()
            },
            cfg,
            port_base,
            num_links: off,
            epochs: Vec::new(),
            evicted: 0,
        }
    }

    /// The ring configuration.
    pub fn config(&self) -> EpochConfig {
        self.cfg
    }

    /// Closed epochs, oldest first (bounded by
    /// [`EpochConfig::max_epochs`]).
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Number of closed epochs evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Flat index of directed link (router, out-port) into
    /// [`Epoch::link_flits`].
    pub fn link_index(&self, r: RouterId, p: PortId) -> usize {
        self.port_base[r.index()] + p.index()
    }

    /// True when `now` sits on an epoch boundary and the live epoch should
    /// be closed (call [`MetricsRing::rollover`] with the occupancy
    /// snapshot).
    pub fn epoch_due(&self, now: Cycle) -> bool {
        now >= self.cur.start + self.cfg.epoch_len
    }

    /// Closes every epoch due at `now` — each at its *fixed* boundary
    /// `start + epoch_len` — attaching the per-VC `occupancy` snapshot,
    /// and starts a fresh live epoch. Evicts the oldest closed epochs
    /// beyond `max_epochs`.
    ///
    /// When `now` has advanced across several epoch lengths since the last
    /// call (a quiescent span the caller skipped), the intermediate epochs
    /// are emitted as fixed-length *zero* epochs rather than stretching one
    /// epoch over the whole span: the accumulated counters belong to the
    /// first closed epoch (the only one whose cycles were actually
    /// stepped), and nothing moved during the skipped cycles, so the single
    /// occupancy snapshot is exact for every boundary in the span. This
    /// keeps per-epoch *rates* (flits per epoch, etc.) comparable across
    /// idle and busy regions of a run.
    pub fn rollover(&mut self, now: Cycle, occupancy: Vec<u16>) {
        while self.epoch_due(now) {
            let boundary = self.cur.start + self.cfg.epoch_len;
            let mut closed = std::mem::replace(
                &mut self.cur,
                Epoch {
                    start: boundary,
                    end: boundary,
                    link_flits: vec![0; self.num_links],
                    ..Epoch::default()
                },
            );
            closed.end = boundary;
            closed.vc_occupancy = occupancy.clone();
            self.epochs.push(closed);
        }
        if self.epochs.len() > self.cfg.max_epochs {
            let excess = self.epochs.len() - self.cfg.max_epochs;
            self.epochs.drain(..excess);
            self.evicted += excess as u64;
        }
    }

    /// Records an injected flit.
    #[inline]
    pub fn on_flit_injected(&mut self) {
        self.cur.flits_injected += 1;
    }

    /// Records a packet starting injection.
    #[inline]
    pub fn on_packet_injected(&mut self) {
        self.cur.packets_injected += 1;
    }

    /// Records a delivered packet (`flits` ejected, total latency
    /// histogram-binned).
    #[inline]
    pub fn on_packet_delivered(&mut self, flits: u64, total_latency: u64) {
        self.cur.packets_delivered += 1;
        self.cur.flits_delivered += flits;
        self.cur.latency_hist[latency_bucket(total_latency)] += 1;
    }

    /// Records a flit crossing the directed network link (router,
    /// out-port).
    #[inline]
    pub fn on_link_flit(&mut self, r: RouterId, p: PortId) {
        let i = self.link_index(r, p);
        self.cur.link_flits[i] += 1;
    }

    /// Records a link-cycle used by a special message.
    #[inline]
    pub fn on_sm_link(&mut self) {
        self.cur.sm_link_cycles += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1023), 9);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn epochs_accumulate_and_close() {
        let mut m = MetricsRing::new(
            EpochConfig {
                epoch_len: 10,
                max_epochs: 8,
            },
            &[3, 3],
        );
        m.on_packet_injected();
        m.on_flit_injected();
        m.on_link_flit(RouterId(1), PortId(2));
        m.on_packet_delivered(5, 40);
        assert!(!m.epoch_due(9));
        assert!(m.epoch_due(10));
        m.rollover(10, vec![1, 0, 2]);
        let e = &m.epochs()[0];
        assert_eq!((e.start, e.end), (0, 10));
        assert_eq!(e.packets_injected, 1);
        assert_eq!(e.flits_delivered, 5);
        assert_eq!(e.latency_hist[latency_bucket(40)], 1);
        assert_eq!(e.hist_count(), 1);
        assert_eq!(e.link_flits[m.link_index(RouterId(1), PortId(2))], 1);
        assert_eq!(e.vc_occupancy, vec![1, 0, 2]);
        // The fresh live epoch starts cleared.
        m.on_flit_injected();
        m.rollover(20, Vec::new());
        assert_eq!(m.epochs()[1].flits_injected, 1);
        assert_eq!(m.epochs()[1].packets_injected, 0);
    }

    #[test]
    fn quiescent_window_yields_fixed_length_zero_epochs() {
        // A burst of activity, then a long idle window the stepper skipped:
        // the ring must emit one busy epoch followed by fixed-length zero
        // epochs — not a single stretched epoch and not a dropped window.
        let mut m = MetricsRing::new(
            EpochConfig {
                epoch_len: 10,
                max_epochs: 16,
            },
            &[2],
        );
        m.on_packet_injected();
        m.on_flit_injected();
        m.on_link_flit(RouterId(0), PortId(1));
        // The caller wakes up 4 epoch-lengths later with the network idle.
        m.rollover(45, vec![3, 0]);
        let es = m.epochs();
        assert_eq!(es.len(), 4, "one busy epoch + three quiescent epochs");
        // Every epoch has the exact configured length.
        for (i, e) in es.iter().enumerate() {
            assert_eq!(
                (e.start, e.end),
                (10 * i as u64, 10 * (i as u64 + 1)),
                "epoch {i} is not a fixed-length boundary epoch"
            );
            assert_eq!(e.vc_occupancy, vec![3, 0]);
        }
        // Counters land in the first epoch (the only stepped one)...
        assert_eq!(es[0].packets_injected, 1);
        assert_eq!(es[0].flits_injected, 1);
        assert_eq!(es[0].link_flits, vec![0, 1]);
        // ...and the quiescent epochs report zeros.
        for e in &es[1..] {
            assert_eq!(e.packets_injected, 0);
            assert_eq!(e.flits_injected, 0);
            assert_eq!(e.hist_count(), 0);
            assert_eq!(e.sm_link_cycles, 0);
            assert!(e.link_flits.iter().all(|&f| f == 0));
        }
        // The live epoch resumes at the last boundary, not at `now`.
        m.on_flit_injected();
        m.rollover(50, Vec::new());
        assert_eq!(m.epochs()[4].start, 40);
        assert_eq!(m.epochs()[4].flits_injected, 1);
    }

    #[test]
    fn ring_is_bounded_fifo() {
        let mut m = MetricsRing::new(
            EpochConfig {
                epoch_len: 1,
                max_epochs: 3,
            },
            &[2],
        );
        for t in 1..=5u64 {
            m.rollover(t, Vec::new());
        }
        assert_eq!(m.epochs().len(), 3);
        assert_eq!(m.evicted(), 2);
        // Oldest retained epoch is [2, 3).
        assert_eq!(m.epochs()[0].start, 2);
        assert_eq!(m.epochs()[2].end, 5);
    }
}
