//! Simulation statistics: latency, throughput, link utilisation, SPIN
//! protocol activity, and the epoch-ring time-series of `series`.

pub(crate) mod series;

use spin_types::Cycle;

/// Network-link usage accounting (Fig. 8b): every directed network link
/// contributes one slot per cycle, used by a flit, a special message, or
/// idle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkUse {
    /// Link-cycles carrying data flits.
    pub flit: u64,
    /// Link-cycles carrying probe SMs.
    pub probe: u64,
    /// Link-cycles carrying move / probe_move / kill_move SMs.
    pub other_sm: u64,
    /// Total link-cycles observed (links x cycles).
    pub total: u64,
}

impl LinkUse {
    /// Fraction of link-cycles carrying flits.
    pub fn flit_fraction(&self) -> f64 {
        ratio(self.flit, self.total)
    }
    /// Fraction carrying probes.
    pub fn probe_fraction(&self) -> f64 {
        ratio(self.probe, self.total)
    }
    /// Fraction carrying other SMs.
    pub fn other_sm_fraction(&self) -> f64 {
        ratio(self.other_sm, self.total)
    }
    /// Idle fraction.
    ///
    /// Accounting invariant: every used link-cycle is also an observed one,
    /// so `flit + probe + other_sm <= total` must hold — checked here in
    /// debug builds. The clamp to zero remains only to absorb f64 rounding
    /// of three subtractions, never to hide broken accounting.
    pub fn idle_fraction(&self) -> f64 {
        debug_assert!(
            self.flit + self.probe + self.other_sm <= self.total,
            "LinkUse accounting violated: flit {} + probe {} + other_sm {} > total {}",
            self.flit,
            self.probe,
            self.other_sm,
            self.total
        );
        (1.0 - self.flit_fraction() - self.probe_fraction() - self.other_sm_fraction()).max(0.0)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Aggregate statistics of one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Packets created by the traffic source.
    pub packets_created: u64,
    /// Packets whose head entered the network.
    pub packets_injected: u64,
    /// Packets fully ejected.
    pub packets_delivered: u64,
    /// Flits ejected.
    pub flits_delivered: u64,
    /// Flits injected.
    pub flits_injected: u64,
    /// Sum over delivered packets of (eject - inject) cycles.
    pub network_latency_sum: u64,
    /// Sum over delivered packets of (eject - create) cycles, including
    /// source queueing.
    pub total_latency_sum: u64,
    /// Largest observed packet latency.
    pub max_latency: u64,
    /// Link usage accounting.
    pub link_use: LinkUse,
    /// Probes launched.
    pub probes_sent: u64,
    /// Probes classified (against the ground-truth detector) as launched
    /// with no real deadlock present. Only counted when probe
    /// classification is enabled.
    pub false_positive_probes: u64,
    /// Recoveries (confirmed loops) started while the ground-truth detector
    /// saw no deadlock at the initiator — the paper's Fig. 9 "false
    /// positives". Only counted when probe classification is enabled.
    pub false_positive_spins: u64,
    /// Spins executed (counted once per initiating router).
    pub spins: u64,
    /// Loops confirmed (moves sent).
    pub loops_confirmed: u64,
    /// Kill_moves sent.
    pub kills_sent: u64,
    /// Probe_moves sent.
    pub probe_moves_sent: u64,
    /// Spin flits that arrived without a landing override (expected 0).
    pub spin_orphans: u64,
    /// VC occupancy observed above configured depth (expected 0).
    pub overflow_events: u64,
    /// Static Bubble recovery grants issued.
    pub bubble_grants: u64,
    /// Runtime link kills applied (each takes down both directions).
    pub links_killed: u64,
    /// Runtime link heals applied.
    pub links_healed: u64,
    /// Scheduled kills rejected because they would disconnect the network
    /// (or named a port that is not a live network port).
    pub link_kills_rejected: u64,
    /// Packets removed because they were physically astride a killed link
    /// (flits on the dead wire or split across its endpoints).
    pub packets_dropped_by_fault: u64,
    /// Flits belonging to fault-dropped packets.
    pub flits_dropped_by_fault: u64,
    /// Packets that had claimed a killed link without sending a flit yet:
    /// torn off and re-routed instead of dropped.
    pub packets_rerouted_by_fault: u64,
    /// Special messages lost on a killed link (the SPIN FSM recovers from
    /// lost SMs through its deadline timeouts, so these are tolerated).
    pub sms_dropped_by_fault: u64,
    /// Kill/heal events the fabric manager re-certified and admitted.
    pub reroutes_admitted: u64,
    /// Kill/heal events the fabric manager rejected: the link was
    /// quarantined and the previous routing tables retained.
    pub reroutes_quarantined: u64,
    /// Destinations re-walked by the fabric manager's incremental CDG
    /// derivation, summed over all events — the deterministic
    /// reconfiguration-downtime measure (wall-clock analysis time lives in
    /// the manager's per-event log, never here: `NetStats` is compared
    /// bit-for-bit across shard and thread counts).
    pub fabric_targets_rewalked: u64,
    /// Measurement-window bookkeeping.
    pub window_start: Cycle,
    /// Flits delivered since the window started.
    pub window_flits_delivered: u64,
    /// Packets delivered since the window started.
    pub window_packets_delivered: u64,
    /// Network-latency sum within the window.
    pub window_network_latency_sum: u64,
    /// Total-latency sum within the window.
    pub window_total_latency_sum: u64,
}

impl NetStats {
    /// Average end-to-end packet latency (create to eject) in cycles, over
    /// the measurement window.
    pub fn avg_total_latency(&self) -> f64 {
        ratio(self.window_total_latency_sum, self.window_packets_delivered)
    }

    /// Average in-network packet latency (inject to eject) in cycles, over
    /// the measurement window.
    pub fn avg_network_latency(&self) -> f64 {
        ratio(
            self.window_network_latency_sum,
            self.window_packets_delivered,
        )
    }

    /// Accepted throughput in flits/node/cycle over the measurement window.
    pub fn throughput(&self, num_nodes: usize) -> f64 {
        let window = self.cycles.saturating_sub(self.window_start);
        if window == 0 || num_nodes == 0 {
            return 0.0;
        }
        self.window_flits_delivered as f64 / (window as f64 * num_nodes as f64)
    }

    /// Starts a fresh measurement window at `now` (call after warmup).
    pub fn reset_window(&mut self, now: Cycle) {
        self.window_start = now;
        self.window_flits_delivered = 0;
        self.window_packets_delivered = 0;
        self.window_network_latency_sum = 0;
        self.window_total_latency_sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_use_fractions_sum_to_one() {
        let u = LinkUse {
            flit: 30,
            probe: 5,
            other_sm: 5,
            total: 100,
        };
        let sum =
            u.flit_fraction() + u.probe_fraction() + u.other_sm_fraction() + u.idle_fraction();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((u.flit_fraction() - 0.3).abs() < 1e-9);
        assert!((u.idle_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn idle_fraction_accepts_exactly_full_links() {
        let u = LinkUse {
            flit: 90,
            probe: 6,
            other_sm: 4,
            total: 100,
        };
        assert!(u.idle_fraction().abs() < 1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "LinkUse accounting violated")]
    fn idle_fraction_rejects_overspent_links() {
        // Used link-cycles exceeding observed ones is an accounting bug the
        // clamp used to silently hide; the debug assert must expose it.
        let u = LinkUse {
            flit: 80,
            probe: 20,
            other_sm: 10,
            total: 100,
        };
        let _ = u.idle_fraction();
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = NetStats::default();
        assert_eq!(s.avg_total_latency(), 0.0);
        assert_eq!(s.avg_network_latency(), 0.0);
        assert_eq!(s.throughput(64), 0.0);
        assert_eq!(LinkUse::default().idle_fraction(), 1.0);
    }

    #[test]
    fn window_reset_clears_counters() {
        let mut s = NetStats {
            cycles: 100,
            window_flits_delivered: 50,
            window_packets_delivered: 10,
            window_network_latency_sum: 400,
            window_total_latency_sum: 500,
            ..Default::default()
        };
        assert_eq!(s.avg_total_latency(), 50.0);
        s.reset_window(100);
        assert_eq!(s.window_start, 100);
        assert_eq!(s.window_flits_delivered, 0);
        s.cycles = 200;
        s.window_flits_delivered = 64;
        assert!((s.throughput(64) - 0.01).abs() < 1e-12);
    }
}
