//! Simulation configuration and the network builder.

use crate::fabric::FabricAdmission;
use crate::faults::FaultPlan;
use crate::network::Network;
use crate::static_model::StaticModel;
use crate::stats::series::EpochConfig;
use spin_core::SpinConfig;
use spin_routing::Routing;
use spin_topology::Topology;
use spin_trace::TraceSink;
use spin_traffic::TrafficSource;
use spin_types::Cycle;

/// Switching discipline of the routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Switching {
    /// Virtual cut-through: a VC is allocated only when it can hold the
    /// whole packet (the paper's implementation; required for SPIN, whose
    /// spins stream entire packets between frozen VCs).
    #[default]
    VirtualCutThrough,
    /// Wormhole: VCs may be shallower than a packet; flits advance on
    /// per-flit buffer space. The paper notes a wormhole SPIN "is also
    /// possible with some additional complexity" — deadlocked wormhole
    /// packets span several routers, so spinning them needs multi-router
    /// flit coordination we do not implement; SPIN therefore requires
    /// virtual cut-through here, and wormhole serves the avoidance
    /// baselines.
    Wormhole,
}

/// Static parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Virtual networks (message classes). The paper runs a directory
    /// protocol with 3.
    pub vnets: u8,
    /// VCs per input port per vnet.
    pub vcs_per_vnet: u8,
    /// VC buffer depth in flits; must hold a whole packet under virtual
    /// cut-through.
    pub vc_depth: u16,
    /// Switching discipline.
    pub switching: Switching,
    /// Longest packet the traffic will inject, in flits.
    pub max_packet_len: u16,
    /// Enable the Static-Bubble-style recovery baseline: the highest VC is
    /// reserved and granted to a head packet blocked longer than
    /// `bubble_timeout`; packets inside the reserved VC drain over a
    /// deterministic acyclic escape route.
    pub static_bubble: bool,
    /// Blocked time before a Static Bubble grant.
    pub bubble_timeout: Cycle,
    /// Localized bubble flow control (the paper's "flow control" theory
    /// row): injection, and any hop that changes dimension on a mesh/torus,
    /// may only allocate a downstream VC if at least one *other* VC at that
    /// (port, vnet) stays free — the "bubble" that keeps each ring live.
    /// Requires `vcs_per_vnet >= 2` to be useful.
    pub bubble_flow_control: bool,
    /// A blocked head packet re-evaluates its adaptive route every cycle
    /// until it has been blocked this long; after that the choice freezes
    /// so SPIN's probes trace a stable dependence. Must be well below
    /// `t_dd`.
    pub route_stick_after: Cycle,
    /// Master seed for all simulator randomness.
    pub seed: u64,
    /// Classify every originated probe against the ground-truth deadlock
    /// detector (Fig. 9 false positives). Costs one wait-graph construction
    /// per probe-launch cycle.
    pub classify_probes: bool,
    /// Print debug reports ([`Network::dump_blocked`],
    /// [`Network::trace_committed_cycle`]) to stdout. Off by default so
    /// library users — and the parallel sweep runner, whose workers share
    /// stdout — never get interleaved diagnostic output; the reports are
    /// always *returned* as strings regardless.
    ///
    /// [`Network::dump_blocked`]: crate::Network::dump_blocked
    /// [`Network::trace_committed_cycle`]: crate::Network::trace_committed_cycle
    pub verbose: bool,
    /// Enable the time-series metrics epoch ring (per-VC occupancy,
    /// per-link utilisation, injection/ejection rates, latency histogram);
    /// read it back with [`Network::metrics`](crate::Network::metrics).
    /// `None` (the default) records nothing and costs nothing.
    pub metrics: Option<EpochConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            vc_depth: 5,
            switching: Switching::default(),
            max_packet_len: 5,
            static_bubble: false,
            bubble_timeout: 128,
            bubble_flow_control: false,
            route_stick_after: 32,
            seed: 1,
            classify_probes: false,
            verbose: false,
            metrics: None,
        }
    }
}

impl SimConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `vc_depth < max_packet_len`
    /// (virtual cut-through requires a packet to fit in one VC).
    pub fn validate(&self) {
        assert!(self.vnets >= 1, "need at least one vnet");
        assert!(self.vcs_per_vnet >= 1, "need at least one VC per vnet");
        match self.switching {
            Switching::VirtualCutThrough => assert!(
                self.vc_depth >= self.max_packet_len,
                "virtual cut-through requires vc_depth ({}) >= max_packet_len ({})",
                self.vc_depth,
                self.max_packet_len
            ),
            Switching::Wormhole => assert!(self.vc_depth >= 1, "need at least one flit slot"),
        }
        if self.static_bubble {
            assert!(
                self.vcs_per_vnet >= 2,
                "static bubble reserves one VC and needs another for normal traffic"
            );
        }
    }
}

/// Builder assembling a [`Network`] from topology, routing, traffic and
/// optional SPIN / recovery configuration ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
pub struct NetworkBuilder {
    pub(crate) topo: Topology,
    pub(crate) cfg: SimConfig,
    pub(crate) routing: Option<Box<dyn Routing>>,
    pub(crate) traffic: Option<Box<dyn TrafficSource>>,
    pub(crate) spin: Option<SpinConfig>,
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    pub(crate) faults: FaultPlan,
    pub(crate) static_model: Option<Box<dyn StaticModel>>,
    pub(crate) fabric: Option<Box<dyn FabricAdmission>>,
    pub(crate) dense_step: Option<bool>,
    pub(crate) shards: Option<usize>,
    pub(crate) partitioner: Option<Box<dyn crate::shard::Partitioner>>,
}

impl NetworkBuilder {
    /// Starts a builder over `topo` with default configuration.
    pub fn new(topo: Topology) -> Self {
        NetworkBuilder {
            topo,
            cfg: SimConfig::default(),
            routing: None,
            traffic: None,
            spin: None,
            trace: None,
            faults: FaultPlan::new(),
            static_model: None,
            fabric: None,
            dense_step: None,
            shards: None,
            partitioner: None,
        }
    }

    /// Sets the simulation parameters.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the routing algorithm.
    pub fn routing(mut self, routing: impl Routing + 'static) -> Self {
        self.routing = Some(Box::new(routing));
        self
    }

    /// Sets the routing algorithm from a boxed trait object (useful when
    /// the algorithm is chosen at runtime).
    pub fn routing_box(mut self, routing: Box<dyn Routing>) -> Self {
        self.routing = Some(routing);
        self
    }

    /// Sets the traffic source.
    pub fn traffic(mut self, traffic: impl TrafficSource + 'static) -> Self {
        self.traffic = Some(Box::new(traffic));
        self
    }

    /// Enables SPIN recovery with the given protocol configuration (the
    /// `num_routers` field is overwritten with the topology's).
    pub fn spin(mut self, spin: SpinConfig) -> Self {
        self.spin = Some(spin);
        self
    }

    /// Installs a runtime fault plan: scheduled link kill/heal events the
    /// network applies atomically between cycles (see [`crate::faults`] and
    /// `docs/FAULTS.md`). The default is an empty plan, which costs one
    /// branch per cycle and leaves the simulation bit-identical to a
    /// fault-free build.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Installs a structured trace sink: every SPIN protocol and packet
    /// lifecycle event is recorded into it (see `spin_trace` for sinks and
    /// exporters). Without a sink — the default — tracing costs one branch
    /// per potential emission site.
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Forces the step kernel's iteration strategy: `true` restores the
    /// dense pre-worklist kernel (every stage walks every router, link and
    /// NIC) while keeping the activity bookkeeping identical — the oracle
    /// the differential tests step in lockstep with the worklist kernel.
    /// The default follows the `SPIN_DENSE_STEP=1` environment escape
    /// hatch, else worklist stepping. Results are bit-identical either
    /// way; dense mode only costs time.
    pub fn dense_step(mut self, dense: bool) -> Self {
        self.dense_step = Some(dense);
        self
    }

    /// Shards the step kernel across `n` worker threads (see
    /// the `shard` module): routers are partitioned, the data-parallel
    /// pipeline stages fan out, and order-sensitive work is merged back in
    /// serial order — results are bit-identical to `shards = 1` for any
    /// shard count. The default follows the `SPIN_SHARDS=n` environment
    /// escape hatch, else serial. Values are clamped to `[1, 255]` and the
    /// router count; wormhole switching always runs serial.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Overrides the router partitioner used by the sharded kernel (the
    /// default is [`crate::ContiguousPartitioner`]). The choice affects
    /// load balance and boundary traffic only, never results.
    pub fn partitioner(mut self, p: Box<dyn crate::shard::Partitioner>) -> Self {
        self.partitioner = Some(p);
        self
    }

    /// Installs a static deadlock oracle for cross-validation: every
    /// ground-truth deadlock detection is checked against it and spin
    /// budgets are tracked per episode (see [`crate::static_model`] and
    /// `docs/VERIFY.md`). Without one — the default — the hook costs a
    /// single branch per periodic ground-truth check.
    pub fn static_model(mut self, model: Box<dyn StaticModel>) -> Self {
        self.static_model = Some(model);
        self
    }

    /// Installs an online fabric manager: every scheduled kill/heal is
    /// submitted to it for CDG re-certification before going live, and
    /// rejected changes are quarantined (see [`crate::fabric`] and
    /// `docs/FABRIC.md`). The manager also serves as the static-model
    /// cross-check for live deadlock episodes unless an explicit
    /// [`NetworkBuilder::static_model`] was installed. Without one — the
    /// default — admission costs nothing.
    pub fn fabric(mut self, manager: Box<dyn FabricAdmission>) -> Self {
        self.fabric = Some(manager);
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if routing or traffic were not provided, or the configuration
    /// is inconsistent (see [`SimConfig::validate`]).
    pub fn build(self) -> Network {
        Network::from_builder(self)
    }
}

impl std::fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkBuilder")
            .field("topology", &self.topo.name())
            .field("cfg", &self.cfg)
            .field("routing", &self.routing.as_ref().map(|r| r.name()))
            .field("spin", &self.spin.is_some())
            .field("trace", &self.trace.is_some())
            .field("faults", &self.faults.len())
            .field("fabric", &self.fabric.is_some())
            .finish()
    }
}
