//! Application-trace traffic standing in for PARSEC full-system runs.
//!
//! The paper's Fig. 8(a) compares network energy-delay product on PARSEC
//! workloads running over a directory coherence protocol. We cannot run
//! PARSEC itself (that requires a full-system simulator and the benchmark
//! inputs), so we model the network-visible shape of that traffic, which is
//! what the figure's claim depends on:
//!
//! * cache-filtered injection rates around 0.005–0.05 flits/node/cycle
//!   (the paper observes deadlocks need ≥ 10x real-application load);
//! * bursty arrivals (ON/OFF modulation);
//! * request→reply causality: a 1-flit request on vnet 0 is answered by a
//!   5-flit data response on vnet 2 from the home node after a service
//!   delay, so load self-throttles with latency like a real protocol.

use crate::{PacketSpec, TrafficSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spin_types::{Cycle, NodeId, Vnet};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Parameters of one application workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppTrafficConfig {
    /// Workload name (PARSEC preset names are provided in
    /// [`PARSEC_PRESETS`]).
    pub name: &'static str,
    /// Average request injection probability per node per cycle while ON.
    pub request_rate: f64,
    /// Probability of switching OFF->ON each cycle.
    pub burst_on: f64,
    /// Probability of switching ON->OFF each cycle.
    pub burst_off: f64,
    /// Memory-controller service delay before the reply is injected.
    pub service_delay: u64,
    /// Fraction of requests with a second sharer forward (vnet 1, 1 flit).
    pub forward_fraction: f64,
}

impl AppTrafficConfig {
    /// Approximate offered load in flits/node/cycle (request + reply +
    /// forwards), assuming the ON duty cycle implied by the burst rates.
    pub fn mean_flit_rate(&self) -> f64 {
        let duty = self.burst_on / (self.burst_on + self.burst_off);
        self.request_rate * duty * (1.0 + 5.0 + self.forward_fraction)
    }
}

/// PARSEC-named workload presets, ordered roughly by network intensity.
/// Rates are chosen so the mean loads span the cache-filtered region the
/// paper reports real applications occupy (well under 0.05
/// flits/node/cycle).
pub const PARSEC_PRESETS: [AppTrafficConfig; 8] = [
    AppTrafficConfig {
        name: "blackscholes",
        request_rate: 0.002,
        burst_on: 0.02,
        burst_off: 0.02,
        service_delay: 40,
        forward_fraction: 0.1,
    },
    AppTrafficConfig {
        name: "swaptions",
        request_rate: 0.003,
        burst_on: 0.02,
        burst_off: 0.03,
        service_delay: 40,
        forward_fraction: 0.1,
    },
    AppTrafficConfig {
        name: "fluidanimate",
        request_rate: 0.005,
        burst_on: 0.03,
        burst_off: 0.03,
        service_delay: 40,
        forward_fraction: 0.2,
    },
    AppTrafficConfig {
        name: "bodytrack",
        request_rate: 0.006,
        burst_on: 0.04,
        burst_off: 0.04,
        service_delay: 40,
        forward_fraction: 0.2,
    },
    AppTrafficConfig {
        name: "vips",
        request_rate: 0.008,
        burst_on: 0.04,
        burst_off: 0.03,
        service_delay: 40,
        forward_fraction: 0.2,
    },
    AppTrafficConfig {
        name: "x264",
        request_rate: 0.010,
        burst_on: 0.05,
        burst_off: 0.04,
        service_delay: 40,
        forward_fraction: 0.3,
    },
    AppTrafficConfig {
        name: "dedup",
        request_rate: 0.012,
        burst_on: 0.05,
        burst_off: 0.03,
        service_delay: 40,
        forward_fraction: 0.3,
    },
    AppTrafficConfig {
        name: "canneal",
        request_rate: 0.016,
        burst_on: 0.06,
        burst_off: 0.03,
        service_delay: 40,
        forward_fraction: 0.4,
    },
];

/// Request/reply application traffic over three vnets.
#[derive(Debug)]
pub struct AppTraffic {
    cfg: AppTrafficConfig,
    num_nodes: usize,
    rng: StdRng,
    node_on: Vec<bool>,
    /// Replies scheduled at each home node: (ready_cycle, home, requester).
    pending_replies: BinaryHeap<Reverse<(Cycle, u32, u32)>>,
    /// Replies ready for injection, keyed by home node.
    ready: HashMap<u32, Vec<u32>>,
    outstanding: u64,
    completed: u64,
}

impl AppTraffic {
    /// Creates an application source for `num_nodes` terminals.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes < 2`.
    pub fn new(cfg: AppTrafficConfig, num_nodes: usize, seed: u64) -> Self {
        assert!(
            num_nodes >= 2,
            "application traffic needs at least two nodes"
        );
        AppTraffic {
            cfg,
            num_nodes,
            rng: StdRng::seed_from_u64(seed),
            node_on: vec![false; num_nodes],
            pending_replies: BinaryHeap::new(),
            ready: HashMap::new(),
            outstanding: 0,
            completed: 0,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &AppTrafficConfig {
        &self.cfg
    }

    /// Number of completed request/reply transactions.
    pub fn completed_transactions(&self) -> u64 {
        self.completed
    }

    fn drain_due(&mut self, now: Cycle) {
        while let Some(&Reverse((t, home, req))) = self.pending_replies.peek() {
            if t > now {
                break;
            }
            self.pending_replies.pop();
            self.ready.entry(home).or_default().push(req);
        }
    }
}

impl TrafficSource for AppTraffic {
    fn generate(&mut self, node: NodeId, now: Cycle) -> Option<PacketSpec> {
        self.drain_due(now);
        // Replies take priority: the home node services its queue.
        if let Some(queue) = self.ready.get_mut(&node.0) {
            if let Some(req) = queue.pop() {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.completed += 1;
                return Some(PacketSpec {
                    dst: NodeId(req),
                    len: 5,
                    vnet: Vnet(2),
                });
            }
        }
        // ON/OFF modulation.
        let on = &mut self.node_on[node.index()];
        if *on {
            if self.rng.random_bool(self.cfg.burst_off) {
                *on = false;
            }
        } else if self.rng.random_bool(self.cfg.burst_on) {
            *on = true;
        }
        if !self.node_on[node.index()] {
            return None;
        }
        if !self.rng.random_bool(self.cfg.request_rate) {
            return None;
        }
        // Issue a request to a random home node; occasionally a forward.
        let d = self.rng.random_range(0..self.num_nodes as u32 - 1);
        let dst = if d >= node.0 { d + 1 } else { d };
        let vnet = if self
            .rng
            .random_bool(self.cfg.forward_fraction.clamp(0.0, 1.0))
        {
            Vnet(1)
        } else {
            Vnet(0)
        };
        self.outstanding += 1;
        Some(PacketSpec {
            dst: NodeId(dst),
            len: 1,
            vnet,
        })
    }

    fn delivered(&mut self, spec: &PacketSpec, src: NodeId, now: Cycle) {
        // A request arriving at its home node schedules the data reply.
        if spec.vnet != Vnet(2) {
            self.pending_replies
                .push(Reverse((now + self.cfg.service_delay, spec.dst.0, src.0)));
        }
    }

    fn offered_load(&self) -> f64 {
        self.cfg.mean_flit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_cache_filtered_loads() {
        for p in PARSEC_PRESETS {
            let rate = p.mean_flit_rate();
            assert!(
                rate > 0.0 && rate < 0.1,
                "{} rate {rate} outside the cache-filtered band",
                p.name
            );
        }
    }

    #[test]
    fn requests_trigger_replies() {
        let cfg = PARSEC_PRESETS[7]; // canneal, highest rate
        let mut app = AppTraffic::new(cfg, 16, 5);
        let mut replies = 0;
        for now in 0..50_000u64 {
            for n in 0..16u32 {
                if let Some(spec) = app.generate(NodeId(n), now) {
                    if spec.vnet == Vnet(2) {
                        assert_eq!(spec.len, 5);
                        replies += 1;
                    } else {
                        assert_eq!(spec.len, 1);
                        // Simulate instant delivery after 10 cycles.
                        app.delivered(&spec, NodeId(n), now + 10);
                    }
                }
            }
        }
        assert!(replies > 0, "no replies generated");
        assert_eq!(app.completed_transactions(), replies);
    }

    #[test]
    fn reply_waits_for_service_delay() {
        let cfg = AppTrafficConfig {
            name: "test",
            request_rate: 1.0,
            burst_on: 1.0,
            burst_off: 0.0,
            service_delay: 100,
            forward_fraction: 0.0,
        };
        let mut app = AppTraffic::new(cfg, 4, 1);
        let spec = app.generate(NodeId(0), 0).expect("always-on emits");
        app.delivered(&spec, NodeId(0), 0);
        // The home node cannot reply before cycle 100.
        let home = spec.dst;
        for now in 1..100 {
            if let Some(p) = app.generate(home, now) {
                assert_ne!(p.vnet, Vnet(2), "reply emitted early at {now}");
                if p.vnet != Vnet(2) {
                    // Drop extra requests on the floor for this test.
                }
            }
        }
        let mut saw_reply = false;
        for now in 100..200 {
            if let Some(p) = app.generate(home, now) {
                if p.vnet == Vnet(2) {
                    assert_eq!(p.dst, NodeId(0));
                    saw_reply = true;
                    break;
                }
            }
        }
        assert!(saw_reply);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let cfg = PARSEC_PRESETS[3];
        let mut a = AppTraffic::new(cfg, 8, 42);
        let mut b = AppTraffic::new(cfg, 8, 42);
        for now in 0..2000 {
            for n in 0..8u32 {
                assert_eq!(a.generate(NodeId(n), now), b.generate(NodeId(n), now));
            }
        }
    }
}
