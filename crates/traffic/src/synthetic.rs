//! Bernoulli synthetic traffic with the paper's control/data packet mix.

use crate::{PacketSpec, Pattern, TrafficSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spin_topology::Topology;
use spin_types::{Cycle, NodeId, Vnet};

/// Configuration for [`SyntheticTraffic`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Destination pattern.
    pub pattern: Pattern,
    /// Offered load in flits/node/cycle.
    pub rate: f64,
    /// Fraction of packets that are long data packets (the paper injects "a
    /// mix of 1-flit (control) and 5-flit (data) packets").
    pub data_fraction: f64,
    /// Length of a data packet in flits.
    pub data_len: u16,
    /// Length of a control packet in flits.
    pub ctrl_len: u16,
    /// Number of virtual networks to spread packets over. Control packets
    /// rotate over vnets `0..vnets-1`; data packets use the last vnet
    /// (response class), mimicking a directory protocol.
    pub vnets: u8,
}

impl SyntheticConfig {
    /// The paper's default synthetic setup: given pattern and rate, 50% data
    /// packets of 5 flits, 3 vnets.
    pub fn new(pattern: Pattern, rate: f64) -> Self {
        SyntheticConfig {
            pattern,
            rate,
            data_fraction: 0.5,
            data_len: 5,
            ctrl_len: 1,
            vnets: 3,
        }
    }

    /// Fig. 3's setup: 1-flit packets only.
    pub fn single_flit(pattern: Pattern, rate: f64) -> Self {
        SyntheticConfig {
            data_fraction: 0.0,
            ..Self::new(pattern, rate)
        }
    }

    /// Expected packet length in flits.
    pub fn mean_len(&self) -> f64 {
        self.data_fraction * self.data_len as f64
            + (1.0 - self.data_fraction) * self.ctrl_len as f64
    }

    /// Per-cycle packet injection probability that achieves `rate`
    /// flits/node/cycle.
    pub fn packet_probability(&self) -> f64 {
        (self.rate / self.mean_len()).min(1.0)
    }
}

/// Bernoulli injection of pattern-directed packets.
#[derive(Debug, Clone)]
pub struct SyntheticTraffic {
    cfg: SyntheticConfig,
    topo_nodes: usize,
    rng: StdRng,
    ctrl_vnet_rr: u8,
    topo: Topology,
}

impl SyntheticTraffic {
    /// Creates a source over `topo` with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or the config's vnet count is zero.
    pub fn new(cfg: SyntheticConfig, topo: &Topology, seed: u64) -> Self {
        assert!(cfg.rate >= 0.0, "injection rate must be non-negative");
        assert!(cfg.vnets >= 1, "need at least one vnet");
        SyntheticTraffic {
            cfg,
            topo_nodes: topo.num_nodes(),
            rng: StdRng::seed_from_u64(seed),
            ctrl_vnet_rr: 0,
            topo: topo.clone(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.cfg
    }
}

impl TrafficSource for SyntheticTraffic {
    fn generate(&mut self, node: NodeId, _now: Cycle) -> Option<PacketSpec> {
        debug_assert!(node.index() < self.topo_nodes);
        if !self.rng.random_bool(self.cfg.packet_probability()) {
            return None;
        }
        let dst = self
            .cfg
            .pattern
            .destination(node, &self.topo, &mut self.rng)?;
        let is_data = self.cfg.data_fraction > 0.0
            && self.rng.random_bool(self.cfg.data_fraction.clamp(0.0, 1.0));
        let (len, vnet) = if is_data {
            (self.cfg.data_len, Vnet(self.cfg.vnets - 1))
        } else {
            let ctrl_vnets = (self.cfg.vnets - 1).max(1);
            let v = self.ctrl_vnet_rr % ctrl_vnets;
            self.ctrl_vnet_rr = self.ctrl_vnet_rr.wrapping_add(1);
            (self.cfg.ctrl_len, Vnet(v))
        };
        Some(PacketSpec { dst, len, vnet })
    }

    fn offered_load(&self) -> f64 {
        self.cfg.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected_in_flits() {
        let topo = Topology::mesh(4, 4);
        let cfg = SyntheticConfig::new(Pattern::UniformRandom, 0.3);
        let mut t = SyntheticTraffic::new(cfg, &topo, 7);
        let cycles = 20_000u64;
        let mut flits = 0u64;
        for c in 0..cycles {
            for n in 0..16 {
                if let Some(spec) = t.generate(NodeId(n), c) {
                    flits += spec.len as u64;
                }
            }
        }
        let measured = flits as f64 / (cycles as f64 * 16.0);
        assert!(
            (measured - 0.3).abs() < 0.02,
            "measured rate {measured} too far from 0.3"
        );
    }

    #[test]
    fn single_flit_config_only_emits_one_flit_packets() {
        let topo = Topology::mesh(4, 4);
        let cfg = SyntheticConfig::single_flit(Pattern::BitComplement, 0.5);
        let mut t = SyntheticTraffic::new(cfg, &topo, 3);
        for c in 0..1000 {
            for n in 0..16 {
                if let Some(spec) = t.generate(NodeId(n), c) {
                    assert_eq!(spec.len, 1);
                }
            }
        }
    }

    #[test]
    fn data_packets_use_last_vnet() {
        let topo = Topology::mesh(4, 4);
        let cfg = SyntheticConfig::new(Pattern::UniformRandom, 0.9);
        let mut t = SyntheticTraffic::new(cfg, &topo, 9);
        let (mut data, mut ctrl) = (0, 0);
        for c in 0..5000 {
            for n in 0..16 {
                if let Some(spec) = t.generate(NodeId(n), c) {
                    if spec.len == 5 {
                        assert_eq!(spec.vnet, Vnet(2));
                        data += 1;
                    } else {
                        assert!(spec.vnet.0 < 2);
                        ctrl += 1;
                    }
                }
            }
        }
        assert!(data > 0 && ctrl > 0);
    }

    #[test]
    fn zero_rate_emits_nothing() {
        let topo = Topology::mesh(4, 4);
        let cfg = SyntheticConfig::new(Pattern::UniformRandom, 0.0);
        let mut t = SyntheticTraffic::new(cfg, &topo, 1);
        for c in 0..100 {
            for n in 0..16 {
                assert!(t.generate(NodeId(n), c).is_none());
            }
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let topo = Topology::mesh(4, 4);
        let cfg = SyntheticConfig::new(Pattern::UniformRandom, 0.4);
        let mut a = SyntheticTraffic::new(cfg, &topo, 11);
        let mut b = SyntheticTraffic::new(cfg, &topo, 11);
        for c in 0..500 {
            for n in 0..16 {
                assert_eq!(a.generate(NodeId(n), c), b.generate(NodeId(n), c));
            }
        }
    }
}
