//! Synthetic destination patterns (Garnet-compatible definitions).

use rand::Rng;
use spin_topology::{Topology, TopologyKind};
use spin_types::NodeId;
use std::fmt;

/// A synthetic traffic pattern: maps each source node to a destination.
///
/// Permutation patterns (`BitComplement`, `BitReverse`, `BitRotation`,
/// `Shuffle`, `Transpose`) operate on the binary representation of the node
/// id within `log2(N)` bits, as in Garnet; they require a power-of-two node
/// count (the paper's 64-node mesh and 1024-node dragonfly both qualify).
/// `Tornado` and `Transpose` are mesh-aware on mesh/torus topologies
/// (operating on router coordinates) and fall back to the flat-id formula on
/// other topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Uniformly random destination (excluding the source).
    UniformRandom,
    /// `dst = ~src` within `log2(N)` bits.
    BitComplement,
    /// Swap the upper and lower halves of the id bits; on a square mesh this
    /// is the matrix transpose `(x, y) -> (y, x)`.
    Transpose,
    /// Send halfway around the x dimension: `dst_x = (x + w/2 - 1) mod w`
    /// on meshes/tori; `(i + N/2 - 1) mod N` elsewhere.
    Tornado,
    /// `dst = (src + 1) mod N`.
    Neighbor,
    /// Reverse the id bits.
    BitReverse,
    /// Rotate the id bits right by one.
    BitRotation,
    /// Rotate the id bits left by one (perfect shuffle).
    Shuffle,
    /// All nodes send to node 0 with the given probability, else uniform.
    /// Probability is in percent (0-100).
    Hotspot(u8),
}

impl Pattern {
    /// Every pattern used in the paper's sweeps, for iteration.
    pub const PAPER_PATTERNS: [Pattern; 7] = [
        Pattern::UniformRandom,
        Pattern::BitComplement,
        Pattern::Transpose,
        Pattern::Tornado,
        Pattern::Neighbor,
        Pattern::BitReverse,
        Pattern::BitRotation,
    ];

    /// Computes the destination for `src`. Deterministic patterns ignore
    /// `rng`. Returns `None` when the pattern maps `src` to itself (the
    /// caller should skip injection, as Garnet does).
    ///
    /// # Panics
    ///
    /// The bit-permutation patterns (complement, reverse, rotation, and
    /// transpose off-mesh) require a power-of-two node count and panic
    /// otherwise — a configuration error, not a runtime condition.
    pub fn destination<R: Rng + ?Sized>(
        self,
        src: NodeId,
        topo: &Topology,
        rng: &mut R,
    ) -> Option<NodeId> {
        let n = topo.num_nodes() as u32;
        let bits = n.trailing_zeros();
        let id = src.0;
        let dst = match self {
            Pattern::UniformRandom => {
                if n < 2 {
                    return None;
                }
                // Draw from N-1 candidates to exclude the source.
                let d = rng.random_range(0..n - 1);
                if d >= id {
                    d + 1
                } else {
                    d
                }
            }
            Pattern::BitComplement => {
                assert_power_of_two(n, self);
                (!id) & (n - 1)
            }
            Pattern::Transpose => match *topo.kind() {
                TopologyKind::Mesh { .. } | TopologyKind::Torus { .. } => {
                    let r = topo.node_router(src);
                    let (x, y) = topo.coords(r);
                    topo.port(topo.router_at(y, x), spin_types::PortId(0))
                        .node
                        .expect("mesh router port 0 is local")
                        .0
                }
                _ => {
                    assert_power_of_two(n, self);
                    let half = bits / 2;
                    let lo = id & ((1 << half) - 1);
                    let hi = id >> half;
                    (lo << (bits - half)) | hi
                }
            },
            Pattern::Tornado => match *topo.kind() {
                TopologyKind::Mesh { width, .. } | TopologyKind::Torus { width, .. } => {
                    let r = topo.node_router(src);
                    let (x, y) = topo.coords(r);
                    let nx = (x + width / 2 + width - 1) % width;
                    topo.port(topo.router_at(nx, y), spin_types::PortId(0))
                        .node
                        .expect("mesh router port 0 is local")
                        .0
                }
                _ => (id + n / 2 - 1) % n,
            },
            Pattern::Neighbor => (id + 1) % n,
            Pattern::BitReverse => {
                assert_power_of_two(n, self);
                let mut v = 0;
                for b in 0..bits {
                    if id & (1 << b) != 0 {
                        v |= 1 << (bits - 1 - b);
                    }
                }
                v
            }
            Pattern::BitRotation => {
                assert_power_of_two(n, self);
                (id >> 1) | ((id & 1) << (bits - 1))
            }
            Pattern::Shuffle => {
                assert_power_of_two(n, self);
                ((id << 1) & (n - 1)) | (id >> (bits - 1))
            }
            Pattern::Hotspot(pct) => {
                if rng.random_range(0..100u8) < pct && id != 0 {
                    0
                } else {
                    let d = rng.random_range(0..n - 1);
                    if d >= id {
                        d + 1
                    } else {
                        d
                    }
                }
            }
        };
        if dst == id {
            None
        } else {
            Some(NodeId(dst))
        }
    }
}

fn assert_power_of_two(n: u32, pattern: Pattern) {
    assert!(
        n.is_power_of_two(),
        "{pattern} requires a power-of-two node count, got {n}"
    );
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pattern::UniformRandom => "uniform_random",
            Pattern::BitComplement => "bit_complement",
            Pattern::Transpose => "transpose",
            Pattern::Tornado => "tornado",
            Pattern::Neighbor => "neighbor",
            Pattern::BitReverse => "bit_reverse",
            Pattern::BitRotation => "bit_rotation",
            Pattern::Shuffle => "shuffle",
            Pattern::Hotspot(p) => return write!(f, "hotspot{p}"),
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mesh8() -> Topology {
        Topology::mesh(8, 8)
    }

    #[test]
    fn bit_complement_is_involution() {
        let t = mesh8();
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..64 {
            let d = Pattern::BitComplement
                .destination(NodeId(i), &t, &mut rng)
                .unwrap();
            let back = Pattern::BitComplement.destination(d, &t, &mut rng).unwrap();
            assert_eq!(back, NodeId(i));
            assert_eq!(d.0, 63 - i);
        }
    }

    #[test]
    fn transpose_on_mesh_swaps_coords() {
        let t = mesh8();
        let mut rng = StdRng::seed_from_u64(0);
        // Node 1 is at (1,0) -> destination (0,1) = node 8.
        let d = Pattern::Transpose
            .destination(NodeId(1), &t, &mut rng)
            .unwrap();
        assert_eq!(d, NodeId(8));
        // Diagonal nodes map to themselves -> None.
        assert!(Pattern::Transpose
            .destination(NodeId(9), &t, &mut rng)
            .is_none());
    }

    #[test]
    fn tornado_on_mesh_goes_halfway_across_x() {
        let t = mesh8();
        let mut rng = StdRng::seed_from_u64(0);
        // (0,0) -> ((0+4-1)%8, 0) = (3,0) = node 3.
        let d = Pattern::Tornado
            .destination(NodeId(0), &t, &mut rng)
            .unwrap();
        assert_eq!(d, NodeId(3));
    }

    #[test]
    fn tornado_flat_formula_on_dragonfly() {
        let t = Topology::dragonfly(2, 4, 2, 9); // 72 nodes, not power of two
        let mut rng = StdRng::seed_from_u64(0);
        let d = Pattern::Tornado
            .destination(NodeId(0), &t, &mut rng)
            .unwrap();
        assert_eq!(d, NodeId(72 / 2 - 1));
    }

    #[test]
    fn neighbor_wraps() {
        let t = mesh8();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            Pattern::Neighbor.destination(NodeId(63), &t, &mut rng),
            Some(NodeId(0))
        );
    }

    #[test]
    fn bit_reverse_and_rotation() {
        let t = mesh8();
        let mut rng = StdRng::seed_from_u64(0);
        // 64 nodes = 6 bits. 0b000001 reversed = 0b100000 = 32.
        assert_eq!(
            Pattern::BitReverse.destination(NodeId(1), &t, &mut rng),
            Some(NodeId(32))
        );
        // 0b000011 rotated right = 0b100001 = 33.
        assert_eq!(
            Pattern::BitRotation.destination(NodeId(3), &t, &mut rng),
            Some(NodeId(33))
        );
        // Shuffle is the inverse of rotation.
        assert_eq!(
            Pattern::Shuffle.destination(NodeId(33), &t, &mut rng),
            Some(NodeId(3))
        );
    }

    #[test]
    fn uniform_random_never_self() {
        let t = mesh8();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = Pattern::UniformRandom
                .destination(NodeId(17), &t, &mut rng)
                .unwrap();
            assert_ne!(d, NodeId(17));
            assert!(d.0 < 64);
        }
    }

    #[test]
    fn hotspot_concentrates() {
        let t = mesh8();
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..1000)
            .filter(|_| {
                Pattern::Hotspot(80).destination(NodeId(5), &t, &mut rng) == Some(NodeId(0))
            })
            .count();
        assert!(hits > 700, "expected ~800 hotspot hits, got {hits}");
    }

    #[test]
    fn display_names() {
        assert_eq!(Pattern::UniformRandom.to_string(), "uniform_random");
        assert_eq!(Pattern::Hotspot(20).to_string(), "hotspot20");
    }
}
