//! Traffic generation for the SPIN reproduction.
//!
//! Two families of sources feed the simulator:
//!
//! * [`SyntheticTraffic`] — the classic synthetic patterns the paper sweeps
//!   (uniform random, bit complement, transpose, tornado, neighbor, bit
//!   reverse, bit rotation, shuffle, hotspot), with a Bernoulli injection
//!   process and the paper's mix of 1-flit control and 5-flit data packets
//!   spread over three virtual networks (mimicking a directory-coherence
//!   protocol's message classes).
//! * [`AppTraffic`] — parameterised application traces standing in for the
//!   PARSEC full-system runs of Fig. 8(a): cache-filtered low injection
//!   rates, bursty arrivals, and request→reply causality (1-flit request on
//!   vnet 0 answered by a 5-flit data response on vnet 2 after a service
//!   delay).
//!
//! # Examples
//!
//! ```
//! use spin_topology::Topology;
//! use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic, TrafficSource};
//! use spin_types::NodeId;
//!
//! let topo = Topology::mesh(4, 4);
//! let cfg = SyntheticConfig::new(Pattern::UniformRandom, 0.1);
//! let mut traffic = SyntheticTraffic::new(cfg, &topo, 42);
//! let mut injected = 0;
//! for cycle in 0..1000 {
//!     for n in 0..topo.num_nodes() {
//!         if traffic.generate(NodeId(n as u32), cycle).is_some() {
//!             injected += 1;
//!         }
//!     }
//! }
//! assert!(injected > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod apps;
mod pattern;
mod synthetic;
mod trace;

pub use apps::{AppTraffic, AppTrafficConfig, PARSEC_PRESETS};
pub use pattern::Pattern;
pub use synthetic::{SyntheticConfig, SyntheticTraffic};
pub use trace::{ParseTraceError, TraceRecord, TraceTraffic};

use spin_types::{Cycle, NodeId, Vnet};

/// A packet to be injected, before it receives an id (the simulator assigns
/// ids and builds the [`spin_types::Packet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpec {
    /// Destination terminal.
    pub dst: NodeId,
    /// Length in flits.
    pub len: u16,
    /// Virtual network (message class).
    pub vnet: Vnet,
}

/// A source of injected traffic, polled once per node per cycle by the
/// simulator.
///
/// Implementations must be deterministic given their construction seed.
pub trait TrafficSource {
    /// Returns the packet node `node` injects at cycle `now`, if any.
    /// At most one packet per node per cycle (rates above one packet per
    /// cycle are not meaningful for a single-NIC terminal).
    fn generate(&mut self, node: NodeId, now: Cycle) -> Option<PacketSpec>;

    /// Called by the simulator when a packet from this source is delivered,
    /// letting request/reply sources schedule responses. The default does
    /// nothing.
    fn delivered(&mut self, _spec: &PacketSpec, _src: NodeId, _now: Cycle) {}

    /// The offered load in flits/node/cycle this source aims for (used for
    /// reporting only).
    fn offered_load(&self) -> f64;
}

/// Wraps any source and stops offering new packets at a fixed cycle —
/// the standard shape of a drain experiment (inject for a window, then
/// let the network empty so conservation can be checked exactly).
///
/// Delivery callbacks still reach the inner source (request/reply sources
/// keep their bookkeeping), but nothing new is generated at or after
/// `stop_at`.
///
/// # Examples
///
/// ```
/// use spin_topology::Topology;
/// use spin_traffic::{Pattern, StopAfter, SyntheticConfig, SyntheticTraffic, TrafficSource};
/// use spin_types::NodeId;
///
/// let topo = Topology::mesh(4, 4);
/// let inner = SyntheticTraffic::new(SyntheticConfig::new(Pattern::UniformRandom, 0.5), &topo, 1);
/// let mut src = StopAfter::new(inner, 10);
/// assert!(src.generate(NodeId(0), 10).is_none());
/// ```
#[derive(Debug)]
pub struct StopAfter<T> {
    inner: T,
    stop_at: Cycle,
}

impl<T: TrafficSource> StopAfter<T> {
    /// Wraps `inner`, silencing it from cycle `stop_at` onwards.
    pub fn new(inner: T, stop_at: Cycle) -> Self {
        StopAfter { inner, stop_at }
    }
}

impl<T: TrafficSource> TrafficSource for StopAfter<T> {
    fn generate(&mut self, node: NodeId, now: Cycle) -> Option<PacketSpec> {
        if now >= self.stop_at {
            None
        } else {
            self.inner.generate(node, now)
        }
    }

    fn delivered(&mut self, spec: &PacketSpec, src: NodeId, now: Cycle) {
        self.inner.delivered(spec, src, now);
    }

    fn offered_load(&self) -> f64 {
        self.inner.offered_load()
    }
}
