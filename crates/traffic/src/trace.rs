//! Trace-driven traffic: replay an explicit packet schedule, e.g. one
//! captured from a full-system simulation (the netrace-style workflow the
//! gem5 ecosystem uses).

use crate::{PacketSpec, TrafficSource};
use spin_types::{Cycle, NodeId, Vnet};
use std::collections::VecDeque;
use std::fmt;
use std::num::ParseIntError;

/// One packet injection event in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Earliest cycle the packet may inject.
    pub cycle: Cycle,
    /// Source terminal.
    pub src: NodeId,
    /// Destination terminal.
    pub dst: NodeId,
    /// Length in flits.
    pub len: u16,
    /// Virtual network.
    pub vnet: Vnet,
}

/// Error parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Replays a fixed schedule of packets. Each node injects its records in
/// cycle order; if several records of one node share a cycle, the extras
/// slip to the following cycles (one packet per node per cycle).
#[derive(Debug, Clone)]
pub struct TraceTraffic {
    queues: Vec<VecDeque<TraceRecord>>,
    total: usize,
    emitted: usize,
}

impl TraceTraffic {
    /// Builds a source for `num_nodes` terminals from `records` (sorted
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if a record's source or destination is out of range, or a
    /// record has zero length.
    pub fn new(num_nodes: usize, mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.cycle);
        let mut queues = vec![VecDeque::new(); num_nodes];
        let total = records.len();
        for r in records {
            assert!(
                r.src.index() < num_nodes,
                "trace src {} out of range",
                r.src
            );
            assert!(
                r.dst.index() < num_nodes,
                "trace dst {} out of range",
                r.dst
            );
            assert!(r.len > 0, "trace packet must have at least one flit");
            queues[r.src.index()].push_back(r);
        }
        TraceTraffic {
            queues,
            total,
            emitted: 0,
        }
    }

    /// Parses a CSV trace (`cycle,src,dst,len,vnet` per line; `#` comments
    /// and blank lines ignored).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] naming the offending line.
    pub fn from_csv(num_nodes: usize, text: &str) -> Result<Self, ParseTraceError> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != 5 {
                return Err(ParseTraceError {
                    line: i + 1,
                    reason: format!("expected 5 fields, got {}", fields.len()),
                });
            }
            let parse = |s: &str, what: &str| -> Result<u64, ParseTraceError> {
                s.parse::<u64>()
                    .map_err(|e: ParseIntError| ParseTraceError {
                        line: i + 1,
                        reason: format!("bad {what} `{s}`: {e}"),
                    })
            };
            records.push(TraceRecord {
                cycle: parse(fields[0], "cycle")?,
                src: NodeId(parse(fields[1], "src")? as u32),
                dst: NodeId(parse(fields[2], "dst")? as u32),
                len: parse(fields[3], "len")? as u16,
                vnet: Vnet(parse(fields[4], "vnet")? as u8),
            });
        }
        Ok(Self::new(num_nodes, records))
    }

    /// Total records in the trace.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Records already handed to the network.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// True once every record has been injected.
    pub fn finished(&self) -> bool {
        self.emitted == self.total
    }
}

impl TrafficSource for TraceTraffic {
    fn generate(&mut self, node: NodeId, now: Cycle) -> Option<PacketSpec> {
        let q = self.queues.get_mut(node.index())?;
        if q.front().map(|r| r.cycle <= now).unwrap_or(false) {
            let r = q.pop_front().expect("checked non-empty");
            self.emitted += 1;
            Some(PacketSpec {
                dst: r.dst,
                len: r.len,
                vnet: r.vnet,
            })
        } else {
            None
        }
    }

    fn offered_load(&self) -> f64 {
        0.0 // depends entirely on the trace contents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: Cycle, src: u32, dst: u32) -> TraceRecord {
        TraceRecord {
            cycle,
            src: NodeId(src),
            dst: NodeId(dst),
            len: 1,
            vnet: Vnet(0),
        }
    }

    #[test]
    fn replays_in_cycle_order() {
        let mut t = TraceTraffic::new(4, vec![rec(5, 0, 1), rec(2, 0, 2), rec(2, 1, 3)]);
        assert_eq!(t.len(), 3);
        assert!(t.generate(NodeId(0), 1).is_none());
        let p = t.generate(NodeId(0), 2).unwrap();
        assert_eq!(p.dst, NodeId(2));
        let p = t.generate(NodeId(1), 2).unwrap();
        assert_eq!(p.dst, NodeId(3));
        assert!(t.generate(NodeId(0), 3).is_none()); // next is at cycle 5
        let p = t.generate(NodeId(0), 5).unwrap();
        assert_eq!(p.dst, NodeId(1));
        assert!(t.finished());
    }

    #[test]
    fn same_cycle_records_slip() {
        let mut t = TraceTraffic::new(2, vec![rec(1, 0, 1), rec(1, 0, 1)]);
        assert!(t.generate(NodeId(0), 1).is_some());
        // The second fires on the next poll, not the same cycle twice.
        assert!(t.generate(NodeId(0), 2).is_some());
        assert_eq!(t.emitted(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let text = "# cycle,src,dst,len,vnet\n10,0,3,5,2\n\n11, 1, 2, 1, 0\n";
        let mut t = TraceTraffic::from_csv(4, text).unwrap();
        assert_eq!(t.len(), 2);
        let p = t.generate(NodeId(0), 10).unwrap();
        assert_eq!(p.len, 5);
        assert_eq!(p.vnet, Vnet(2));
        let p = t.generate(NodeId(1), 11).unwrap();
        assert_eq!(p.dst, NodeId(2));
    }

    #[test]
    fn csv_errors_name_the_line() {
        let err = TraceTraffic::from_csv(4, "1,2,3\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = TraceTraffic::from_csv(4, "a,0,1,1,0\n").unwrap_err();
        assert!(err.to_string().contains("bad cycle"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_src_rejected() {
        let _ = TraceTraffic::new(2, vec![rec(0, 5, 0)]);
    }

    #[test]
    fn empty_trace_is_silent() {
        let mut t = TraceTraffic::new(3, Vec::new());
        assert!(t.is_empty());
        for now in 0..10 {
            for n in 0..3 {
                assert!(t.generate(NodeId(n), now).is_none());
            }
        }
    }
}
