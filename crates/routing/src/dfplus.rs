//! Dragonfly+ routing: adaptive minimal with an optional Valiant detour
//! through an intermediate group, under either the per-global-hop VC
//! escalation discipline or free VC use when SPIN provides deadlock
//! freedom.
//!
//! Minimal dragonfly+ paths are up/down within a group (leaf → spine →
//! leaf) and leaf → spine → global → spine → leaf across groups, all of
//! which [`Topology::minimal_ports`] yields directly, so the algorithm is
//! robust to runtime link faults (it re-reads distances every cycle, like
//! FAvORS). The escalation discipline keys the VC class on
//! [`Packet::global_hops`] — maintained by the delivery stage via
//! [`Topology::is_global_port`] and tracked identically by the
//! derived-CDG static walk.

use crate::{
    ejection_choice, select_adaptive_prepare, NetworkView, Prepared, RouteChoice, RouteChoices,
    Routing, VcMask,
};
use rand::rngs::StdRng;
use rand::Rng;
use smallvec::smallvec;
use spin_types::{NodeId, Packet, PortId, RouterId, VcId};

/// How dragonfly+ adaptive packets may use VCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfPlusVcDiscipline {
    /// Escalation baseline: the VC index equals the number of global links
    /// already crossed. A Valiant path crosses at most two, so the
    /// discipline needs 3 VCs.
    Escalation,
    /// SPIN configuration: any VC, recovery handles the rare deadlock.
    Free,
}

/// Adaptive dragonfly+ routing: UGAL-style source decision between the
/// minimal path and a Valiant detour through a random intermediate group,
/// then congestion-adaptive minimal routing toward the current target.
#[derive(Debug, Clone, Copy)]
pub struct DfPlusAdaptive {
    /// VC usage rule.
    pub discipline: DfPlusVcDiscipline,
}

impl DfPlusAdaptive {
    /// The native 3-VC escalation baseline.
    pub fn escalation() -> Self {
        DfPlusAdaptive {
            discipline: DfPlusVcDiscipline::Escalation,
        }
    }

    /// Adaptive dragonfly+ on top of SPIN: no VC-use restriction.
    pub fn with_spin() -> Self {
        DfPlusAdaptive {
            discipline: DfPlusVcDiscipline::Free,
        }
    }

    fn vc_mask(&self, pkt: &Packet) -> VcMask {
        match self.discipline {
            DfPlusVcDiscipline::Escalation => VcMask::only(VcId(pkt.global_hops.min(31) as u8)),
            DfPlusVcDiscipline::Free => VcMask::all(),
        }
    }
}

impl Routing for DfPlusAdaptive {
    fn name(&self) -> &'static str {
        match self.discipline {
            DfPlusVcDiscipline::Escalation => "dfplus_esc",
            DfPlusVcDiscipline::Free => "dfplus_spin",
        }
    }

    fn at_injection(&self, view: &dyn NetworkView, pkt: &mut Packet, rng: &mut StdRng) {
        let topo = view.topology();
        let src_r = topo.node_router(pkt.src);
        let dst_r = topo.node_router(pkt.dst);
        if src_r == dst_r {
            return;
        }
        // Candidate Valiant intermediate: a random node whose group differs
        // from both endpoints' groups (the classic dragonfly detour shape).
        let n = topo.num_nodes() as u32;
        let inter = NodeId(rng.random_range(0..n));
        let inter_r = topo.node_router(inter);
        if topo.group_of(inter_r) == topo.group_of(src_r)
            || topo.group_of(inter_r) == topo.group_of(dst_r)
        {
            return;
        }
        let h_min = topo.dist(src_r, dst_r) as usize;
        let h_nonmin = (topo.dist(src_r, inter_r) + topo.dist(inter_r, dst_r)) as usize;
        let q = |target: RouterId| -> usize {
            topo.minimal_ports(src_r, target)
                .iter()
                .map(|&p| view.downstream_occupancy(src_r, p, pkt.vnet))
                .min()
                .unwrap_or(0)
        };
        // Classic UGAL-L: detour when the minimal queue estimate scaled by
        // its hop count exceeds the non-minimal one.
        if q(dst_r) * h_min > q(inter_r) * h_nonmin {
            pkt.intermediate = Some(inter);
            pkt.misroutes = 1;
        }
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(mut eject) = ejection_choice(topo, at, pkt) {
            eject.vc_mask = VcMask::all();
            return Prepared::Done(smallvec![eject]);
        }
        let ports = topo.minimal_ports(at, topo.node_router(pkt.current_target()));
        let mask = self.vc_mask(pkt);
        let options = select_adaptive_prepare(view, at, &ports, pkt.vnet)
            .iter()
            .map(|&p| RouteChoice {
                out_port: p,
                vc_mask: mask,
            })
            .collect();
        // ports[0] is a placeholder finish_prepared overwrites (a
        // non-ejecting packet always has a minimal port).
        Prepared::Pick {
            choices: smallvec![RouteChoice {
                out_port: ports[0],
                vc_mask: mask,
            }],
            slot: 0,
            options,
        }
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        let mask = self.vc_mask(pkt);
        topo.minimal_ports(at, topo.node_router(pkt.current_target()))
            .iter()
            .map(|&p| RouteChoice {
                out_port: p,
                vc_mask: mask,
            })
            .collect()
    }

    fn misroute_bound(&self) -> u32 {
        1
    }

    fn min_vcs_required(&self) -> u8 {
        match self.discipline {
            DfPlusVcDiscipline::Escalation => 3,
            DfPlusVcDiscipline::Free => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticView;
    use rand::SeedableRng;
    use spin_topology::Topology;
    use spin_types::PacketBuilder;

    fn dfp() -> Topology {
        Topology::dragonfly_plus(2, 2, 2, 2, 4)
    }

    #[test]
    fn minimal_when_uncongested() {
        let topo = dfp();
        let view = StaticView::new(&topo, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = PacketBuilder::new(NodeId(0), NodeId(12)).build(0);
        DfPlusAdaptive::escalation().at_injection(&view, &mut p, &mut rng);
        assert_eq!(p.intermediate, None);
    }

    #[test]
    fn escalation_discipline_tracks_global_hops() {
        let r = DfPlusAdaptive::escalation();
        let mut p = PacketBuilder::new(NodeId(0), NodeId(12)).build(0);
        assert_eq!(r.vc_mask(&p), VcMask::only(VcId(0)));
        p.global_hops = 1;
        assert_eq!(r.vc_mask(&p), VcMask::only(VcId(1)));
        p.global_hops = 2;
        assert_eq!(r.vc_mask(&p), VcMask::only(VcId(2)));
        assert_eq!(r.min_vcs_required(), 3);
        assert_eq!(DfPlusAdaptive::with_spin().min_vcs_required(), 1);
    }

    #[test]
    fn routes_reach_destination_minimally() {
        let topo = dfp();
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let r = DfPlusAdaptive::escalation();
        for (s, d) in [(0u32, 15u32), (1, 4), (3, 0), (5, 13)] {
            let p = PacketBuilder::new(NodeId(s), NodeId(d)).build(0);
            let mut at = topo.node_router(NodeId(s));
            let dst_r = topo.node_router(NodeId(d));
            let want = topo.dist(at, dst_r);
            let mut hops = 0;
            while at != dst_r {
                let c = r.route(&view, at, PortId(0), &p, &mut rng);
                at = topo.neighbor(at, c[0].out_port).unwrap().router;
                hops += 1;
            }
            assert_eq!(hops, want, "minimal path length {s}->{d}");
            assert!(hops <= 3, "dragonfly+ minimal exceeds 3 hops");
        }
    }

    /// A view whose downstream queues are congested only on ports that
    /// make progress toward `hot` — the directional pressure the UGAL-L
    /// rule needs to actually fire.
    #[derive(Debug)]
    struct CongestedToward<'a> {
        topo: &'a Topology,
        hot: RouterId,
    }

    impl NetworkView for CongestedToward<'_> {
        fn topology(&self) -> &Topology {
            self.topo
        }
        fn now(&self) -> spin_types::Cycle {
            0
        }
        fn free_vcs_downstream(
            &self,
            _at: RouterId,
            _out_port: PortId,
            _vnet: spin_types::Vnet,
        ) -> usize {
            1
        }
        fn min_vc_active_time(
            &self,
            _at: RouterId,
            _out_port: PortId,
            _vnet: spin_types::Vnet,
        ) -> u64 {
            0
        }
        fn downstream_occupancy(
            &self,
            at: RouterId,
            out_port: PortId,
            _vnet: spin_types::Vnet,
        ) -> usize {
            match self.topo.neighbor(at, out_port) {
                Some(peer)
                    if self.topo.dist(peer.router, self.hot) < self.topo.dist(at, self.hot) =>
                {
                    16
                }
                _ => 0,
            }
        }
    }

    /// The detour shape the discipline's 3-VC budget assumes: the Valiant
    /// intermediate lands in a group other than the source's and the
    /// destination's.
    #[test]
    fn valiant_intermediate_lands_in_third_group() {
        let topo = dfp();
        let dst = NodeId(12);
        let view = CongestedToward {
            topo: &topo,
            hot: topo.node_router(dst),
        };
        let r = DfPlusAdaptive::escalation();
        let mut derouted = false;
        for seed in 0..64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = PacketBuilder::new(NodeId(0), dst).build(0);
            r.at_injection(&view, &mut p, &mut rng);
            if let Some(inter) = p.intermediate {
                derouted = true;
                let ig = topo.group_of(topo.node_router(inter));
                assert_ne!(ig, topo.group_of(topo.node_router(NodeId(0))));
                assert_ne!(ig, topo.group_of(topo.node_router(dst)));
                assert_eq!(p.misroutes, 1);
            }
        }
        assert!(derouted, "no seed ever triggered a Valiant detour");
    }

    #[test]
    fn names_distinguish_disciplines() {
        assert_eq!(DfPlusAdaptive::escalation().name(), "dfplus_esc");
        assert_eq!(DfPlusAdaptive::with_spin().name(), "dfplus_spin");
    }
}
