//! Dragonfly routing: UGAL with the paper's Dally-style VC ordering
//! baseline, or with free VC use when SPIN provides deadlock freedom.

use crate::{
    ejection_choice, select_adaptive_prepare, NetworkView, Prepared, RouteChoice, RouteChoices,
    Routing, VcMask,
};
use rand::rngs::StdRng;
use rand::Rng;
use smallvec::smallvec;
use spin_types::{NodeId, Packet, PortId, RouterId, VcId};

/// How UGAL packets may use VCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UgalVcDiscipline {
    /// Dally-theory baseline: the VC index equals the number of global
    /// links already crossed, so the extended CDG is acyclic. Needs 3 VCs
    /// for non-minimal (2 global hops) routing (Table I).
    DallyOrdered,
    /// SPIN configuration: any VC, recovery handles the rare deadlock.
    Free,
}

/// UGAL-L for dragonflies: at the source, choose between the minimal path
/// and a Valiant detour through a random remote group by comparing
/// queue-length x hop-count products estimated from local credits.
#[derive(Debug, Clone, Copy)]
pub struct Ugal {
    /// VC usage rule.
    pub discipline: UgalVcDiscipline,
}

impl Ugal {
    /// The paper's 3-VC deadlock-avoidance baseline.
    pub fn dally_baseline() -> Self {
        Ugal {
            discipline: UgalVcDiscipline::DallyOrdered,
        }
    }

    /// UGAL on top of SPIN: no VC-use restriction.
    pub fn with_spin() -> Self {
        Ugal {
            discipline: UgalVcDiscipline::Free,
        }
    }

    fn vc_mask(&self, pkt: &Packet) -> VcMask {
        match self.discipline {
            UgalVcDiscipline::DallyOrdered => VcMask::only(VcId(pkt.global_hops.min(31) as u8)),
            UgalVcDiscipline::Free => VcMask::all(),
        }
    }
}

impl Routing for Ugal {
    fn name(&self) -> &'static str {
        match self.discipline {
            UgalVcDiscipline::DallyOrdered => "ugal_dally",
            UgalVcDiscipline::Free => "ugal_spin",
        }
    }

    fn at_injection(&self, view: &dyn NetworkView, pkt: &mut Packet, rng: &mut StdRng) {
        let topo = view.topology();
        let src_r = topo.node_router(pkt.src);
        let dst_r = topo.node_router(pkt.dst);
        if src_r == dst_r {
            return;
        }
        // Candidate Valiant intermediate: a random node elsewhere.
        let n = topo.num_nodes() as u32;
        let inter = NodeId(rng.random_range(0..n));
        if inter == pkt.src || inter == pkt.dst {
            return;
        }
        let inter_r = topo.node_router(inter);
        let h_min = topo.dist(src_r, dst_r) as usize;
        let h_nonmin = (topo.dist(src_r, inter_r) + topo.dist(inter_r, dst_r)) as usize;
        let q = |target: RouterId| -> usize {
            topo.minimal_ports(src_r, target)
                .iter()
                .map(|&p| view.downstream_occupancy(src_r, p, pkt.vnet))
                .min()
                .unwrap_or(0)
        };
        let q_min = q(dst_r);
        let q_nonmin = q(inter_r);
        // Classic UGAL-L: detour when the minimal queue estimate scaled by
        // its hop count exceeds the non-minimal one.
        if q_min * h_min > q_nonmin * h_nonmin {
            pkt.intermediate = Some(inter);
            pkt.misroutes = 1;
        }
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(mut eject) = ejection_choice(topo, at, pkt) {
            eject.vc_mask = VcMask::all();
            return Prepared::Done(smallvec![eject]);
        }
        let ports = topo.minimal_ports(at, topo.node_router(pkt.current_target()));
        let mask = self.vc_mask(pkt);
        let options = select_adaptive_prepare(view, at, &ports, pkt.vnet)
            .iter()
            .map(|&p| RouteChoice {
                out_port: p,
                vc_mask: mask,
            })
            .collect();
        // ports[0] is a placeholder finish_prepared overwrites (a
        // non-ejecting packet always has a minimal port).
        Prepared::Pick {
            choices: smallvec![RouteChoice {
                out_port: ports[0],
                vc_mask: mask
            }],
            slot: 0,
            options,
        }
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        let mask = self.vc_mask(pkt);
        topo.minimal_ports(at, topo.node_router(pkt.current_target()))
            .iter()
            .map(|&p| RouteChoice {
                out_port: p,
                vc_mask: mask,
            })
            .collect()
    }

    fn misroute_bound(&self) -> u32 {
        1
    }

    fn min_vcs_required(&self) -> u8 {
        match self.discipline {
            UgalVcDiscipline::DallyOrdered => 3,
            UgalVcDiscipline::Free => 1,
        }
    }

    fn distance_local(&self) -> bool {
        // Both disciplines route over minimal_ports toward the current
        // target; the Dally VC mask keys on the packet's global-hop count,
        // which the derived-CDG walk carries in its state, not on any
        // non-local topology data.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticView;
    use rand::SeedableRng;
    use spin_topology::Topology;
    use spin_types::PacketBuilder;

    fn dfly() -> Topology {
        Topology::dragonfly(2, 4, 2, 9)
    }

    #[test]
    fn minimal_when_uncongested() {
        let topo = dfly();
        let view = StaticView::new(&topo, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = PacketBuilder::new(NodeId(0), NodeId(70)).build(0);
        Ugal::dally_baseline().at_injection(&view, &mut p, &mut rng);
        assert_eq!(p.intermediate, None);
    }

    #[test]
    fn dally_discipline_tracks_global_hops() {
        let u = Ugal::dally_baseline();
        let mut p = PacketBuilder::new(NodeId(0), NodeId(70)).build(0);
        assert_eq!(u.vc_mask(&p), VcMask::only(VcId(0)));
        p.global_hops = 1;
        assert_eq!(u.vc_mask(&p), VcMask::only(VcId(1)));
        p.global_hops = 2;
        assert_eq!(u.vc_mask(&p), VcMask::only(VcId(2)));
    }

    #[test]
    fn spin_discipline_frees_vcs() {
        let u = Ugal::with_spin();
        let mut p = PacketBuilder::new(NodeId(0), NodeId(70)).build(0);
        p.global_hops = 2;
        assert_eq!(u.vc_mask(&p), VcMask::all());
        assert_eq!(u.min_vcs_required(), 1);
        assert_eq!(Ugal::dally_baseline().min_vcs_required(), 3);
    }

    #[test]
    fn routes_reach_destination_minimally() {
        let topo = dfly();
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let u = Ugal::dally_baseline();
        for (s, d) in [(0u32, 71u32), (3, 40), (17, 55)] {
            let p = PacketBuilder::new(NodeId(s), NodeId(d)).build(0);
            let mut at = topo.node_router(NodeId(s));
            let dst_r = topo.node_router(NodeId(d));
            let mut hops = 0;
            while at != dst_r {
                let c = u.route(&view, at, PortId(0), &p, &mut rng);
                at = topo.neighbor(at, c[0].out_port).unwrap().router;
                hops += 1;
                assert!(hops <= 3, "dragonfly minimal exceeds 3 hops");
            }
        }
    }

    #[test]
    fn names_distinguish_disciplines() {
        assert_eq!(Ugal::dally_baseline().name(), "ugal_dally");
        assert_eq!(Ugal::with_spin().name(), "ugal_spin");
    }
}
