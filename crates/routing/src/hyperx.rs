//! HyperX routing: deterministic dimension-order and adaptive
//! dimension-agnostic minimal (DAL-style) with the VC-escalation
//! discipline of the low-diameter VC-management literature, or free VC use
//! when SPIN provides deadlock freedom.
//!
//! In a HyperX every dimension is all-to-all, so a minimal route corrects
//! each unaligned dimension with exactly one hop. The escalation
//! discipline keys the VC class on how many dimensions have already been
//! aligned — a quantity derivable from the packet's *position* alone,
//! which keeps the discipline visible to the derived-CDG static walk (the
//! walk does not track per-packet hop counters).
//!
//! Both algorithms assume an intact lattice (like XY on the mesh): they
//! steer through [`Topology::hyperx_port`], which names ports by
//! coordinate, so they must not be combined with runtime link faults.
//! Fault campaigns on HyperX use the topology-agnostic FAvORS algorithms.

use crate::{
    ejection_choice, select_adaptive_prepare, NetworkView, Prepared, RouteChoice, RouteChoices,
    Routing, VcMask,
};
use smallvec::smallvec;
use spin_topology::{PortVec, Topology};
use spin_types::{Packet, PortId, RouterId, VcId};

/// How HyperX adaptive packets may use VCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HyperXVcDiscipline {
    /// Escalation baseline: the VC index equals the number of dimensions
    /// already aligned, so every hop requests a strictly higher VC class
    /// and the CDG is acyclic. Needs `L` VCs on an `L`-dimensional HyperX.
    Escalation,
    /// SPIN configuration: any VC, recovery handles the rare deadlock.
    Free,
}

/// Deterministic dimension-order routing for HyperX: correct the lowest
/// unaligned dimension first, jumping directly to the destination
/// coordinate (one hop per dimension). Deadlock-free with a single VC —
/// dependencies only flow from lower-dimension channels to
/// higher-dimension ones, and no packet takes two hops in one dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct HyperXDor;

impl HyperXDor {
    fn choice(topo: &Topology, at: RouterId, tgt: RouterId) -> RouteChoice {
        let ca = topo.hyperx_coords(at);
        let ct = topo.hyperx_coords(tgt);
        let (dim, &to) = ca
            .iter()
            .zip(&ct)
            .enumerate()
            .find_map(|(d, (a, t))| (a != t).then_some((d, t)))
            .expect("non-ejecting packet has an unaligned dimension");
        RouteChoice::any_vc(topo.hyperx_port(at, dim, to))
    }
}

impl Routing for HyperXDor {
    fn name(&self) -> &'static str {
        "hx_dor"
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return Prepared::Done(smallvec![eject]);
        }
        let tgt = topo.node_router(pkt.current_target());
        Prepared::Done(smallvec![Self::choice(topo, at, tgt)])
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        let tgt = topo.node_router(pkt.current_target());
        smallvec![Self::choice(topo, at, tgt)]
    }

    fn min_vcs_required(&self) -> u8 {
        1
    }
}

/// Adaptive minimal HyperX routing (DAL-style dimension choice): every
/// unaligned dimension's direct port is a candidate, selected with the
/// FAvORS congestion policy. The VC discipline is either per-hop
/// escalation (the native baseline) or free VC use under SPIN.
#[derive(Debug, Clone, Copy)]
pub struct HyperXDal {
    /// VC usage rule.
    pub discipline: HyperXVcDiscipline,
    /// Dimension count `L` of the lattice this instance was built for —
    /// the escalation discipline's VC budget.
    num_dims: u8,
}

impl HyperXDal {
    /// The native escalation baseline for `topo`; needs `L` VCs.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is not a HyperX.
    pub fn escalation(topo: &Topology) -> Self {
        HyperXDal {
            discipline: HyperXVcDiscipline::Escalation,
            num_dims: topo.hyperx_dims().len() as u8,
        }
    }

    /// Adaptive HyperX on top of SPIN: no VC-use restriction.
    pub fn with_spin() -> Self {
        HyperXDal {
            discipline: HyperXVcDiscipline::Free,
            num_dims: 1,
        }
    }

    /// Candidate minimal ports: one per unaligned dimension, each jumping
    /// directly to the destination coordinate.
    fn candidates(topo: &Topology, at: RouterId, tgt: RouterId) -> PortVec {
        let ca = topo.hyperx_coords(at);
        let ct = topo.hyperx_coords(tgt);
        ca.iter()
            .zip(&ct)
            .enumerate()
            .filter(|(_, (a, t))| a != t)
            .map(|(d, (_, &t))| topo.hyperx_port(at, d, t))
            .collect()
    }

    /// The VC mask for a packet at `at` heading to `tgt`: the escalation
    /// class is the number of dimensions already aligned, so each hop
    /// requests a strictly higher class than the one it holds.
    fn vc_mask(&self, topo: &Topology, at: RouterId, tgt: RouterId) -> VcMask {
        match self.discipline {
            HyperXVcDiscipline::Escalation => {
                let ca = topo.hyperx_coords(at);
                let ct = topo.hyperx_coords(tgt);
                let unaligned = ca.iter().zip(&ct).filter(|(a, t)| a != t).count();
                let aligned = ca.len().saturating_sub(unaligned);
                VcMask::only(VcId(aligned.min(31) as u8))
            }
            HyperXVcDiscipline::Free => VcMask::all(),
        }
    }
}

impl Routing for HyperXDal {
    fn name(&self) -> &'static str {
        match self.discipline {
            HyperXVcDiscipline::Escalation => "hx_dal_esc",
            HyperXVcDiscipline::Free => "hx_dal_spin",
        }
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return Prepared::Done(smallvec![eject]);
        }
        let tgt = topo.node_router(pkt.current_target());
        let ports = Self::candidates(topo, at, tgt);
        let mask = self.vc_mask(topo, at, tgt);
        let options = select_adaptive_prepare(view, at, &ports, pkt.vnet)
            .iter()
            .map(|&p| RouteChoice {
                out_port: p,
                vc_mask: mask,
            })
            .collect();
        // ports[0] is a placeholder finish_prepared overwrites (a
        // non-ejecting packet always has an unaligned dimension).
        Prepared::Pick {
            choices: smallvec![RouteChoice {
                out_port: ports[0],
                vc_mask: mask,
            }],
            slot: 0,
            options,
        }
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        let tgt = topo.node_router(pkt.current_target());
        let mask = self.vc_mask(topo, at, tgt);
        Self::candidates(topo, at, tgt)
            .iter()
            .map(|&p| RouteChoice {
                out_port: p,
                vc_mask: mask,
            })
            .collect()
    }

    fn min_vcs_required(&self) -> u8 {
        match self.discipline {
            HyperXVcDiscipline::Escalation => self.num_dims,
            HyperXVcDiscipline::Free => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticView;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spin_types::{NodeId, PacketBuilder};

    fn hx() -> Topology {
        Topology::hyperx(&[3, 3, 3], 1)
    }

    #[test]
    fn dor_corrects_lowest_dimension_first() {
        let topo = hx();
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(0);
        // Node 0 is at (0,0,0); node 26 at (2,2,2).
        let p = PacketBuilder::new(NodeId(0), NodeId(26)).build(0);
        let c = HyperXDor.route(&view, RouterId(0), PortId(0), &p, &mut rng);
        assert_eq!(c.len(), 1);
        let peer = topo.neighbor(RouterId(0), c[0].out_port).unwrap();
        assert_eq!(topo.hyperx_coords(peer.router).to_vec(), vec![2, 0, 0]);
    }

    #[test]
    fn dor_reaches_destination_in_unaligned_dim_hops() {
        let topo = hx();
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(1);
        for (s, d) in [(0u32, 26u32), (4, 22), (13, 5), (1, 0)] {
            let p = PacketBuilder::new(NodeId(s), NodeId(d)).build(0);
            let mut at = topo.node_router(NodeId(s));
            let dst_r = topo.node_router(NodeId(d));
            let want = topo.dist(at, dst_r);
            let mut hops = 0;
            while at != dst_r {
                let c = HyperXDor.route(&view, at, PortId(0), &p, &mut rng);
                at = topo.neighbor(at, c[0].out_port).unwrap().router;
                hops += 1;
            }
            assert_eq!(hops, want, "dor path length {s}->{d}");
        }
    }

    #[test]
    fn dal_offers_every_unaligned_dimension() {
        let topo = hx();
        let view = StaticView::new(&topo, 3);
        let dal = HyperXDal::escalation(&topo);
        let p = PacketBuilder::new(NodeId(0), NodeId(26)).build(0);
        let alts = dal.alternatives(&view, RouterId(0), PortId(0), &p);
        assert_eq!(alts.len(), 3);
        // All three dims unaligned => 0 aligned => VC class 0.
        for a in &alts {
            assert_eq!(a.vc_mask, VcMask::only(VcId(0)));
        }
        // One dim aligned (router 2 = (2,0,0) toward (2,2,2)): class 1.
        let alts = dal.alternatives(&view, RouterId(2), PortId(1), &p);
        assert_eq!(alts.len(), 2);
        for a in &alts {
            assert_eq!(a.vc_mask, VcMask::only(VcId(1)));
        }
    }

    #[test]
    fn dal_vc_budget_tracks_dimensions() {
        let topo = hx();
        assert_eq!(HyperXDal::escalation(&topo).min_vcs_required(), 3);
        assert_eq!(HyperXDal::with_spin().min_vcs_required(), 1);
        let flat = Topology::hyperx(&[4], 1);
        assert_eq!(HyperXDal::escalation(&flat).min_vcs_required(), 1);
    }

    #[test]
    fn names_distinguish_disciplines() {
        let topo = hx();
        assert_eq!(HyperXDor.name(), "hx_dor");
        assert_eq!(HyperXDal::escalation(&topo).name(), "hx_dal_esc");
        assert_eq!(HyperXDal::with_spin().name(), "hx_dal_spin");
    }
}
