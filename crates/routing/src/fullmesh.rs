//! The HOTI'25-style VC-free full-mesh scheme: direct single-hop routing
//! with an optional congestion deroute through an *ascending* intermediate
//! router, deadlock-free with a single VC and no SPIN.
//!
//! Every router pair in a full mesh is directly linked, so a packet either
//! takes its direct link or — only at the source, only when the direct
//! link's downstream VCs are all busy — derouted through one intermediate
//! router `i` with a *higher index* than the source. The ascending rule is
//! what makes zero VCs (one VC, no restriction classes) sufficient: a
//! channel dependency from link `a→b` onto link `b→c` only arises when `b`
//! was the deroute intermediate of a packet injected at `a`, which
//! requires `b > a`; around any would-be cycle the first endpoints would
//! have to ascend strictly forever, so the CDG is acyclic.
//!
//! The deroute is *positional*: whether it is on offer depends only on
//! where the packet sits (its input port is still the source NIC's local
//! attach port), not on per-packet counters or a recorded intermediate.
//! [`Routing::alternatives`] is therefore an exact OR-set, and the
//! derived-CDG walk sees the scheme through its ordinary single-pass walk
//! — [`Routing::valiant_intermediate`] is `false` even though the
//! misroute bound is 1.
//!
//! **Runtime faults.** When the direct link to the destination is dead the
//! scheme deroutes through an ascending live intermediate from *any*
//! input port (not just the source NIC), restricted to intermediates whose
//! own direct link to the destination is alive. Acyclicity survives: a
//! dependency from channel `a→b` onto any channel out of `b` still only
//! arises when `b` was a (congestion or fault) deroute intermediate, which
//! requires `b > a`, so around any would-be cycle the first endpoints
//! ascend strictly forever. Fault deroutes also strictly ascend per hop,
//! so every path still terminates. On an intact full mesh the fault branch
//! never engages and the CDG is byte-identical to the original scheme.
//! When no live ascending intermediate exists (e.g. the highest-index
//! router loses its direct link) the scheme keeps the dead direct port as
//! its only choice — a *stranded* state the fabric manager's admission
//! check detects and rejects before such a kill ever goes live.

use crate::{ejection_choice, NetworkView, Prepared, RouteChoice, RouteChoices, Routing};
use smallvec::{smallvec, SmallVec};
use spin_types::{Packet, PortId, RouterId};

/// Direct full-mesh routing with ascending-intermediate congestion
/// deroutes; deadlock-free on one VC without SPIN.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullMeshDeroute;

impl FullMeshDeroute {
    /// Deroute candidate ports at source router `at`: the live direct link
    /// to every router with a higher index, excluding the destination. (On
    /// an intact full mesh the liveness filter passes everything.)
    fn deroute_ports(
        topo: &spin_topology::Topology,
        at: RouterId,
        dst_r: RouterId,
    ) -> impl Iterator<Item = PortId> + '_ {
        (at.0 + 1..topo.num_routers() as u32)
            .map(RouterId)
            .filter(move |&i| i != dst_r)
            .map(move |i| topo.full_mesh_port(at, i))
            .filter(move |&p| topo.neighbor(at, p).is_some())
    }

    /// Fault-deroute candidate ports at `at` when the direct link to
    /// `dst_r` is dead: ascending live intermediates whose own direct link
    /// to `dst_r` is still up (so the next hop terminates directly).
    fn fault_deroute_ports(
        topo: &spin_topology::Topology,
        at: RouterId,
        dst_r: RouterId,
    ) -> impl Iterator<Item = PortId> + '_ {
        (at.0 + 1..topo.num_routers() as u32)
            .map(RouterId)
            .filter(move |&i| i != dst_r)
            .filter(move |&i| topo.neighbor(i, topo.full_mesh_port(i, dst_r)).is_some())
            .map(move |i| topo.full_mesh_port(at, i))
            .filter(move |&p| topo.neighbor(at, p).is_some())
    }
}

impl Routing for FullMeshDeroute {
    fn name(&self) -> &'static str {
        "fm_deroute"
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return Prepared::Done(smallvec![eject]);
        }
        let dst_r = topo.node_router(pkt.current_target());
        let direct = topo.full_mesh_port(at, dst_r);
        if topo.neighbor(at, direct).is_none() {
            // The direct link is dead: fault-deroute through an ascending
            // live intermediate, preferring ones with a free downstream VC.
            let live: SmallVec<[RouteChoice; 8]> = Self::fault_deroute_ports(topo, at, dst_r)
                .map(RouteChoice::any_vc)
                .collect();
            let free: SmallVec<[RouteChoice; 8]> = live
                .iter()
                .copied()
                .filter(|c| view.has_free_vc_downstream(at, c.out_port, pkt.vnet))
                .collect();
            let options = if free.is_empty() { live } else { free };
            if let Some(&first) = options.first() {
                return Prepared::Pick {
                    choices: smallvec![first],
                    slot: 0,
                    options,
                };
            }
            // Stranded: no live ascending intermediate. Keep the dead
            // direct port — admission control rejects kills that create
            // this state, so a live network never reaches it.
            return Prepared::Done(smallvec![RouteChoice::any_vc(direct)]);
        }
        // Congestion deroutes are legal only while the packet still sits in
        // its source NIC (local input port) and engage only when the direct
        // link has no free downstream VC. An empty candidate list falls
        // through to the direct port with no draw — exactly like `choose`
        // on an empty slice in the fused path.
        if topo.port(at, in_port).is_local() && !view.has_free_vc_downstream(at, direct, pkt.vnet) {
            let options: SmallVec<[RouteChoice; 8]> = Self::deroute_ports(topo, at, dst_r)
                .filter(|&p| view.has_free_vc_downstream(at, p, pkt.vnet))
                .map(RouteChoice::any_vc)
                .collect();
            if !options.is_empty() {
                return Prepared::Pick {
                    choices: smallvec![options[0]],
                    slot: 0,
                    options,
                };
            }
        }
        Prepared::Done(smallvec![RouteChoice::any_vc(direct)])
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        let dst_r = topo.node_router(pkt.current_target());
        let direct = topo.full_mesh_port(at, dst_r);
        if topo.neighbor(at, direct).is_none() {
            let out: RouteChoices = Self::fault_deroute_ports(topo, at, dst_r)
                .map(RouteChoice::any_vc)
                .collect();
            if !out.is_empty() {
                return out;
            }
            // Stranded witness: only the dead direct port, which the
            // derived-CDG walk skips — the state counts as stranded.
            return smallvec![RouteChoice::any_vc(direct)];
        }
        let mut out: RouteChoices = smallvec![RouteChoice::any_vc(direct)];
        if topo.port(at, in_port).is_local() {
            out.extend(Self::deroute_ports(topo, at, dst_r).map(RouteChoice::any_vc));
        }
        out
    }

    fn misroute_bound(&self) -> u32 {
        1 // at most one deroute hop, decided at the source
    }

    fn valiant_intermediate(&self) -> bool {
        false // positional deroute: no Packet::intermediate involved
    }

    fn min_vcs_required(&self) -> u8 {
        1 // the ascending rule alone keeps the CDG acyclic
    }

    fn distance_local(&self) -> bool {
        // Every liveness check inspects links incident to `at` or to the
        // target's router, both covered by the incremental walk's
        // dirty-region contract.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticView;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spin_topology::Topology;
    use spin_types::{NodeId, PacketBuilder};

    fn fm() -> Topology {
        Topology::full_mesh(8, 1).unwrap()
    }

    #[test]
    fn direct_when_uncongested() {
        let topo = fm();
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let p = PacketBuilder::new(NodeId(2), NodeId(5)).build(0);
        let c = FullMeshDeroute.route(&view, RouterId(2), PortId(0), &p, &mut rng);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].out_port, topo.full_mesh_port(RouterId(2), RouterId(5)));
    }

    #[test]
    fn deroutes_ascend_under_congestion() {
        let topo = fm();
        let view = StaticView::new(&topo, 0); // every link busy
        let mut rng = StdRng::seed_from_u64(1);
        let p = PacketBuilder::new(NodeId(2), NodeId(5)).build(0);
        // All deroute candidates are busy too, so the router falls back to
        // the direct port rather than stalling forever.
        let c = FullMeshDeroute.route(&view, RouterId(2), PortId(0), &p, &mut rng);
        assert_eq!(c[0].out_port, topo.full_mesh_port(RouterId(2), RouterId(5)));
    }

    /// The OR-set at the source is direct + every *ascending* intermediate;
    /// mid-route (network input port) it collapses to the direct link.
    #[test]
    fn alternatives_are_positional() {
        let topo = fm();
        let view = StaticView::new(&topo, 1);
        let p = PacketBuilder::new(NodeId(2), NodeId(5)).build(0);
        let at = RouterId(2);
        let src_alts = FullMeshDeroute.alternatives(&view, at, PortId(0), &p);
        // Direct + intermediates {3, 4, 6, 7} (ascending, minus dst 5).
        assert_eq!(src_alts.len(), 5);
        for a in &src_alts {
            let peer = topo.neighbor(at, a.out_port).unwrap().router;
            assert!(peer == RouterId(5) || peer.0 > at.0);
            assert_ne!(peer, at);
        }
        // Arrived through a network port: direct only.
        let net_in = topo.full_mesh_port(at, RouterId(0));
        let mid_alts = FullMeshDeroute.alternatives(&view, at, net_in, &p);
        assert_eq!(mid_alts.len(), 1);
        assert_eq!(mid_alts[0].out_port, topo.full_mesh_port(at, RouterId(5)));
    }

    #[test]
    fn highest_router_has_no_deroutes() {
        let topo = fm();
        let view = StaticView::new(&topo, 0);
        let p = PacketBuilder::new(NodeId(7), NodeId(3)).build(0);
        let alts = FullMeshDeroute.alternatives(&view, RouterId(7), PortId(0), &p);
        assert_eq!(alts.len(), 1, "router n-1 can only route directly");
    }

    #[test]
    fn scheme_is_vc_free_and_positional() {
        assert_eq!(FullMeshDeroute.min_vcs_required(), 1);
        assert_eq!(FullMeshDeroute.misroute_bound(), 1);
        assert!(!FullMeshDeroute.valiant_intermediate());
        assert_eq!(FullMeshDeroute.name(), "fm_deroute");
    }

    #[test]
    fn dead_direct_link_deroutes_ascending_from_any_port() {
        let mut topo = fm();
        let dead = topo.full_mesh_port(RouterId(2), RouterId(5));
        topo.fail_link(RouterId(2), dead).unwrap();
        let view = StaticView::new(&topo, 1);
        let p = PacketBuilder::new(NodeId(2), NodeId(5)).build(0);
        // Even from a *network* input port the dead direct link forces an
        // ascending deroute whose intermediate still reaches 5 directly.
        let net_in = topo.full_mesh_port(RouterId(2), RouterId(0));
        let alts = FullMeshDeroute.alternatives(&view, RouterId(2), net_in, &p);
        assert!(!alts.is_empty());
        for a in &alts {
            let peer = topo.neighbor(RouterId(2), a.out_port).unwrap().router;
            assert!(peer.0 > 2 && peer != RouterId(5), "ascending intermediate");
            let onward = topo.full_mesh_port(peer, RouterId(5));
            assert!(topo.neighbor(peer, onward).is_some(), "live onward link");
        }
        // The live route also terminates: at most two extra hops.
        let mut rng = StdRng::seed_from_u64(9);
        let c = FullMeshDeroute.route(&view, RouterId(2), net_in, &p, &mut rng);
        let mid = topo.neighbor(RouterId(2), c[0].out_port).unwrap();
        let c2 = FullMeshDeroute.route(&view, mid.router, mid.port, &p, &mut rng);
        let end = topo.neighbor(mid.router, c2[0].out_port).unwrap();
        assert_eq!(end.router, RouterId(5));
    }

    #[test]
    fn highest_router_dead_direct_is_stranded_witness() {
        let mut topo = fm();
        let dead = topo.full_mesh_port(RouterId(7), RouterId(3));
        topo.fail_link(RouterId(7), dead).unwrap();
        let view = StaticView::new(&topo, 1);
        let p = PacketBuilder::new(NodeId(7), NodeId(3)).build(0);
        // No ascending intermediate exists above router 7: the OR-set
        // keeps the dead direct port as a stranded witness.
        let alts = FullMeshDeroute.alternatives(&view, RouterId(7), PortId(0), &p);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].out_port, dead);
        assert!(topo.neighbor(RouterId(7), dead).is_none());
    }

    #[test]
    fn intact_mesh_never_takes_fault_branch() {
        let topo = fm();
        assert_eq!(
            FullMeshDeroute::fault_deroute_ports(&topo, RouterId(2), RouterId(5)).count(),
            FullMeshDeroute::deroute_ports(&topo, RouterId(2), RouterId(5)).count()
        );
        assert!(FullMeshDeroute.distance_local());
    }

    #[test]
    fn every_route_terminates_within_two_hops() {
        let topo = fm();
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(3);
        for s in 0..8u32 {
            for d in 0..8u32 {
                if s == d {
                    continue;
                }
                let p = PacketBuilder::new(NodeId(s), NodeId(d)).build(0);
                let mut at = topo.node_router(NodeId(s));
                let mut in_port = PortId(0);
                let mut hops = 0;
                while at != topo.node_router(NodeId(d)) {
                    let c = FullMeshDeroute.route(&view, at, in_port, &p, &mut rng);
                    let peer = topo.neighbor(at, c[0].out_port).unwrap();
                    at = peer.router;
                    in_port = peer.port;
                    hops += 1;
                    assert!(hops <= 2, "deroute path exceeds two hops");
                }
            }
        }
    }
}
