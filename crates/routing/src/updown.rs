//! Up*/down* routing: the classic deadlock-free routing for irregular
//! topologies (Autonet), used here as the avoidance baseline that SPIN's
//! topology-agnostic recovery replaces.
//!
//! A BFS spanning tree roots the network; every link direction is labelled
//! *up* (towards the root: lower level, ties broken by router id) or
//! *down*. A legal path is zero or more up hops followed by zero or more
//! down hops — the down→up turn is forbidden, which makes the CDG acyclic
//! and the routing deadlock-free with a single VC, at the cost of
//! concentrating traffic near the root.

use crate::{
    ejection_choice, select_adaptive_prepare, NetworkView, Prepared, RouteChoice, RouteChoices,
    Routing,
};
use smallvec::{smallvec, SmallVec};
use spin_topology::Topology;
use spin_types::{Packet, PortId, RouterId};

/// Phase of an up*/down* walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Still allowed to climb (no down hop taken yet at this point).
    Up,
    /// Committed to descending.
    Down,
}

/// Up*/down* routing over a precomputed spanning-tree labelling.
///
/// Construct once per topology with [`UpDown::new`]; distances for both
/// phases are precomputed so routing decisions are table lookups.
#[derive(Debug, Clone)]
pub struct UpDown {
    levels: Vec<u32>,
    /// `dist[phase][router][dst]`: minimal remaining hops from (router,
    /// phase) to dst under the up*/down* rule; `u32::MAX` if unreachable.
    dist: [Vec<u32>; 2],
    n: usize,
}

impl UpDown {
    /// Computes the spanning-tree labelling and phase-distance tables for
    /// `topo` (root = router 0).
    ///
    /// # Panics
    ///
    /// Panics if `topo` is malformed: a network port must connect to a
    /// peer (dead ports are excluded by `network_ports`).
    pub fn new(topo: &Topology) -> Self {
        let n = topo.num_routers();
        // BFS levels from the root.
        let mut levels = vec![u32::MAX; n];
        levels[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(r) = queue.pop_front() {
            for p in topo.network_ports(RouterId(r as u32)) {
                let peer = topo.neighbor(RouterId(r as u32), p).expect("network port");
                let pr = peer.router.index();
                if levels[pr] == u32::MAX {
                    levels[pr] = levels[r] + 1;
                    queue.push_back(pr);
                }
            }
        }
        let up = |from: usize, to: usize| {
            levels[to] < levels[from] || (levels[to] == levels[from] && to < from)
        };
        // Backward BFS per destination over the phase graph:
        // (r, Up) -> (s, Up) via up edge r->s; (r, Up) -> (s, Down) via
        // down edge; (r, Down) -> (s, Down) via down edge.
        let mut dist = [vec![u32::MAX; n * n], vec![u32::MAX; n * n]];
        for dst in 0..n {
            // dist from any phase at dst itself is 0.
            dist[0][dst * n + dst] = 0;
            dist[1][dst * n + dst] = 0;
            // BFS over predecessors: state (r, phase); predecessor states
            // are (q, phase') that can step to (r, phase).
            let mut queue = std::collections::VecDeque::new();
            queue.push_back((dst, Phase::Up));
            queue.push_back((dst, Phase::Down));
            while let Some((r, phase)) = queue.pop_front() {
                let d = dist[phase as usize][dst * n + r];
                for p in topo.network_ports(RouterId(r as u32)) {
                    let q = topo
                        .neighbor(RouterId(r as u32), p)
                        .expect("network port")
                        .router
                        .index();
                    // Edge q -> r exists (links are bidirectional). Which
                    // predecessor states can use it to reach (r, phase)?
                    let q_to_r_up = up(q, r);
                    let preds: SmallVec<[Phase; 2]> = match (q_to_r_up, phase) {
                        // Climbing keeps phase Up; only Up can climb.
                        (true, Phase::Up) => smallvec![Phase::Up],
                        // A down edge into phase Down can come from Up
                        // (first descent) or Down (continuing).
                        (false, Phase::Down) => smallvec![Phase::Up, Phase::Down],
                        _ => smallvec![],
                    };
                    for pred in preds {
                        let slot = &mut dist[pred as usize][dst * n + q];
                        if *slot > d + 1 {
                            *slot = d + 1;
                            queue.push_back((q, pred));
                        }
                    }
                }
            }
        }
        UpDown { levels, dist, n }
    }

    fn phase_of_arrival(&self, topo: &Topology, at: RouterId, in_port: PortId) -> Phase {
        match topo.neighbor(at, in_port) {
            // Injected locally: free to climb.
            None => Phase::Up,
            Some(peer) => {
                let from = peer.router.index();
                let to = at.index();
                let moved_up = self.levels[to] < self.levels[from]
                    || (self.levels[to] == self.levels[from] && to < from);
                if moved_up {
                    Phase::Up
                } else {
                    Phase::Down
                }
            }
        }
    }

    fn remaining(&self, phase: Phase, r: usize, dst: usize) -> u32 {
        self.dist[phase as usize][dst * self.n + r]
    }
}

impl Routing for UpDown {
    fn name(&self) -> &'static str {
        "up_down"
    }

    fn on_topology_change(&mut self, topo: &Topology) {
        // Levels and the per-phase distance tables are both derived from
        // the link set, so a runtime kill/heal invalidates everything:
        // rebuild the spanning tree from scratch. (The root stays router
        // 0; a kill that would disconnect it is rejected upstream.)
        *self = UpDown::new(topo);
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let c = self.alternatives(view, at, in_port, pkt);
        if c.len() <= 1 {
            return Prepared::Done(c);
        }
        // Every alternative is `any_vc`, so re-wrapping the selected port
        // reproduces exactly what the fused path's `retain` kept. The
        // candidate list is non-empty, so the finish step always draws once
        // and overwrites the c[0] placeholder.
        let ports: SmallVec<[PortId; 8]> = c.iter().map(|x| x.out_port).collect();
        let options = select_adaptive_prepare(view, at, &ports, pkt.vnet)
            .iter()
            .map(|&p| RouteChoice::any_vc(p))
            .collect();
        Prepared::Pick {
            choices: smallvec![c[0]],
            slot: 0,
            options,
        }
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        let dst = topo.node_router(pkt.current_target()).index();
        let mut phase = self.phase_of_arrival(topo, at, in_port);
        let mut here = self.remaining(phase, at.index(), dst);
        if here == u32::MAX {
            // A reconfiguration re-labelled the tree while this packet was
            // in flight: its arrival edge may now read as Down with the
            // destination reachable only by climbing. Restart the walk
            // from here as if freshly injected. The transient down->up
            // turn sits outside the steady-state CDG the fabric manager
            // certified — which is exactly the window the live wait-graph
            // cross-check watches during reconfiguration.
            phase = Phase::Up;
            here = self.remaining(phase, at.index(), dst);
        }
        debug_assert_ne!(here, u32::MAX, "up*/down* cannot reach the destination");
        let mut out = RouteChoices::new();
        for p in topo.network_ports(at) {
            let peer = topo.neighbor(at, p).expect("network port");
            let to = peer.router.index();
            let up_hop = self.levels[to] < self.levels[at.index()]
                || (self.levels[to] == self.levels[at.index()] && to < at.index());
            // Phase transition: Up stays Up on up hops, becomes Down on
            // down hops; Down may only take down hops.
            let next_phase = match (phase, up_hop) {
                (Phase::Up, true) => Phase::Up,
                (_, false) => Phase::Down,
                (Phase::Down, true) => continue, // forbidden down->up turn
            };
            let rem = self.remaining(next_phase, to, dst);
            if rem != u32::MAX && rem + 1 == here {
                out.push(RouteChoice::any_vc(p));
            }
        }
        debug_assert!(
            !out.is_empty(),
            "no legal up*/down* hop despite finite distance"
        );
        out
    }

    fn min_vcs_required(&self) -> u8 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticView;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spin_types::{NodeId, PacketBuilder};

    fn walk_to(topo: &Topology, ud: &UpDown, src: u32, dst: u32) -> u32 {
        let view = StaticView::new(topo, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let pkt = PacketBuilder::new(NodeId(src), NodeId(dst)).build(0);
        let mut at = topo.node_attach(NodeId(src));
        let mut in_port = at.port;
        let mut hops = 0;
        while at.router != topo.node_router(NodeId(dst)) {
            let c = ud.route(&view, at.router, in_port, &pkt, &mut rng);
            let peer = topo
                .neighbor(at.router, c[0].out_port)
                .expect("network hop");
            in_port = peer.port;
            at = peer;
            hops += 1;
            assert!(hops <= 4 * topo.num_routers() as u32, "walk diverged");
        }
        hops
    }

    #[test]
    fn reaches_every_destination_on_irregular_graphs() {
        for seed in [1u64, 7, 42] {
            let topo = Topology::random_connected(14, 8, 1, seed).unwrap();
            let ud = UpDown::new(&topo);
            for s in 0..14u32 {
                for d in 0..14u32 {
                    if s != d {
                        walk_to(&topo, &ud, s, d);
                    }
                }
            }
        }
    }

    #[test]
    fn paths_never_turn_down_then_up() {
        let topo = Topology::random_connected(12, 6, 1, 5).unwrap();
        let ud = UpDown::new(&topo);
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for s in 0..12u32 {
            for d in 0..12u32 {
                if s == d {
                    continue;
                }
                let pkt = PacketBuilder::new(NodeId(s), NodeId(d)).build(0);
                let mut at = topo.node_attach(NodeId(s));
                let mut in_port = at.port;
                let mut descended = false;
                loop {
                    if at.router == topo.node_router(NodeId(d)) {
                        break;
                    }
                    let c = ud.route(&view, at.router, in_port, &pkt, &mut rng);
                    let peer = topo.neighbor(at.router, c[0].out_port).unwrap();
                    let went_up = ud.levels[peer.router.index()] < ud.levels[at.router.index()]
                        || (ud.levels[peer.router.index()] == ud.levels[at.router.index()]
                            && peer.router.index() < at.router.index());
                    if went_up {
                        assert!(
                            !descended,
                            "down->up turn from {} to {}",
                            at.router, peer.router
                        );
                    } else {
                        descended = true;
                    }
                    in_port = peer.port;
                    at = peer;
                }
            }
        }
    }

    #[test]
    fn updown_cdg_is_acyclic() {
        // The formal property: channels (directed links) with dependencies
        // allowed by the up*/down* turn rule form an acyclic graph.
        let topo = Topology::random_connected(16, 10, 1, 11).unwrap();
        let ud = UpDown::new(&topo);
        let mut cdg = spin_deadlock::Cdg::new();
        let up = |from: usize, to: usize| {
            ud.levels[to] < ud.levels[from] || (ud.levels[to] == ud.levels[from] && to < from)
        };
        for (a, b) in topo.links() {
            // Channel a->b; next channel b->c legal unless (a->b is down)
            // and (b->c is up).
            for p in topo.network_ports(b.router) {
                let c = topo.neighbor(b.router, p).unwrap();
                if c.router == a.router {
                    continue; // u-turn
                }
                let first_down = !up(a.router.index(), b.router.index());
                let second_up = up(b.router.index(), c.router.index());
                if first_down && second_up {
                    continue;
                }
                cdg.add_dependency((a.router, b.router), (b.router, c.router));
            }
        }
        assert!(cdg.is_acyclic(), "up*/down* CDG has a cycle");
    }

    #[test]
    fn works_on_regular_topologies_too() {
        let topo = Topology::mesh(4, 4);
        let ud = UpDown::new(&topo);
        for (s, d) in [(0u32, 15u32), (15, 0), (3, 12)] {
            let hops = walk_to(&topo, &ud, s, d);
            // Up*/down* may be non-minimal but must stay bounded.
            assert!(hops >= topo.dist(topo.node_router(NodeId(s)), topo.node_router(NodeId(d))));
        }
    }

    #[test]
    fn requires_single_vc_only() {
        let topo = Topology::ring(5);
        let ud = UpDown::new(&topo);
        assert_eq!(ud.min_vcs_required(), 1);
        assert_eq!(ud.misroute_bound(), 0);
        assert_eq!(ud.name(), "up_down");
    }
}
