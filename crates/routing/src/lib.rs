//! Routing algorithms for the SPIN reproduction.
//!
//! Every algorithm the paper evaluates is here:
//!
//! | Design (Table III)    | Type in this crate                           |
//! |-----------------------|----------------------------------------------|
//! | XY / DOR              | [`XyRouting`]                                |
//! | West-first (Dally)    | [`WestFirst`]                                |
//! | Escape VC (Duato)     | [`EscapeVc`]                                 |
//! | Minimal adaptive      | [`FavorsMinimal`] (same selection policy)    |
//! | Static Bubble routing | [`ReservedVcAdaptive`]                       |
//! | Dragonfly minimal     | [`FavorsMinimal`] (topology-agnostic)        |
//! | UGAL (Dally VCs)      | [`Ugal`]                                     |
//! | **FAvORS** min / nmin | [`FavorsMinimal`] / [`FavorsNonMinimal`]     |
//!
//! The low-diameter topology expansion adds each new family's native
//! discipline (see `docs/TOPOLOGIES.md`):
//!
//! | Topology   | Native discipline                | Type in this crate   |
//! |------------|----------------------------------|----------------------|
//! | HyperX     | Dimension-order (1 VC)           | [`HyperXDor`]        |
//! | HyperX     | Adaptive + VC escalation (L VCs) | [`HyperXDal`]        |
//! | Dragonfly+ | Adaptive + per-global-hop VCs    | [`DfPlusAdaptive`]   |
//! | Full mesh  | Ascending deroute, VC-free       | [`FullMeshDeroute`]  |
//!
//! Algorithms are *stateless* policy objects: the simulator calls
//! [`Routing::route`] every cycle a head packet waits, passing a
//! [`NetworkView`] that exposes the congestion state an on-chip router can
//! legitimately observe (free VCs downstream via credits, VC busy time,
//! downstream occupancy). Adaptive algorithms therefore re-evaluate their
//! choice as congestion shifts, exactly as hardware would.
//!
//! # Examples
//!
//! Route a packet across a mesh with XY routing using a static view:
//!
//! ```
//! use spin_routing::{Routing, StaticView, XyRouting};
//! use spin_topology::Topology;
//! use spin_types::{NodeId, PacketBuilder, PortId};
//! use rand::SeedableRng;
//!
//! let topo = Topology::mesh(4, 4);
//! let view = StaticView::new(&topo, 1);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let pkt = PacketBuilder::new(NodeId(0), NodeId(3)).build(0);
//! let xy = XyRouting;
//! // From router 0 an XY route to node 3 heads East (port 2).
//! let choice = xy.route(&view, spin_types::RouterId(0), PortId(0), &pkt, &mut rng);
//! assert_eq!(choice[0].out_port, PortId(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod dfplus;
mod dragonfly;
mod favors;
mod fullmesh;
mod hyperx;
mod mesh;
mod updown;
mod view;

pub use dfplus::{DfPlusAdaptive, DfPlusVcDiscipline};
pub use dragonfly::{Ugal, UgalVcDiscipline};
pub use favors::{FavorsMinimal, FavorsNonMinimal};
pub use fullmesh::FullMeshDeroute;
pub use hyperx::{HyperXDal, HyperXDor, HyperXVcDiscipline};
pub use mesh::{EscapeVc, ReservedVcAdaptive, WestFirst, XyRouting};
pub use updown::UpDown;
pub use view::{NetworkView, StaticView};

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use smallvec::SmallVec;
use spin_topology::Topology;
use spin_types::{Packet, PortId, RouterId, VcId, Vnet};
use std::fmt;

/// A bitmask over the VC indices (within one vnet) a packet may acquire at
/// the downstream input port — the deadlock-avoidance discipline of the
/// routing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcMask(u32);

impl VcMask {
    /// Every VC allowed (SPIN's "no VC-use restriction").
    pub fn all() -> Self {
        VcMask(u32::MAX)
    }

    /// Only VC `vc` allowed.
    pub fn only(vc: VcId) -> Self {
        VcMask(1 << vc.0)
    }

    /// All VCs except `vc`.
    pub fn except(vc: VcId) -> Self {
        VcMask(!(1 << vc.0))
    }

    /// All VCs with index >= `vc` (Dally-style ordering disciplines).
    pub fn at_least(vc: VcId) -> Self {
        VcMask(u32::MAX << vc.0)
    }

    /// Whether `vc` is allowed.
    pub fn contains(self, vc: VcId) -> bool {
        self.0 & (1 << vc.0) != 0
    }

    /// Intersection of two masks.
    pub fn and(self, other: VcMask) -> VcMask {
        VcMask(self.0 & other.0)
    }

    /// True if no VC is allowed.
    pub fn is_empty_for(self, num_vcs: u8) -> bool {
        self.0 & ((1u32 << num_vcs.min(31)) - 1) == 0
    }
}

/// One routing option: an output port plus the VCs the packet may take at
/// the next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteChoice {
    /// The output port.
    pub out_port: PortId,
    /// Allowed downstream VCs.
    pub vc_mask: VcMask,
}

impl RouteChoice {
    /// A choice allowing every VC.
    pub fn any_vc(out_port: PortId) -> Self {
        RouteChoice {
            out_port,
            vc_mask: VcMask::all(),
        }
    }
}

/// Candidate route choices in strict preference order: VC allocation tries
/// them front to back each cycle and takes the first with a free allowed VC.
pub type RouteChoices = SmallVec<[RouteChoice; 4]>;

/// A routing algorithm (policy object, stateless; per-packet state lives in
/// [`Packet`]).
pub trait Routing: fmt::Debug + Send + Sync {
    /// Short name for reports (e.g. `"favors_min"`).
    fn name(&self) -> &'static str;

    /// Source-side decision at injection time (e.g. UGAL / FAvORS-NMin
    /// choosing a Valiant intermediate node). Default: nothing.
    fn at_injection(&self, _view: &dyn NetworkView, _pkt: &mut Packet, _rng: &mut StdRng) {}

    /// Computes the candidate outputs for the head packet of a VC at router
    /// `at` that arrived through `in_port`. Called every cycle the packet
    /// waits; adaptive algorithms may return different choices as congestion
    /// evolves. When the packet's current target node attaches to `at`, the
    /// single choice must be the ejection (local) port.
    ///
    /// Provided: completes [`Routing::route_prepare`] with its (at most
    /// one) uniform draw via [`finish_prepared`].
    fn route(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
        rng: &mut StdRng,
    ) -> RouteChoices {
        finish_prepared(self.route_prepare(view, at, in_port, pkt), rng)
    }

    /// The RNG-free part of [`Routing::route`], split at the single random
    /// draw: everything except the final uniform pick is computed here, and
    /// the draw itself is replayed by [`finish_prepared`]. This lets the
    /// sharded kernel evaluate routes on worker threads (no shared RNG)
    /// and consume the global RNG stream afterwards in exactly the serial
    /// order — the returned [`Prepared`] consumes one `gen_range` draw for
    /// `Pick` and none for `Done`, matching the direct `route` call
    /// draw-for-draw.
    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> Prepared;

    /// The *full* set of legal route choices (not the adaptive selection) —
    /// every outport/VC combination the algorithm could ever pick for this
    /// packet from this router. The ground-truth deadlock detector uses
    /// this OR-set: a packet is only truly deadlocked if every alternative
    /// is blocked.
    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices;

    /// The livelock misroute bound `p` (0 for minimal algorithms); the SPIN
    /// theory's spin bound is `m*p + (m-1)` for a loop of length `m`.
    fn misroute_bound(&self) -> u32 {
        0
    }

    /// Whether misrouting takes the form of a source-chosen Valiant
    /// intermediate recorded in [`Packet::intermediate`]. The derived-CDG
    /// walk needs its two-pass over-approximation exactly for such
    /// algorithms, because the recorded intermediate changes the routing
    /// target mid-flight in a way the walk cannot see. *Positional*
    /// misroutes — deroute choices [`Routing::alternatives`] offers
    /// directly, conditioned only on where the packet sits (e.g. the
    /// full-mesh ascending deroute at the injection port) — are fully
    /// visible to the ordinary single-pass walk and should return `false`
    /// even with a non-zero misroute bound. Defaults to
    /// `misroute_bound() > 0`.
    fn valiant_intermediate(&self) -> bool {
        self.misroute_bound() > 0
    }

    /// Minimum VCs per vnet this algorithm's deadlock discipline requires
    /// when used *without* SPIN (Table I); 1 when the algorithm relies on
    /// SPIN entirely.
    fn min_vcs_required(&self) -> u8;

    /// Called by the simulator after the live topology changed — a link
    /// died or healed at runtime. Algorithms that precompute tables from
    /// the topology (e.g. [up*/down* trees](crate::UpDown)) must rebuild
    /// them here; algorithms that consult the topology live (FAvORS,
    /// which re-reads `minimal_ports`/`dist` every cycle) need nothing,
    /// which is the default.
    fn on_topology_change(&mut self, _topo: &Topology) {}

    /// Whether this algorithm's [`Routing::alternatives`] answer at a given
    /// walk state depends *only* on distance-local topology state: the
    /// static node/coordinate maps, the live port table of `at`, the live
    /// port table of the current target's router, and the BFS distance
    /// column toward that target. When true, the fabric manager's
    /// incremental CDG re-derivation can skip re-walking a destination
    /// whose distance column did not change and whose previous walk never
    /// visited either endpoint router of the changed link — every
    /// `alternatives` call that walk would make returns the same answer.
    ///
    /// Algorithms with precomputed global tables (up*/down* trees), VC
    /// disciplines keyed on coordinates of a lattice assumed intact
    /// (HyperX, dragonfly+), or any other non-local state must leave this
    /// `false` (the default): the manager then falls back to full
    /// re-derivation on every fault event, which is always sound.
    fn distance_local(&self) -> bool {
        false
    }
}

/// A route decision split at its single random draw.
///
/// [`Routing::route_prepare`] returns this; [`finish_prepared`] replays
/// the draw against the shared RNG. The split exists so route computation
/// can run on worker threads while the RNG stream is consumed serially in
/// the deterministic (ascending-router) order.
#[derive(Debug, Clone)]
pub enum Prepared {
    /// Fully determined: completing this consumes no RNG.
    Done(RouteChoices),
    /// `choices[slot]` is a placeholder to be overwritten with a uniformly
    /// drawn element of `options`; completing this consumes exactly one
    /// `gen_range(0..options.len())` draw (none if `options` is empty, in
    /// which case the placeholder stands — constructors only emit `Pick`
    /// with non-empty options).
    Pick {
        /// Candidate choices with a placeholder at `slot`.
        choices: RouteChoices,
        /// Index into `choices` holding the placeholder.
        slot: usize,
        /// The draw candidates, in the exact order the serial selection
        /// policy would offer them to `choose`.
        options: SmallVec<[RouteChoice; 8]>,
    },
}

/// Completes a [`Prepared`] decision, performing its (at most one) uniform
/// draw — the only RNG consumption on the per-cycle route path.
pub fn finish_prepared(prepared: Prepared, rng: &mut StdRng) -> RouteChoices {
    match prepared {
        Prepared::Done(choices) => choices,
        Prepared::Pick {
            mut choices,
            slot,
            options,
        } => {
            if let Some(c) = options.choose(rng) {
                choices[slot] = *c;
            }
            choices
        }
    }
}

/// Ejection choice for a packet whose current target attaches to `at`.
/// Returns `None` if the target is elsewhere.
pub fn ejection_choice(topo: &Topology, at: RouterId, pkt: &Packet) -> Option<RouteChoice> {
    let target = pkt.current_target();
    if topo.node_router(target) == at {
        Some(RouteChoice::any_vc(topo.node_attach(target).port))
    } else {
        None
    }
}

/// The shared adaptive selection policy of FAvORS (Sec. V): among candidate
/// ports, pick randomly among those with a free downstream VC; if none has a
/// free VC, pick the port whose downstream VCs have been active (busy) the
/// shortest time — a cheap congestion proxy available from credits.
pub fn select_adaptive(
    view: &dyn NetworkView,
    at: RouterId,
    ports: &[PortId],
    vnet: Vnet,
    rng: &mut StdRng,
) -> Option<PortId> {
    select_adaptive_prepare(view, at, ports, vnet)
        .choose(rng)
        .copied()
}

/// The candidate list [`select_adaptive`] draws from: the ports with a free
/// downstream VC if any, otherwise the least-recently-busy ports (random
/// tie-break among equals — a deterministic tie-break would herd every
/// congested packet towards the same port and create artificial hotspots).
/// Empty iff `ports` is empty. Split out so route decisions can be
/// *prepared* RNG-free on worker threads and the single uniform draw
/// replayed serially ([`Prepared`] / [`finish_prepared`]); drawing from the
/// returned list consumes RNG identically to the fused `select_adaptive`.
pub fn select_adaptive_prepare(
    view: &dyn NetworkView,
    at: RouterId,
    ports: &[PortId],
    vnet: Vnet,
) -> SmallVec<[PortId; 8]> {
    if ports.is_empty() {
        return SmallVec::new();
    }
    let free: SmallVec<[PortId; 8]> = ports
        .iter()
        .copied()
        .filter(|&p| view.has_free_vc_downstream(at, p, vnet))
        .collect();
    if !free.is_empty() {
        return free;
    }
    // No free VC anywhere: the least-recently-busy ports.
    let Some(min) = ports
        .iter()
        .map(|&p| view.min_vc_active_time(at, p, vnet))
        .min()
    else {
        return SmallVec::new();
    };
    ports
        .iter()
        .copied()
        .filter(|&p| view.min_vc_active_time(at, p, vnet) == min)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_mask_operations() {
        let all = VcMask::all();
        assert!(all.contains(VcId(0)) && all.contains(VcId(7)));
        let only1 = VcMask::only(VcId(1));
        assert!(only1.contains(VcId(1)));
        assert!(!only1.contains(VcId(0)));
        let no0 = VcMask::except(VcId(0));
        assert!(!no0.contains(VcId(0)));
        assert!(no0.contains(VcId(2)));
        let ge2 = VcMask::at_least(VcId(2));
        assert!(!ge2.contains(VcId(1)));
        assert!(ge2.contains(VcId(2)));
        assert!(only1.and(no0).contains(VcId(1)));
        assert!(VcMask::only(VcId(3)).is_empty_for(2));
        assert!(!VcMask::only(VcId(1)).is_empty_for(2));
    }

    #[test]
    fn route_choice_any_vc() {
        let c = RouteChoice::any_vc(PortId(2));
        assert_eq!(c.out_port, PortId(2));
        assert_eq!(c.vc_mask, VcMask::all());
    }
}
