//! Mesh routing algorithms: DOR-XY, the West-first turn model (Dally
//! avoidance), Duato escape-VC, and the Static-Bubble-style reserved-VC
//! adaptive routing.

use crate::{
    ejection_choice, select_adaptive_prepare, NetworkView, Prepared, RouteChoice, RouteChoices,
    Routing, VcMask,
};
use smallvec::{smallvec, SmallVec};
use spin_topology::Topology;
use spin_types::{Direction, Packet, PortId, RouterId, VcId};

/// Minimal directions from `at` towards the router attached to the packet's
/// current target. On tori the wrap-around path is considered; when both
/// directions of a dimension are equidistant, both are minimal.
fn minimal_dirs(topo: &Topology, at: RouterId, pkt: &Packet) -> SmallVec<[Direction; 2]> {
    let to = topo.node_router(pkt.current_target());
    let (x, y) = topo.coords(at);
    let (tx, ty) = topo.coords(to);
    let (width, height, wrap) = match *topo.kind() {
        spin_topology::TopologyKind::Mesh { width, height } => (width, height, false),
        spin_topology::TopologyKind::Torus { width, height } => (width, height, true),
        _ => panic!("mesh routing requires a mesh or torus topology"),
    };
    let mut dirs = SmallVec::new();
    let axis = |cur: u32,
                target: u32,
                size: u32,
                pos: Direction,
                neg: Direction,
                dirs: &mut SmallVec<[Direction; 2]>| {
        if cur == target {
            return;
        }
        if !wrap {
            dirs.push(if target > cur { pos } else { neg });
            return;
        }
        let fwd = (target + size - cur) % size;
        let bwd = (cur + size - target) % size;
        if fwd < bwd {
            dirs.push(pos);
        } else if bwd < fwd {
            dirs.push(neg);
        } else {
            dirs.push(pos);
            dirs.push(neg);
        }
    };
    axis(x, tx, width, Direction::East, Direction::West, &mut dirs);
    axis(y, ty, height, Direction::North, Direction::South, &mut dirs);
    dirs
}

/// Deterministic dimension-ordered XY routing: exhaust the x dimension, then
/// y. Its CDG is acyclic, so it is deadlock-free with a single VC
/// (Table I, "minimal deterministic").
#[derive(Debug, Clone, Copy, Default)]
pub struct XyRouting;

impl Routing for XyRouting {
    fn name(&self) -> &'static str {
        "xy"
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return Prepared::Done(smallvec![eject]);
        }
        let dirs = minimal_dirs(topo, at, pkt);
        // X first: East/West wins if present.
        let dir = dirs
            .iter()
            .copied()
            .find(|d| matches!(d, Direction::East | Direction::West))
            .or_else(|| dirs.first().copied())
            .expect("non-ejecting packet has a minimal direction");
        Prepared::Done(smallvec![RouteChoice::any_vc(topo.dir_port(dir))])
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        // XY is deterministic: the single route is the full set.
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        self.route(view, at, in_port, pkt, &mut rng)
    }

    fn min_vcs_required(&self) -> u8 {
        1
    }
}

/// The West-first turn model (Glass & Ni): turns into West are forbidden, so
/// a packet with westward distance must route entirely West first; afterwards
/// it routes adaptively among {North, South, East}. Deadlock-free by an
/// acyclic CDG in every VC — the paper's Dally-theory mesh baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct WestFirst;

impl WestFirst {
    /// The directions West-first permits from `at` for `pkt` (used both for
    /// routing and for CDG construction in tests).
    pub fn allowed_dirs(topo: &Topology, at: RouterId, pkt: &Packet) -> SmallVec<[Direction; 2]> {
        let dirs = minimal_dirs(topo, at, pkt);
        if dirs.contains(&Direction::West) {
            smallvec![Direction::West]
        } else {
            dirs
        }
    }
}

impl Routing for WestFirst {
    fn name(&self) -> &'static str {
        "west_first"
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return Prepared::Done(smallvec![eject]);
        }
        let dirs = Self::allowed_dirs(topo, at, pkt);
        let ports: SmallVec<[PortId; 4]> = dirs.iter().map(|&d| topo.dir_port(d)).collect();
        let options: SmallVec<[RouteChoice; 8]> =
            select_adaptive_prepare(view, at, &ports, pkt.vnet)
                .iter()
                .map(|&p| RouteChoice::any_vc(p))
                .collect();
        // ports[0] is a placeholder finish_prepared overwrites (a
        // non-ejecting packet always has an allowed direction).
        Prepared::Pick {
            choices: smallvec![RouteChoice::any_vc(ports[0])],
            slot: 0,
            options,
        }
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        Self::allowed_dirs(topo, at, pkt)
            .iter()
            .map(|&d| RouteChoice::any_vc(topo.dir_port(d)))
            .collect()
    }

    fn min_vcs_required(&self) -> u8 {
        1
    }
}

/// Duato-style escape VC: fully adaptive minimal routing in the regular VCs
/// (1..n), with VC 0 as the escape channel routed West-first. A blocked
/// packet can always fall back to the escape network, whose CDG is acyclic,
/// so the configuration is deadlock-free with >= 2 VCs — the paper's
/// Duato-theory baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct EscapeVc;

impl EscapeVc {
    /// The escape VC index.
    pub const ESCAPE: VcId = VcId(0);
}

impl Routing for EscapeVc {
    fn name(&self) -> &'static str {
        "escape_vc"
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return Prepared::Done(smallvec![eject]);
        }
        // Preferred: adaptive minimal through regular VCs.
        let dirs = minimal_dirs(topo, at, pkt);
        let ports: SmallVec<[PortId; 4]> = dirs.iter().map(|&d| topo.dir_port(d)).collect();
        let options: SmallVec<[RouteChoice; 8]> =
            select_adaptive_prepare(view, at, &ports, pkt.vnet)
                .iter()
                .map(|&p| RouteChoice {
                    out_port: p,
                    vc_mask: VcMask::except(Self::ESCAPE),
                })
                .collect();
        // Fallback: the escape VC along the West-first route.
        let escape = WestFirst::allowed_dirs(topo, at, pkt)
            .first()
            .map(|&d| RouteChoice {
                out_port: topo.dir_port(d),
                vc_mask: VcMask::only(Self::ESCAPE),
            });
        if options.is_empty() {
            // Only reachable with no minimal direction (never for a
            // non-ejecting packet); the fused path then offered escape only.
            return Prepared::Done(escape.into_iter().collect());
        }
        let mut choices = RouteChoices::new();
        choices.push(options[0]); // placeholder finish_prepared overwrites
        choices.extend(escape);
        Prepared::Pick {
            choices,
            slot: 0,
            options,
        }
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        let mut out: RouteChoices = minimal_dirs(topo, at, pkt)
            .iter()
            .map(|&d| RouteChoice {
                out_port: topo.dir_port(d),
                vc_mask: VcMask::except(Self::ESCAPE),
            })
            .collect();
        for d in WestFirst::allowed_dirs(topo, at, pkt) {
            out.push(RouteChoice {
                out_port: topo.dir_port(d),
                vc_mask: VcMask::only(Self::ESCAPE),
            });
        }
        out
    }

    fn min_vcs_required(&self) -> u8 {
        2
    }
}

/// Static-Bubble-style routing: fully adaptive minimal routing that keeps
/// the highest VC *reserved* for deadlock recovery — packets may only
/// acquire it once the simulator's recovery logic enables it at a router
/// whose turn-off timeout fired. Models the paper's Static Bubble baseline
/// property that one VC is unusable in normal operation.
#[derive(Debug, Clone, Copy)]
pub struct ReservedVcAdaptive {
    /// The reserved (recovery-only) VC.
    pub reserved: VcId,
}

impl ReservedVcAdaptive {
    /// Reserves the last of `num_vcs` VCs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs < 2`: the design needs at least one normal VC
    /// alongside the reserved recovery VC.
    pub fn new(num_vcs: u8) -> Self {
        assert!(
            num_vcs >= 2,
            "static bubble needs a normal VC plus the reserved one"
        );
        ReservedVcAdaptive {
            reserved: VcId(num_vcs - 1),
        }
    }
}

impl Routing for ReservedVcAdaptive {
    fn name(&self) -> &'static str {
        "static_bubble"
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return Prepared::Done(smallvec![eject]);
        }
        let ports = topo.minimal_ports(at, topo.node_router(pkt.current_target()));
        let options: SmallVec<[RouteChoice; 8]> =
            select_adaptive_prepare(view, at, &ports, pkt.vnet)
                .iter()
                .map(|&p| RouteChoice {
                    out_port: p,
                    vc_mask: VcMask::except(self.reserved),
                })
                .collect();
        // ports[0] is a placeholder (a non-ejecting packet always has a
        // minimal port).
        Prepared::Pick {
            choices: smallvec![RouteChoice {
                out_port: ports[0],
                vc_mask: VcMask::except(self.reserved)
            }],
            slot: 0,
            options,
        }
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        topo.minimal_ports(at, topo.node_router(pkt.current_target()))
            .iter()
            .map(|&p| RouteChoice {
                out_port: p,
                vc_mask: VcMask::except(self.reserved),
            })
            .collect()
    }

    fn min_vcs_required(&self) -> u8 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Routing, StaticView};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spin_types::{NodeId, PacketBuilder};

    fn setup() -> (Topology, StdRng) {
        (Topology::mesh(4, 4), StdRng::seed_from_u64(1))
    }

    fn pkt(src: u32, dst: u32) -> Packet {
        PacketBuilder::new(NodeId(src), NodeId(dst)).build(0)
    }

    #[test]
    fn xy_goes_x_first() {
        let (topo, mut rng) = setup();
        let view = StaticView::new(&topo, 1);
        // From r0 (0,0) to node 15 at (3,3): East first.
        let c = XyRouting.route(&view, RouterId(0), PortId(0), &pkt(0, 15), &mut rng);
        assert_eq!(c[0].out_port, topo.dir_port(Direction::East));
        // From r3 (3,0) to node 15: x done, go North.
        let c = XyRouting.route(&view, RouterId(3), PortId(0), &pkt(0, 15), &mut rng);
        assert_eq!(c[0].out_port, topo.dir_port(Direction::North));
    }

    #[test]
    fn xy_ejects_at_destination() {
        let (topo, mut rng) = setup();
        let view = StaticView::new(&topo, 1);
        let c = XyRouting.route(&view, RouterId(5), PortId(0), &pkt(0, 5), &mut rng);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].out_port, PortId(0)); // local port
    }

    #[test]
    fn west_first_never_turns_into_west() {
        let (topo, mut rng) = setup();
        let view = StaticView::new(&topo, 1);
        // Destination to the south-west: the only legal start is West.
        // From r15 (3,3) to node 0 at (0,0).
        for _ in 0..20 {
            let c = WestFirst.route(&view, RouterId(15), PortId(0), &pkt(15, 0), &mut rng);
            assert_eq!(c[0].out_port, topo.dir_port(Direction::West));
        }
        // Once x is aligned, adaptivity among remaining dirs (here South).
        let c = WestFirst.route(&view, RouterId(12), PortId(0), &pkt(15, 0), &mut rng);
        assert_eq!(c[0].out_port, topo.dir_port(Direction::South));
    }

    #[test]
    fn west_first_adaptive_when_east_bound() {
        let (topo, mut rng) = setup();
        let view = StaticView::new(&topo, 1);
        // r0 -> node 15: both East and North legal; over many draws both appear.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let c = WestFirst.route(&view, RouterId(0), PortId(0), &pkt(0, 15), &mut rng);
            seen.insert(c[0].out_port);
        }
        assert!(seen.contains(&topo.dir_port(Direction::East)));
        assert!(seen.contains(&topo.dir_port(Direction::North)));
    }

    #[test]
    fn escape_vc_offers_adaptive_then_escape() {
        let (topo, mut rng) = setup();
        let view = StaticView::new(&topo, 1);
        let c = EscapeVc.route(&view, RouterId(0), PortId(0), &pkt(0, 15), &mut rng);
        assert_eq!(c.len(), 2);
        assert!(!c[0].vc_mask.contains(EscapeVc::ESCAPE));
        assert_eq!(c[1].vc_mask, VcMask::only(EscapeVc::ESCAPE));
        // Escape route obeys West-first.
        let c = EscapeVc.route(&view, RouterId(15), PortId(0), &pkt(15, 0), &mut rng);
        assert_eq!(c[1].out_port, topo.dir_port(Direction::West));
    }

    #[test]
    fn reserved_vc_excluded() {
        let (topo, mut rng) = setup();
        let view = StaticView::new(&topo, 1);
        let r = ReservedVcAdaptive::new(3);
        let c = r.route(&view, RouterId(0), PortId(0), &pkt(0, 15), &mut rng);
        assert!(!c[0].vc_mask.contains(VcId(2)));
        assert!(c[0].vc_mask.contains(VcId(0)));
        assert_eq!(r.min_vcs_required(), 2);
    }

    #[test]
    #[should_panic(expected = "static bubble needs")]
    fn reserved_vc_requires_two() {
        let _ = ReservedVcAdaptive::new(1);
    }

    /// West-first's CDG over a mesh is acyclic (Dally's condition) — the
    /// formal reason the baseline avoids deadlock.
    /// Builds the CDG of a turn rule over a mesh. Channels are identified
    /// as (router the link enters, direction of travel); `allowed(din,
    /// dout)` says whether a packet travelling `din` may continue `dout`.
    fn mesh_cdg(
        topo: &Topology,
        allowed: impl Fn(Direction, Direction) -> bool,
    ) -> spin_deadlock::Cdg<(RouterId, Direction)> {
        let mut cdg = spin_deadlock::Cdg::new();
        for r in 0..topo.num_routers() {
            let r = RouterId(r as u32);
            for din in Direction::ALL {
                // A link entering r heading `din` arrives on r's port facing
                // din.opposite(); it exists iff that port is connected.
                if topo.neighbor(r, topo.dir_port(din.opposite())).is_none() {
                    continue;
                }
                for dout in Direction::ALL {
                    if dout == din.opposite() {
                        continue; // u-turns never occur in minimal routing
                    }
                    if !allowed(din, dout) {
                        continue;
                    }
                    if let Some(peer) = topo.neighbor(r, topo.dir_port(dout)) {
                        cdg.add_dependency((r, din), (peer.router, dout));
                    }
                }
            }
        }
        // `add_dependency` records self-loops as 1-cycles instead of
        // panicking; a mesh turn rule must never produce one.
        assert!(cdg.self_cycles().is_empty());
        cdg
    }

    /// West-first's CDG over a mesh is acyclic (Dally's condition) — the
    /// formal reason the baseline avoids deadlock.
    #[test]
    fn west_first_cdg_is_acyclic() {
        let topo = Topology::mesh(4, 4);
        // West-first forbids every turn into West.
        let cdg = mesh_cdg(&topo, |din, dout| {
            !(dout == Direction::West && din != Direction::West)
        });
        assert!(
            cdg.is_acyclic(),
            "west-first CDG has a cycle: {:?}",
            cdg.find_cycle()
        );
        assert!(cdg.num_dependencies() > 0);
    }

    /// XY's CDG is acyclic too: y-to-x turns are forbidden.
    #[test]
    fn xy_cdg_is_acyclic() {
        let topo = Topology::mesh(4, 4);
        let cdg = mesh_cdg(&topo, |din, dout| {
            let din_y = matches!(din, Direction::North | Direction::South);
            let dout_x = matches!(dout, Direction::East | Direction::West);
            !(din_y && dout_x)
        });
        assert!(cdg.is_acyclic());
    }

    /// Fully adaptive minimal routing's CDG on the same mesh IS cyclic —
    /// the reason it deadlocks without SPIN.
    #[test]
    fn unrestricted_cdg_is_cyclic() {
        let topo = Topology::mesh(4, 4);
        let cdg = mesh_cdg(&topo, |_, _| true);
        assert!(!cdg.is_acyclic());
    }
}
