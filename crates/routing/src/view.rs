//! The congestion view routing algorithms consult at decision time.

use spin_topology::Topology;
use spin_types::{Cycle, PortId, RouterId, Vnet};

/// Runtime network state visible to a router making an adaptive routing
/// decision. All quantities are *local knowledge*: what a real router learns
/// from its credit counters about the immediate downstream hop.
pub trait NetworkView {
    /// The network topology.
    fn topology(&self) -> &Topology;

    /// Current cycle.
    fn now(&self) -> Cycle;

    /// Free VCs at the downstream input port reached through `out_port` of
    /// `at`, for `vnet` (from credits). 0 for unconnected ports.
    fn free_vcs_downstream(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> usize;

    /// Whether at least one downstream VC is free — the only question the
    /// adaptive selection policies actually ask. Views backed by live credit
    /// state can override this with an early-exit scan instead of counting
    /// every VC.
    fn has_free_vc_downstream(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> bool {
        self.free_vcs_downstream(at, out_port, vnet) > 0
    }

    /// The minimum "active time" (cycles since allocation) over the
    /// downstream VCs for `vnet`; 0 if any VC is free. FAvORS uses this as
    /// its contention proxy (Sec. V).
    fn min_vc_active_time(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> u64;

    /// Total flits buffered at the downstream input port for `vnet` — the
    /// queue-length estimate UGAL-L uses.
    fn downstream_occupancy(&self, at: RouterId, out_port: PortId, vnet: Vnet) -> usize;
}

/// A [`NetworkView`] with uniform static congestion, for unit tests and for
/// exercising routing functions outside the simulator (e.g. CDG
/// construction).
#[derive(Debug, Clone)]
pub struct StaticView<'a> {
    topo: &'a Topology,
    free_vcs: usize,
    now: Cycle,
}

impl<'a> StaticView<'a> {
    /// A view reporting `free_vcs` free VCs everywhere.
    pub fn new(topo: &'a Topology, free_vcs: usize) -> Self {
        StaticView {
            topo,
            free_vcs,
            now: 0,
        }
    }

    /// Same, with a specific current cycle.
    pub fn at_cycle(topo: &'a Topology, free_vcs: usize, now: Cycle) -> Self {
        StaticView {
            topo,
            free_vcs,
            now,
        }
    }
}

impl NetworkView for StaticView<'_> {
    fn topology(&self) -> &Topology {
        self.topo
    }
    fn now(&self) -> Cycle {
        self.now
    }
    fn free_vcs_downstream(&self, at: RouterId, out_port: PortId, _vnet: Vnet) -> usize {
        if self.topo.neighbor(at, out_port).is_some() {
            self.free_vcs
        } else {
            0
        }
    }
    fn min_vc_active_time(&self, _at: RouterId, _out_port: PortId, _vnet: Vnet) -> u64 {
        if self.free_vcs > 0 {
            0
        } else {
            1
        }
    }
    fn downstream_occupancy(&self, _at: RouterId, _out_port: PortId, _vnet: Vnet) -> usize {
        0
    }
}
