//! FAvORS — Fully Adaptive One-VC Routing with Spin (Sec. V of the paper).
//!
//! FAvORS is the first truly one-VC fully adaptive deadlock-free routing
//! algorithm: it places *no* turn, VC-use or injection restrictions and
//! relies entirely on SPIN for deadlock freedom. Two variants:
//!
//! * [`FavorsMinimal`] routes over minimal paths only, choosing at each hop
//!   a random minimal outport with a free downstream VC, falling back to the
//!   outport whose downstream VC has been active the least number of cycles
//!   (a contention proxy read from credits).
//! * [`FavorsNonMinimal`] additionally lets the *source* route through a
//!   random intermediate node when all minimal first hops are congested,
//!   using the paper's cost rule
//!   `H_min + t_active_min > H_nonmin + t_active_nonmin`. The misroute
//!   decision is made once, so `p = 1` and routing is livelock-free.
//!
//! Both are topology-agnostic: they only use the topology's minimal-port
//! sets, so the same code routes meshes, dragonflies, and irregular graphs.

use crate::{
    ejection_choice, select_adaptive_prepare, NetworkView, Prepared, RouteChoice, RouteChoices,
    Routing,
};
use rand::rngs::StdRng;
use rand::Rng;
use smallvec::smallvec;
use spin_types::{NodeId, Packet, PortId, RouterId};

/// Minimal-path FAvORS (and the paper's "MinAdaptive + SPIN" design — same
/// selection policy, any VC count).
#[derive(Debug, Clone, Copy, Default)]
pub struct FavorsMinimal;

impl Routing for FavorsMinimal {
    fn name(&self) -> &'static str {
        "favors_min"
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return Prepared::Done(smallvec![eject]);
        }
        let ports = topo.minimal_ports(at, topo.node_router(pkt.current_target()));
        let options = select_adaptive_prepare(view, at, &ports, pkt.vnet)
            .iter()
            .map(|&p| RouteChoice::any_vc(p))
            .collect();
        // ports[0] is a placeholder finish_prepared overwrites (a
        // non-ejecting packet always has a minimal port).
        Prepared::Pick {
            choices: smallvec![RouteChoice::any_vc(ports[0])],
            slot: 0,
            options,
        }
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        _in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        let topo = view.topology();
        if let Some(eject) = ejection_choice(topo, at, pkt) {
            return smallvec![eject];
        }
        topo.minimal_ports(at, topo.node_router(pkt.current_target()))
            .iter()
            .map(|&p| RouteChoice::any_vc(p))
            .collect()
    }

    fn min_vcs_required(&self) -> u8 {
        1 // deadlock freedom comes from SPIN
    }

    fn distance_local(&self) -> bool {
        true // consults only minimal_ports/dist toward the current target
    }
}

/// Non-minimal FAvORS: source-side Valiant decision, minimal-adaptive in
/// each phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct FavorsNonMinimal;

impl FavorsNonMinimal {
    /// The paper's source decision rule. Returns the chosen intermediate
    /// node, or `None` for minimal routing.
    fn choose_intermediate(
        view: &dyn NetworkView,
        pkt: &Packet,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let topo = view.topology();
        let src_r = topo.node_router(pkt.src);
        let dst_r = topo.node_router(pkt.dst);
        if src_r == dst_r {
            return None;
        }
        let min_ports = topo.minimal_ports(src_r, dst_r);
        // "If one or more minimal paths have a free VC at the next hop,
        // route minimally."
        if min_ports
            .iter()
            .any(|&p| view.has_free_vc_downstream(src_r, p, pkt.vnet))
        {
            return None;
        }
        // Pick a random intermediate node (not source or destination).
        let n = topo.num_nodes() as u32;
        let mut inter = NodeId(rng.random_range(0..n));
        for _ in 0..8 {
            if inter != pkt.src && inter != pkt.dst {
                break;
            }
            inter = NodeId(rng.random_range(0..n));
        }
        if inter == pkt.src || inter == pkt.dst {
            return None;
        }
        let inter_r = topo.node_router(inter);
        let h_min = topo.dist(src_r, dst_r) as u64;
        let h_nonmin = (topo.dist(src_r, inter_r) + topo.dist(inter_r, dst_r)) as u64;
        let t_active_min = min_ports
            .iter()
            .map(|&p| view.min_vc_active_time(src_r, p, pkt.vnet))
            .min()
            .unwrap_or(0);
        let nonmin_ports = topo.minimal_ports(src_r, inter_r);
        let t_active_nonmin = nonmin_ports
            .iter()
            .map(|&p| view.min_vc_active_time(src_r, p, pkt.vnet))
            .min()
            .unwrap_or(u64::MAX / 2);
        if h_min + t_active_min > h_nonmin + t_active_nonmin {
            Some(inter)
        } else {
            None
        }
    }
}

impl Routing for FavorsNonMinimal {
    fn name(&self) -> &'static str {
        "favors_nmin"
    }

    fn at_injection(&self, view: &dyn NetworkView, pkt: &mut Packet, rng: &mut StdRng) {
        if let Some(inter) = Self::choose_intermediate(view, pkt, rng) {
            pkt.intermediate = Some(inter);
            pkt.misroutes = 1;
        }
    }

    fn route_prepare(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> Prepared {
        // Each phase is plain minimal-adaptive towards the current target
        // (the simulator clears `intermediate` on arrival there).
        FavorsMinimal.route_prepare(view, at, in_port, pkt)
    }

    fn alternatives(
        &self,
        view: &dyn NetworkView,
        at: RouterId,
        in_port: PortId,
        pkt: &Packet,
    ) -> RouteChoices {
        FavorsMinimal.alternatives(view, at, in_port, pkt)
    }

    fn misroute_bound(&self) -> u32 {
        1 // the Valiant detour is decided once, at the source
    }

    fn min_vcs_required(&self) -> u8 {
        1
    }

    fn distance_local(&self) -> bool {
        true // phases delegate to FavorsMinimal's minimal_ports walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticView;
    use rand::SeedableRng;
    use spin_topology::Topology;
    use spin_types::PacketBuilder;

    fn pkt(src: u32, dst: u32) -> Packet {
        PacketBuilder::new(NodeId(src), NodeId(dst)).build(0)
    }

    #[test]
    fn favors_min_always_minimal() {
        // Property: following FAvORS-Min decisions always reaches the
        // destination in exactly the minimal hop count.
        let topo = Topology::mesh(6, 6);
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(3);
        for (s, d) in [(0u32, 35u32), (7, 28), (5, 30), (35, 0)] {
            let p = pkt(s, d);
            let mut at = topo.node_router(NodeId(s));
            let dist = topo.dist(at, topo.node_router(NodeId(d)));
            for _ in 0..dist {
                let c = FavorsMinimal.route(&view, at, PortId(0), &p, &mut rng);
                let peer = topo.neighbor(at, c[0].out_port).expect("network port");
                at = peer.router;
            }
            assert_eq!(at, topo.node_router(NodeId(d)));
            let c = FavorsMinimal.route(&view, at, PortId(0), &p, &mut rng);
            assert_eq!(c[0].out_port, topo.node_attach(NodeId(d)).port);
        }
    }

    #[test]
    fn favors_min_works_on_irregular_topologies() {
        let topo = Topology::random_connected(20, 8, 1, 99).unwrap();
        let view = StaticView::new(&topo, 1);
        let mut rng = StdRng::seed_from_u64(5);
        for s in 0..20u32 {
            let d = (s + 7) % 20;
            if s == d {
                continue;
            }
            let p = pkt(s, d);
            let mut at = topo.node_router(NodeId(s));
            let mut hops = 0;
            while at != topo.node_router(NodeId(d)) {
                let c = FavorsMinimal.route(&view, at, PortId(0), &p, &mut rng);
                at = topo.neighbor(at, c[0].out_port).unwrap().router;
                hops += 1;
                assert!(hops <= topo.diameter(), "route exceeded diameter");
            }
        }
    }

    #[test]
    fn nonminimal_prefers_minimal_when_free() {
        let topo = Topology::mesh(4, 4);
        let view = StaticView::new(&topo, 2); // plenty of free VCs
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = pkt(0, 15);
        FavorsNonMinimal.at_injection(&view, &mut p, &mut rng);
        assert_eq!(p.intermediate, None, "must route minimally at light load");
        assert_eq!(p.misroutes, 0);
    }

    #[test]
    fn nonminimal_detours_under_congestion() {
        let topo = Topology::mesh(4, 4);
        let view = StaticView::new(&topo, 0); // everything busy
        let mut rng = StdRng::seed_from_u64(7);
        // With zero free VCs everywhere the active-time proxy ties, so the
        // rule H_min + t > H_nonmin + t' can still refuse; run many packets
        // and just assert the decision is stable and bounded.
        let mut detours = 0;
        for i in 0..100 {
            let mut p = PacketBuilder::new(NodeId(0), NodeId(15)).build(i);
            FavorsNonMinimal.at_injection(&view, &mut p, &mut rng);
            if let Some(inter) = p.intermediate {
                assert_ne!(inter, NodeId(0));
                assert_ne!(inter, NodeId(15));
                assert_eq!(p.misroutes, 1);
                detours += 1;
            }
        }
        // H_nonmin >= H_min always, and the uniform view gives equal active
        // times, so the strict inequality never holds: no detours under a
        // *uniformly* congested view.
        assert_eq!(detours, 0);
    }

    #[test]
    fn misroute_bounds() {
        assert_eq!(FavorsMinimal.misroute_bound(), 0);
        assert_eq!(FavorsNonMinimal.misroute_bound(), 1);
        assert_eq!(FavorsMinimal.min_vcs_required(), 1);
        assert_eq!(FavorsNonMinimal.min_vcs_required(), 1);
    }
}
