//! Property tests for the low-diameter topology expansion: on HyperX,
//! dragonfly+ and full-mesh topologies, every route choice the new
//! algorithms emit must name a legal (connected or ejecting) port, and
//! following any sequence of alternatives must reach the destination
//! within the algorithm's path-length bound.

#![allow(clippy::unwrap_used)] // test code, same as the unit-test allowance

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spin_routing::{DfPlusAdaptive, FullMeshDeroute, HyperXDal, HyperXDor, Routing, StaticView};
use spin_topology::Topology;
use spin_types::{NodeId, PacketBuilder, PortId, RouterId};

/// Everything a single (topology, routing) case needs: the routing, a
/// path-length bound as a function of the minimal distance, and whether
/// the algorithm may legally exceed minimal distance (deroutes).
struct Case {
    topo: Topology,
    routing: Box<dyn Routing>,
    /// Max total hops for a packet whose minimal distance is `d`.
    bound: fn(u32) -> u32,
}

fn cases() -> Vec<Case> {
    let hx = Topology::hyperx(&[3, 3, 3], 1);
    let hx_flat = Topology::hyperx(&[4, 2], 2);
    let dfp = Topology::dragonfly_plus(2, 2, 2, 2, 4);
    let fm = Topology::full_mesh(8, 2).unwrap();
    vec![
        Case {
            routing: Box::new(HyperXDor),
            topo: hx.clone(),
            bound: |d| d,
        },
        Case {
            routing: Box::new(HyperXDal::escalation(&hx)),
            topo: hx,
            bound: |d| d,
        },
        Case {
            routing: Box::new(HyperXDal::with_spin()),
            topo: hx_flat,
            bound: |d| d,
        },
        Case {
            routing: Box::new(DfPlusAdaptive::escalation()),
            topo: dfp.clone(),
            bound: |d| d,
        },
        Case {
            routing: Box::new(DfPlusAdaptive::with_spin()),
            topo: dfp,
            bound: |d| d,
        },
        Case {
            // Direct distance is always 1; a deroute adds one hop.
            routing: Box::new(FullMeshDeroute),
            topo: fm,
            bound: |d| d + 1,
        },
    ]
}

/// Walks a packet from `src` to `dst` following `pick`th alternative at
/// every hop (modulo the choice count), asserting legality throughout.
/// Returns the hop count.
fn drive(case: &Case, src: NodeId, dst: NodeId, pick: usize, free_vcs: usize) -> u32 {
    let topo = &case.topo;
    let view = StaticView::new(topo, free_vcs);
    let pkt = PacketBuilder::new(src, dst).build(0);
    let mut at = topo.node_router(src);
    let mut in_port = topo.node_attach(src).port;
    let dst_r = topo.node_router(dst);
    let mut hops = 0u32;
    while at != dst_r {
        let alts = case.routing.alternatives(&view, at, in_port, &pkt);
        assert!(!alts.is_empty(), "no alternative at {at} for {src}->{dst}");
        for a in &alts {
            // Every alternative is a live network port (never local while
            // the packet is not at its destination router, never dead).
            let port = topo.port(at, a.out_port);
            assert!(
                port.is_network(),
                "illegal port {} at {at} for {src}->{dst}",
                a.out_port
            );
        }
        let choice = alts[pick % alts.len()];
        let peer = topo.neighbor(at, choice.out_port).expect("network port");
        at = peer.router;
        in_port = peer.port;
        hops += 1;
        assert!(
            hops <= (case.bound)(topo.dist(topo.node_router(src), dst_r)),
            "path length bound exceeded for {src}->{dst}"
        );
    }
    // At the destination router the single choice must be the ejection.
    let alts = case.routing.alternatives(&view, at, in_port, &pkt);
    assert_eq!(alts.len(), 1);
    assert_eq!(alts[0].out_port, topo.node_attach(dst).port);
    hops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any alternative-following walk is legal and within the bound.
    #[test]
    fn prop_alternatives_legal_and_bounded(
        src in 0u32..16,
        dst in 0u32..16,
        pick in 0usize..8,
        free in 0usize..2,
    ) {
        for case in cases() {
            let n = case.topo.num_nodes() as u32;
            let (s, d) = (NodeId(src % n), NodeId(dst % n));
            if s == d {
                continue;
            }
            drive(&case, s, d, pick, free);
        }
    }

    /// route() — the adaptive selection — is itself one of alternatives()'s
    /// choices, port-wise, whatever the congestion state.
    #[test]
    fn prop_route_is_subset_of_alternatives(
        src in 0u32..16,
        dst in 0u32..16,
        seed in any::<u64>(),
        free in 0usize..2,
    ) {
        for case in cases() {
            let topo = &case.topo;
            let n = topo.num_nodes() as u32;
            let (s, d) = (NodeId(src % n), NodeId(dst % n));
            if s == d {
                continue;
            }
            let view = StaticView::new(topo, free);
            let pkt = PacketBuilder::new(s, d).build(0);
            let at = topo.node_router(s);
            let in_port = topo.node_attach(s).port;
            let mut rng = StdRng::seed_from_u64(seed);
            let picked = case.routing.route(&view, at, in_port, &pkt, &mut rng);
            let alts = case.routing.alternatives(&view, at, in_port, &pkt);
            for c in &picked {
                prop_assert!(
                    alts.iter().any(|a| a.out_port == c.out_port),
                    "route() chose a port outside the OR-set"
                );
            }
        }
    }
}

/// Escalation VC classes never move downward along any legal path — the
/// acyclicity argument for both HyperX DAL and dragonfly+ escalation.
#[test]
fn escalation_masks_ascend_along_paths() {
    let topo = Topology::hyperx(&[3, 3, 3], 1);
    let dal = HyperXDal::escalation(&topo);
    let view = StaticView::new(&topo, 1);
    let mut rng = StdRng::seed_from_u64(9);
    for (s, d) in [(0u32, 26u32), (1, 25), (4, 22)] {
        let pkt = PacketBuilder::new(NodeId(s), NodeId(d)).build(0);
        let mut at = topo.node_router(NodeId(s));
        let dst_r = topo.node_router(NodeId(d));
        let mut last_class: Option<u8> = None;
        while at != dst_r {
            let c = dal.route(&view, at, PortId(0), &pkt, &mut rng)[0];
            let class = (0..32u8)
                .find(|&v| c.vc_mask.contains(spin_types::VcId(v)))
                .expect("escalation mask names one VC");
            if let Some(prev) = last_class {
                assert!(class > prev, "escalation class must strictly ascend");
            }
            last_class = Some(class);
            at = topo.neighbor(at, c.out_port).unwrap().router;
        }
    }
}

/// The full-mesh ascending rule: at any source router r, every deroute
/// alternative leads to a router with a strictly higher index.
#[test]
fn full_mesh_deroutes_strictly_ascend() {
    let topo = Topology::full_mesh(10, 1).unwrap();
    let view = StaticView::new(&topo, 1);
    for s in 0..10u32 {
        for d in 0..10u32 {
            if s == d {
                continue;
            }
            let pkt = PacketBuilder::new(NodeId(s), NodeId(d)).build(0);
            let at = RouterId(s);
            let alts = FullMeshDeroute.alternatives(&view, at, PortId(0), &pkt);
            for a in &alts {
                let peer = topo.neighbor(at, a.out_port).unwrap().router;
                assert!(
                    peer == RouterId(d) || peer.0 > s,
                    "deroute {s}->{} violates the ascending rule",
                    peer.0
                );
            }
        }
    }
}
