//! Core identifier and message types shared by every crate in the SPIN
//! reproduction workspace.
//!
//! The simulator models an interconnection network as a set of *routers*
//! connected by directed *links*; *nodes* (terminals / network-interface
//! controllers) attach to routers through *local ports*. Packets are split
//! into *flits* which occupy *virtual channels* (VCs) grouped into *virtual
//! networks* (vnets, message classes).
//!
//! All types here are plain data: they carry no behaviour beyond conversions
//! and formatting, so every other crate can depend on them without pulling in
//! simulation machinery.
//!
//! # Examples
//!
//! ```
//! use spin_types::{NodeId, PacketBuilder, PacketHandle, Vnet, FlitKind};
//!
//! let pkt = PacketBuilder::new(NodeId(0), NodeId(5))
//!     .vnet(Vnet(1))
//!     .len(5)
//!     .injected_at(100)
//!     .build(42);
//! // Flits are 16-byte handles into a packet store; the store hands out
//! // the handle, the packet header stays in one place.
//! let handle = PacketHandle::new(0, 0);
//! let flits: Vec<_> = pkt.flits(handle).collect();
//! assert_eq!(flits.len(), 5);
//! assert_eq!(flits[0].kind, FlitKind::Head);
//! assert_eq!(flits[4].kind, FlitKind::Tail);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Simulation time, measured in router clock cycles.
pub type Cycle = u64;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $short:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index as a `usize`, for table lookups.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as $inner)
            }
        }
    };
}

id_newtype!(
    /// Identifier of a router (switch) in the topology.
    RouterId, u32, "r"
);
id_newtype!(
    /// Identifier of a terminal node (NIC) attached to some router.
    NodeId, u32, "n"
);
id_newtype!(
    /// Index of a port local to one router. Port numbering is
    /// topology-defined; port ids below [`spin_types`](crate) convention keep
    /// local (NIC) ports first, then network ports.
    PortId, u8, "p"
);
id_newtype!(
    /// Index of a virtual channel within one input port and vnet.
    VcId, u8, "vc"
);
id_newtype!(
    /// Virtual network (message class) index. Coherence protocols use
    /// several vnets (e.g. request / forward / response) to avoid protocol
    /// deadlock; routing deadlock freedom is handled per-vnet.
    Vnet, u8, "vn"
);
id_newtype!(
    /// Globally unique packet identifier.
    PacketId, u64, "pkt"
);

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit of a multi-flit packet; releases resources downstream.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail` flits.
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail` flits.
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A packet in flight: the unit of routing.
///
/// Packets carry their (possibly non-minimal) routing state: FAvORS and UGAL
/// may pick a random intermediate node at the source; `intermediate` is
/// cleared once reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source terminal.
    pub src: NodeId,
    /// Destination terminal.
    pub dst: NodeId,
    /// Message class.
    pub vnet: Vnet,
    /// Length in flits (>= 1).
    pub len: u16,
    /// Cycle the packet was created at the source NIC.
    pub created_at: Cycle,
    /// Cycle the head flit entered the network (left the NIC queue).
    pub injected_at: Cycle,
    /// Valiant-style intermediate node for non-minimal routing, if any.
    pub intermediate: Option<NodeId>,
    /// Number of hops taken so far.
    pub hops: u32,
    /// Number of misroutes (non-minimal hops) taken so far; bounded by the
    /// routing algorithm's livelock limit `p`.
    pub misroutes: u32,
    /// Number of global (inter-group) links crossed so far; drives the VC
    /// ordering discipline of Dally-style dragonfly routing.
    pub global_hops: u32,
}

impl Packet {
    /// The flit sequence of this packet, as handles referencing `handle`
    /// (the packet's slot in its owning store). No header is copied: each
    /// flit is a 16-byte `Copy` value.
    pub fn flits(&self, handle: PacketHandle) -> impl Iterator<Item = Flit> {
        let len = self.len.max(1);
        (0..len).map(move |seq| Flit::new(handle, seq, len))
    }

    /// The routing target the packet is currently heading to: the
    /// intermediate node while one is pending, else the final destination.
    #[inline]
    pub fn current_target(&self) -> NodeId {
        self.intermediate.unwrap_or(self.dst)
    }
}

/// Builder for [`Packet`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src: NodeId,
    dst: NodeId,
    vnet: Vnet,
    len: u16,
    created_at: Cycle,
    intermediate: Option<NodeId>,
}

impl PacketBuilder {
    /// Starts a builder for a packet from `src` to `dst` (1 flit, vnet 0).
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        PacketBuilder {
            src,
            dst,
            vnet: Vnet(0),
            len: 1,
            created_at: 0,
            intermediate: None,
        }
    }

    /// Sets the virtual network.
    pub fn vnet(mut self, vnet: Vnet) -> Self {
        self.vnet = vnet;
        self
    }

    /// Sets the length in flits.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn len(mut self, len: u16) -> Self {
        assert!(len > 0, "packet length must be at least one flit");
        self.len = len;
        self
    }

    /// Sets the creation cycle.
    pub fn injected_at(mut self, cycle: Cycle) -> Self {
        self.created_at = cycle;
        self
    }

    /// Sets a Valiant intermediate node.
    pub fn intermediate(mut self, node: NodeId) -> Self {
        self.intermediate = Some(node);
        self
    }

    /// Builds the packet with the given id.
    pub fn build(self, id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            src: self.src,
            dst: self.dst,
            vnet: self.vnet,
            len: self.len,
            created_at: self.created_at,
            injected_at: self.created_at,
            intermediate: self.intermediate,
            hops: 0,
            misroutes: 0,
            global_hops: 0,
        }
    }
}

/// Handle to a packet header held in an arena/slab packet store.
///
/// A handle names a store *slot* plus a *generation*: the store bumps a
/// slot's generation every time the slot is recycled, so a handle held past
/// its packet's ejection can never silently alias a newer packet — a
/// stale-handle lookup is a detectable error, not wrong data.
///
/// The store itself lives with the simulator (it owns packet lifetimes);
/// this crate only defines the identifier so [`Flit`] can stay plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketHandle {
    slot: u32,
    generation: u32,
}

impl PacketHandle {
    /// Creates a handle for `slot` at `generation` (store-internal use).
    #[inline]
    pub const fn new(slot: u32, generation: u32) -> Self {
        PacketHandle { slot, generation }
    }

    /// The store slot index.
    #[inline]
    pub const fn slot(self) -> u32 {
        self.slot
    }

    /// The slot generation this handle was issued at.
    #[inline]
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Display for PacketHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}g{}", self.slot, self.generation)
    }
}

/// A flit: the unit of link bandwidth and buffering.
///
/// A flit is a 16-byte `Copy` handle: it names its packet's store slot
/// ([`PacketHandle`]) plus its position in the packet. The single
/// authoritative packet header lives in the simulator's packet store;
/// buffering, link traversal and spin streaming move only these handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Handle of the owning packet in the packet store.
    pub packet: PacketHandle,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Sequence number within the packet (0 = head).
    pub seq: u16,
}

impl Flit {
    /// Builds the `seq`-th flit of a `len`-flit packet referenced by
    /// `handle`, deriving the [`FlitKind`] from the position.
    #[inline]
    pub fn new(handle: PacketHandle, seq: u16, len: u16) -> Flit {
        let kind = match (seq, len.max(1)) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        Flit {
            packet: handle,
            kind,
            seq,
        }
    }
}

// The whole point of the handle representation: flits must stay small and
// trivially copyable. A compile error here means a header crept back in.
const _: () = assert!(std::mem::size_of::<Flit>() <= 16);
const _: () = {
    const fn require_copy<T: Copy>() {}
    require_copy::<Flit>();
    require_copy::<PacketHandle>();
};

/// A (router, port) endpoint, used to describe link connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortConn {
    /// The router owning the port.
    pub router: RouterId,
    /// The port index at that router.
    pub port: PortId,
}

impl fmt::Display for PortConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.router, self.port)
    }
}

/// Cardinal directions on mesh/torus topologies. Mapped to port indices by
/// the topology; routing algorithms for meshes reason in directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increasing y.
    North,
    /// Increasing x.
    East,
    /// Decreasing y.
    South,
    /// Decreasing x.
    West,
}

impl Direction {
    /// All four directions, in port-numbering order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_index() {
        assert_eq!(RouterId(3).to_string(), "r3");
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(PortId(1).to_string(), "p1");
        assert_eq!(VcId(0).to_string(), "vc0");
        assert_eq!(Vnet(2).to_string(), "vn2");
        assert_eq!(PacketId(9).to_string(), "pkt9");
        assert_eq!(RouterId(5).index(), 5);
        assert_eq!(RouterId::from(5usize), RouterId(5));
    }

    #[test]
    fn flit_kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(FlitKind::HeadTail.is_head());
        assert!(!FlitKind::Body.is_head());
        assert!(FlitKind::Tail.is_tail());
        assert!(FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Head.is_tail());
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let pkt = PacketBuilder::new(NodeId(0), NodeId(1)).build(0);
        let flits: Vec<_> = pkt.flits(PacketHandle::new(0, 0)).collect();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
    }

    #[test]
    fn multi_flit_packet_structure() {
        let pkt = PacketBuilder::new(NodeId(0), NodeId(1)).len(5).build(0);
        let h = PacketHandle::new(3, 1);
        let flits: Vec<_> = pkt.flits(h).collect();
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Head);
        for f in &flits[1..4] {
            assert_eq!(f.kind, FlitKind::Body);
        }
        assert_eq!(flits[4].kind, FlitKind::Tail);
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq as usize, i);
            assert_eq!(f.packet, h);
        }
    }

    #[test]
    fn flit_stays_a_small_copy_handle() {
        // Belt-and-braces runtime mirror of the compile-time assertions:
        // the flit must never regrow an embedded header.
        assert!(std::mem::size_of::<Flit>() <= 16);
        assert_eq!(std::mem::size_of::<PacketHandle>(), 8);
        let f = Flit::new(PacketHandle::new(7, 2), 0, 1);
        let g = f; // Copy, not move
        assert_eq!(f, g);
    }

    #[test]
    fn packet_handle_accessors_roundtrip() {
        let h = PacketHandle::new(41, 3);
        assert_eq!(h.slot(), 41);
        assert_eq!(h.generation(), 3);
        assert_eq!(h.to_string(), "h41g3");
        assert_ne!(h, PacketHandle::new(41, 4));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_rejected() {
        let _ = PacketBuilder::new(NodeId(0), NodeId(1)).len(0);
    }

    #[test]
    fn current_target_prefers_intermediate() {
        let pkt = PacketBuilder::new(NodeId(0), NodeId(9))
            .intermediate(NodeId(4))
            .build(1);
        assert_eq!(pkt.current_target(), NodeId(4));
        let mut pkt2 = pkt;
        pkt2.intermediate = None;
        assert_eq!(pkt2.current_target(), NodeId(9));
    }

    #[test]
    fn direction_opposite_is_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn port_conn_display() {
        let c = PortConn {
            router: RouterId(2),
            port: PortId(3),
        };
        assert_eq!(c.to_string(), "r2:p3");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The flit decomposition always yields exactly `len` flits with
        /// coherent kinds and sequence numbers, for any packet shape, and
        /// every flit references the owning handle.
        #[test]
        fn prop_flit_decomposition(
            src in 0u32..1024,
            dst in 0u32..1024,
            len in 1u16..32,
            vnet in 0u8..4,
            cycle in 0u64..1_000_000,
            slot in 0u32..4096,
            generation in 0u32..16,
        ) {
            let pkt = PacketBuilder::new(NodeId(src), NodeId(dst))
                .len(len)
                .vnet(Vnet(vnet))
                .injected_at(cycle)
                .build(7);
            let h = PacketHandle::new(slot, generation);
            let flits: Vec<_> = pkt.flits(h).collect();
            prop_assert_eq!(flits.len(), len as usize);
            prop_assert!(flits[0].kind.is_head());
            prop_assert!(flits[len as usize - 1].kind.is_tail());
            let heads = flits.iter().filter(|f| f.kind.is_head()).count();
            let tails = flits.iter().filter(|f| f.kind.is_tail()).count();
            prop_assert_eq!(heads, 1);
            prop_assert_eq!(tails, 1);
            for (i, f) in flits.iter().enumerate() {
                prop_assert_eq!(f.seq as usize, i);
                prop_assert_eq!(f.packet, h);
            }
        }
    }
}
