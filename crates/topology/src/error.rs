//! Error type for topology construction.

use spin_types::{NodeId, PortConn, PortId, RouterId};
use std::fmt;

/// Errors raised while constructing or validating a [`Topology`].
///
/// [`Topology`]: crate::Topology
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A port was declared both a local (NIC) port and a network port.
    PortConflict {
        /// The router owning the conflicting port.
        router: RouterId,
        /// The conflicting port.
        port: PortId,
    },
    /// A link's reverse direction does not point back at it.
    AsymmetricLink {
        /// The forward endpoint.
        from: PortConn,
        /// The claimed peer.
        to: PortConn,
    },
    /// A node's attachment record does not match the router port table.
    BadNodeAttachment {
        /// The misattached node.
        node: NodeId,
    },
    /// The network graph is not connected. Carries the partition witness
    /// so the caller can see (and report) exactly which routers would be
    /// cut off — essential when a runtime link kill is rejected.
    Disconnected {
        /// Routers unreachable from router 0, ascending (the witness of
        /// the partition).
        unreachable: Vec<RouterId>,
    },
    /// A constructor parameter was invalid (e.g. zero-sized mesh).
    BadParameter(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PortConflict { router, port } => {
                write!(f, "port {port} of {router} is both local and network")
            }
            TopologyError::AsymmetricLink { from, to } => {
                write!(f, "link {from} -> {to} has no matching reverse link")
            }
            TopologyError::BadNodeAttachment { node } => {
                write!(f, "node {node} attachment does not match port table")
            }
            TopologyError::Disconnected { unreachable } => {
                write!(
                    f,
                    "network graph is not connected: {} router(s) unreachable from router 0 (",
                    unreachable.len()
                )?;
                for (i, r) in unreachable.iter().take(8).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                if unreachable.len() > 8 {
                    write!(f, ", ...")?;
                }
                write!(f, ")")
            }
            TopologyError::BadParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}
