use crate::{Topology, TopologyError, TopologyKind};
use proptest::prelude::*;
use spin_types::{Direction, NodeId, PortConn, PortId, RouterId};

#[test]
fn mesh_basic_shape() {
    let t = Topology::mesh(8, 8);
    assert_eq!(t.num_routers(), 64);
    assert_eq!(t.num_nodes(), 64);
    assert_eq!(t.radix(RouterId(0)), 5);
    assert_eq!(t.diameter(), 14);
    assert_eq!(t.name(), "mesh8x8");
    assert_eq!(
        *t.kind(),
        TopologyKind::Mesh {
            width: 8,
            height: 8
        }
    );
}

#[test]
fn mesh_corner_connectivity() {
    let t = Topology::mesh(4, 4);
    // Router 0 is at (0,0): connected N and E only.
    let r0 = RouterId(0);
    assert!(t.neighbor(r0, t.dir_port(Direction::North)).is_some());
    assert!(t.neighbor(r0, t.dir_port(Direction::East)).is_some());
    assert!(t.neighbor(r0, t.dir_port(Direction::South)).is_none());
    assert!(t.neighbor(r0, t.dir_port(Direction::West)).is_none());
    // North neighbour of (0,0) is (0,1) = router 4.
    let n = t.neighbor(r0, t.dir_port(Direction::North)).unwrap();
    assert_eq!(n.router, RouterId(4));
    assert_eq!(t.port_dir(n.port), Some(Direction::South));
}

#[test]
fn mesh_distance_is_manhattan() {
    let t = Topology::mesh(8, 8);
    for a in 0..64u32 {
        for b in 0..64u32 {
            let (ax, ay) = t.coords(RouterId(a));
            let (bx, by) = t.coords(RouterId(b));
            let manhattan = ax.abs_diff(bx) + ay.abs_diff(by);
            assert_eq!(t.dist(RouterId(a), RouterId(b)), manhattan);
        }
    }
}

#[test]
fn torus_wraps() {
    let t = Topology::torus(4, 4);
    assert_eq!(t.diameter(), 4);
    // (0,0) west neighbour is (3,0).
    let w = t
        .neighbor(RouterId(0), t.dir_port(Direction::West))
        .unwrap();
    assert_eq!(w.router, RouterId(3));
}

#[test]
fn ring_structure() {
    let t = Topology::ring(6);
    assert_eq!(t.num_routers(), 6);
    assert_eq!(t.diameter(), 3);
    let next = t.neighbor(RouterId(5), PortId(1)).unwrap();
    assert_eq!(next.router, RouterId(0));
    let prev = t.neighbor(RouterId(0), PortId(2)).unwrap();
    assert_eq!(prev.router, RouterId(5));
}

#[test]
fn dragonfly_paper_config() {
    // The paper's 1024-node dragonfly: group size 8.
    let t = Topology::dragonfly(4, 8, 4, 32);
    assert_eq!(t.num_nodes(), 1024);
    assert_eq!(t.num_routers(), 256);
    // p local + (a-1) intra + h global ports.
    assert_eq!(t.radix(RouterId(0)), 4 + 7 + 4);
    // Minimal inter-group path: local-global-local => diameter 3.
    assert_eq!(t.diameter(), 3);
}

#[test]
fn dragonfly_canonical_config() {
    // Canonical balanced dragonfly g = a*h + 1.
    let t = Topology::dragonfly(2, 4, 2, 9);
    assert_eq!(t.num_routers(), 36);
    assert_eq!(t.num_nodes(), 72);
    assert_eq!(t.diameter(), 3);
}

#[test]
fn dragonfly_every_group_pair_directly_linked() {
    let t = Topology::dragonfly(4, 8, 4, 32);
    let g = 32u32;
    let mut direct = vec![vec![false; g as usize]; g as usize];
    for (from, to) in t.links() {
        let g1 = t.group_of(from.router);
        let g2 = t.group_of(to.router);
        if g1 != g2 {
            direct[g1 as usize][g2 as usize] = true;
            // Global links must carry the configured 3-cycle latency.
            assert_eq!(t.link_latency(from.router, from.port), 3);
            assert!(t.is_global_port(from.router, from.port));
        } else {
            assert_eq!(t.link_latency(from.router, from.port), 1);
        }
    }
    for (a, row) in direct.iter().enumerate() {
        for (b, &linked) in row.iter().enumerate() {
            if a != b {
                assert!(linked, "groups {a} and {b} lack a direct channel");
            }
        }
    }
}

#[test]
fn dragonfly_global_channel_budget() {
    let t = Topology::dragonfly(4, 8, 4, 32);
    // Each of the 256 routers has exactly h=4 global ports, all connected.
    for r in 0..256u32 {
        let globals = t
            .network_ports(RouterId(r))
            .iter()
            .filter(|&&p| t.is_global_port(RouterId(r), p))
            .count();
        assert_eq!(globals, 4, "router {r} global port count");
    }
}

#[test]
fn dragonfly_bad_parameters_rejected() {
    // Not enough channels: a*h = 2 < g-1 = 4.
    assert!(matches!(
        Topology::try_dragonfly(1, 2, 1, 5, 1, 3),
        Err(TopologyError::BadParameter(_))
    ));
    // Remainder channels (a*h = 5, g-1 = 2, rem = 1) with odd group count.
    assert!(matches!(
        Topology::try_dragonfly(1, 5, 1, 3, 1, 3),
        Err(TopologyError::BadParameter(_))
    ));
    assert!(matches!(
        Topology::try_dragonfly(0, 2, 2, 3, 1, 3),
        Err(TopologyError::BadParameter(_))
    ));
}

#[test]
fn irregular_rejects_bad_edges() {
    assert!(Topology::irregular(3, &[(0, 0)], 1).is_err());
    assert!(Topology::irregular(3, &[(0, 5)], 1).is_err());
    assert!(Topology::irregular(3, &[(0, 1), (1, 0)], 1).is_err());
    // Disconnected: 0-1 only, router 2 isolated — the witness names it.
    match Topology::irregular(3, &[(0, 1)], 1) {
        Err(TopologyError::Disconnected { unreachable }) => {
            assert_eq!(unreachable, vec![RouterId(2)]);
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn irregular_line_graph() {
    let t = Topology::irregular(3, &[(0, 1), (1, 2)], 2).unwrap();
    assert_eq!(t.num_nodes(), 6);
    assert_eq!(t.dist(RouterId(0), RouterId(2)), 2);
    assert_eq!(t.node_router(NodeId(5)), RouterId(2));
}

#[test]
fn random_connected_is_connected_and_deterministic() {
    let a = Topology::random_connected(24, 10, 1, 7).unwrap();
    let b = Topology::random_connected(24, 10, 1, 7).unwrap();
    assert_eq!(a.num_routers(), 24);
    assert!(a.diameter() < u32::MAX);
    // Determinism: identical seeds produce identical link sets.
    let links_a: Vec<_> = a.links().collect();
    let links_b: Vec<_> = b.links().collect();
    assert_eq!(links_a, links_b);
    let c = Topology::random_connected(24, 10, 1, 8).unwrap();
    let links_c: Vec<_> = c.links().collect();
    assert_ne!(links_a, links_c);
}

#[test]
fn minimal_ports_empty_at_destination() {
    let t = Topology::mesh(4, 4);
    assert!(t.minimal_ports(RouterId(5), RouterId(5)).is_empty());
}

#[test]
fn local_and_network_ports_partition() {
    let t = Topology::dragonfly(2, 4, 2, 9);
    for r in 0..t.num_routers() {
        let r = RouterId(r as u32);
        let locals = t.local_ports(r);
        let nets = t.network_ports(r);
        assert_eq!(locals.len(), 2);
        assert_eq!(nets.len(), 3 + 2);
        for p in locals {
            assert!(t.port(r, p).is_local());
            assert!(!t.port(r, p).is_network());
        }
    }
}

#[test]
fn hyperx_basic_shape() {
    // 3-D HyperX 3x3x3, one terminal per router.
    let t = Topology::hyperx(&[3, 3, 3], 1);
    assert_eq!(t.num_routers(), 27);
    assert_eq!(t.num_nodes(), 27);
    // 1 local + (3-1) per dimension.
    assert_eq!(t.radix(RouterId(0)), 1 + 2 + 2 + 2);
    // One hop per unaligned dimension: diameter = L.
    assert_eq!(t.diameter(), 3);
    assert_eq!(t.name(), "hyperx3x3x3t1");
    assert_eq!(
        *t.kind(),
        TopologyKind::HyperX {
            dims: vec![3, 3, 3],
            t: 1
        }
    );
}

#[test]
fn hyperx_coords_roundtrip_and_ports() {
    let t = Topology::hyperx(&[4, 3, 2], 2);
    assert_eq!(t.num_routers(), 24);
    assert_eq!(t.num_nodes(), 48);
    for r in 0..t.num_routers() {
        let r = RouterId(r as u32);
        let coords = t.hyperx_coords(r);
        assert_eq!(t.hyperx_router(&coords), r);
        // Every same-dimension peer is exactly one hop away through the
        // port hyperx_port names, and the peer differs only in that dim.
        for (dim, &d) in t.hyperx_dims().iter().enumerate() {
            for to in 0..d {
                if to == coords[dim] {
                    continue;
                }
                let p = t.hyperx_port(r, dim, to);
                let peer = t.neighbor(r, p).unwrap();
                let mut want = coords.clone();
                want[dim] = to;
                assert_eq!(peer.router, t.hyperx_router(&want));
                // Links are never "global" in a HyperX.
                assert!(!t.is_global_port(r, p));
            }
        }
    }
}

#[test]
fn hyperx_distance_counts_unaligned_dims() {
    let t = Topology::hyperx(&[4, 3, 2], 1);
    for a in 0..t.num_routers() {
        for b in 0..t.num_routers() {
            let (ra, rb) = (RouterId(a as u32), RouterId(b as u32));
            let ca = t.hyperx_coords(ra);
            let cb = t.hyperx_coords(rb);
            let unaligned = ca.iter().zip(&cb).filter(|(x, y)| x != y).count() as u32;
            assert_eq!(t.dist(ra, rb), unaligned);
        }
    }
}

#[test]
fn hyperx_bad_parameters_rejected() {
    assert!(matches!(
        Topology::try_hyperx(&[], 1, 1),
        Err(TopologyError::BadParameter(_))
    ));
    assert!(matches!(
        Topology::try_hyperx(&[1, 3], 1, 1),
        Err(TopologyError::BadParameter(_))
    ));
    assert!(matches!(
        Topology::try_hyperx(&[3, 3], 0, 1),
        Err(TopologyError::BadParameter(_))
    ));
    // Radix 4 + 299 > 256.
    assert!(matches!(
        Topology::try_hyperx(&[300], 4, 1),
        Err(TopologyError::BadParameter(_))
    ));
}

#[test]
fn dragonfly_plus_basic_shape() {
    let t = Topology::dragonfly_plus(2, 2, 2, 2, 4);
    assert_eq!(t.num_routers(), 16); // (2 leaves + 2 spines) * 4 groups
    assert_eq!(t.num_nodes(), 16); // 2 terminals * 2 leaves * 4 groups
    assert_eq!(t.name(), "dfplus_p2l2s2h2g4");
    // Leaf 0 of group 0: 2 local + 2 up ports; spine: 2 down + 2 global.
    assert_eq!(t.radix(RouterId(0)), 4);
    assert_eq!(t.radix(RouterId(2)), 4);
    assert!(!t.is_spine(RouterId(0)));
    assert!(!t.is_spine(RouterId(1)));
    assert!(t.is_spine(RouterId(2)));
    assert!(t.is_spine(RouterId(3)));
    assert_eq!(t.group_of(RouterId(0)), 0);
    assert_eq!(t.group_of(RouterId(5)), 1);
    // leaf -> spine -> (global) -> spine -> leaf is 3 links; with s*h = 4
    // channels over 3 group pairs every pair is directly linked, so no
    // router pair needs more.
    assert_eq!(t.diameter(), 3);
}

#[test]
fn dragonfly_plus_wiring_invariants() {
    let t = Topology::dragonfly_plus(2, 2, 2, 2, 4);
    for (from, to) in t.links() {
        let same_group = t.group_of(from.router) == t.group_of(to.router);
        if same_group {
            // Intra-group links join a leaf and a spine (bipartite).
            assert_ne!(t.is_spine(from.router), t.is_spine(to.router));
            assert_eq!(t.link_latency(from.router, from.port), 1);
            assert!(!t.is_global_port(from.router, from.port));
        } else {
            // Global links join two spines.
            assert!(t.is_spine(from.router) && t.is_spine(to.router));
            assert_eq!(t.link_latency(from.router, from.port), 3);
            assert!(t.is_global_port(from.router, from.port));
        }
    }
    // Every pair of groups is directly linked (s*h = 4 >= g-1 = 3).
    let g = 4usize;
    let mut direct = vec![vec![false; g]; g];
    for (from, to) in t.links() {
        let (g1, g2) = (t.group_of(from.router), t.group_of(to.router));
        if g1 != g2 {
            direct[g1 as usize][g2 as usize] = true;
        }
    }
    for (a, row) in direct.iter().enumerate() {
        for (b, &linked) in row.iter().enumerate() {
            if a != b {
                assert!(linked, "groups {a} and {b} lack a direct channel");
            }
        }
    }
    // Terminals attach only to leaves.
    for n in 0..t.num_nodes() {
        assert!(!t.is_spine(t.node_router(NodeId(n as u32))));
    }
}

#[test]
fn dragonfly_plus_campaign_scale() {
    // The >= 256-node configuration the cross-topology campaign uses.
    let t = Topology::dragonfly_plus(4, 8, 8, 1, 8);
    assert_eq!(t.num_nodes(), 256);
    assert_eq!(t.num_routers(), 128);
    // With h = 1 each spine owns one global channel, so the worst pair is
    // spine-to-spine through a leaf on both sides: 5 links. Leaf-to-leaf
    // (what packets actually traverse) stays <= 3.
    assert_eq!(t.diameter(), 5);
    for a in 0..t.num_nodes() {
        for b in 0..t.num_nodes() {
            let (ra, rb) = (
                t.node_router(NodeId(a as u32)),
                t.node_router(NodeId(b as u32)),
            );
            assert!(t.dist(ra, rb) <= 3, "leaf-to-leaf distance exceeds 3");
        }
    }
}

#[test]
fn dragonfly_plus_bad_parameters_rejected() {
    // s*h = 2 < g-1 = 3.
    assert!(matches!(
        Topology::try_dragonfly_plus(1, 2, 2, 1, 4, 1, 3),
        Err(TopologyError::BadParameter(_))
    ));
    // Remainder channels with odd group count: s*h = 4, g-1 = 2, rem = 2? No:
    // 4 % 2 == 0; use s*h = 3, g = 3: rem = 3 % 2 = 1, odd g rejected.
    assert!(matches!(
        Topology::try_dragonfly_plus(1, 1, 3, 1, 3, 1, 3),
        Err(TopologyError::BadParameter(_))
    ));
    assert!(matches!(
        Topology::try_dragonfly_plus(0, 2, 2, 2, 4, 1, 3),
        Err(TopologyError::BadParameter(_))
    ));
}

#[test]
fn full_mesh_basic_shape() {
    let t = Topology::full_mesh(8, 1).unwrap();
    assert_eq!(t.num_routers(), 8);
    assert_eq!(t.num_nodes(), 8);
    assert_eq!(t.radix(RouterId(0)), 8); // 1 local + 7 peers
    assert_eq!(t.diameter(), 1);
    assert_eq!(t.name(), "fullmesh8p1");
    // Direct port lookup agrees with the wiring.
    for i in 0..8u32 {
        for j in 0..8u32 {
            if i == j {
                continue;
            }
            let p = t.full_mesh_port(RouterId(i), RouterId(j));
            assert_eq!(t.neighbor(RouterId(i), p).unwrap().router, RouterId(j));
            assert!(!t.is_global_port(RouterId(i), p));
        }
    }
}

#[test]
fn full_mesh_bad_parameters_rejected() {
    assert!(Topology::full_mesh(1, 1).is_err());
    assert!(Topology::full_mesh(4, 0).is_err());
    // Radix 1 + 299 > 256.
    assert!(Topology::full_mesh(300, 1).is_err());
}

#[test]
fn full_mesh_cut_link_witness() {
    // Remove edge (0,1) statically, then edge (0,2) becomes router 0's only
    // remaining path in K3 — check_link_removal must name 0 as stranded.
    let t = Topology::full_mesh(3, 1).unwrap();
    let p01 = t.full_mesh_port(RouterId(0), RouterId(1));
    let degraded = t.with_failed_links(&[(RouterId(0), p01)]).unwrap();
    let p02 = t.full_mesh_port(RouterId(0), RouterId(2));
    match degraded.check_link_removal(RouterId(0), p02) {
        Err(TopologyError::Disconnected { unreachable }) => {
            assert_eq!(unreachable, vec![RouterId(1), RouterId(2)]);
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn hyperx_cut_link_witness() {
    // A 1-D HyperX of size 2 is a single link: removing it must fail with
    // a partition witness.
    let t = Topology::hyperx(&[2], 1);
    match t.check_link_removal(RouterId(0), PortId(1)) {
        Err(TopologyError::Disconnected { unreachable }) => {
            assert_eq!(unreachable, vec![RouterId(1)]);
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn dragonfly_plus_cut_link_witness() {
    // A leaf with one spine up-link: cutting it strands the leaf.
    let t = Topology::dragonfly_plus(1, 2, 1, 2, 2);
    // Leaf 0 of group 0 has a single up port (p=1, s=1 => port 1).
    assert!(!t.is_spine(RouterId(0)));
    assert_eq!(t.network_ports(RouterId(0)).len(), 1);
    let up = t.network_ports(RouterId(0))[0];
    match t.check_link_removal(RouterId(0), up) {
        Err(TopologyError::Disconnected { unreachable }) => {
            // The witness is relative to router 0 — the stranded leaf
            // itself — so it names everyone on the far side of the cut.
            assert_eq!(unreachable, (1..6).map(RouterId).collect::<Vec<_>>());
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn new_topologies_support_runtime_faults() {
    // fail/restore work on the new families where a redundant link exists.
    let mut t = Topology::full_mesh(4, 1).unwrap();
    let p = t.full_mesh_port(RouterId(0), RouterId(1));
    let (a, b, lat) = t.fail_link(RouterId(0), p).unwrap();
    assert_eq!(t.dist(RouterId(0), RouterId(1)), 2);
    t.restore_link(a, b, lat).unwrap();
    assert_eq!(t.dist(RouterId(0), RouterId(1)), 1);

    let mut hx = Topology::hyperx(&[3, 3], 1);
    let p = hx.hyperx_port(RouterId(0), 0, 1);
    let (a, b, lat) = hx.fail_link(RouterId(0), p).unwrap();
    assert_eq!(hx.dist(RouterId(0), RouterId(1)), 2);
    hx.restore_link(a, b, lat).unwrap();
    assert_eq!(hx.dist(RouterId(0), RouterId(1)), 1);
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2u32..6, 2u32..6).prop_map(|(w, h)| Topology::mesh(w, h)),
        (2u32..5, 2u32..5).prop_map(|(w, h)| Topology::torus(w, h)),
        (2u32..12).prop_map(Topology::ring),
        (4u32..20, 0u32..12, any::<u64>())
            .prop_map(|(n, e, s)| Topology::random_connected(n, e, 1, s).unwrap()),
        Just(Topology::dragonfly(2, 4, 2, 9)),
        proptest::collection::vec(2u32..5, 1..4).prop_map(|dims| Topology::hyperx(&dims, 1)),
        Just(Topology::dragonfly_plus(2, 2, 2, 2, 4)),
        Just(Topology::dragonfly_plus(1, 3, 2, 2, 3)),
        (2u32..10, 1u32..3).prop_map(|(n, p)| Topology::full_mesh(n, p).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every link has a symmetric reverse link (checked by the constructor,
    /// re-verified here through the public API).
    #[test]
    fn prop_links_symmetric(t in arb_topology()) {
        for (from, to) in t.links() {
            let back = t.neighbor(to.router, to.port).unwrap();
            prop_assert_eq!(back, from);
            prop_assert_eq!(
                t.link_latency(from.router, from.port),
                t.link_latency(to.router, to.port)
            );
        }
    }

    /// Following any minimal port decreases distance by exactly one, and at
    /// least one minimal port exists whenever distance > 0.
    #[test]
    fn prop_minimal_ports_decrease_distance(t in arb_topology()) {
        let n = t.num_routers();
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (RouterId(a as u32), RouterId(b as u32));
                let d = t.dist(a, b);
                let ports = t.minimal_ports(a, b);
                if d == 0 {
                    prop_assert!(ports.is_empty());
                } else {
                    prop_assert!(!ports.is_empty());
                    for p in ports {
                        let peer = t.neighbor(a, p).unwrap();
                        prop_assert_eq!(t.dist(peer.router, b), d - 1);
                    }
                }
            }
        }
    }

    /// Distance satisfies the triangle inequality and symmetry (links are
    /// bidirectional).
    #[test]
    fn prop_distance_metric(t in arb_topology()) {
        let n = t.num_routers().min(12);
        for a in 0..n {
            for b in 0..n {
                let (ra, rb) = (RouterId(a as u32), RouterId(b as u32));
                prop_assert_eq!(t.dist(ra, rb), t.dist(rb, ra));
                for c in 0..n {
                    let rc = RouterId(c as u32);
                    prop_assert!(t.dist(ra, rb) <= t.dist(ra, rc) + t.dist(rc, rb));
                }
            }
        }
    }

    /// Node attachments round-trip: the port a node attaches to names it.
    #[test]
    fn prop_node_attachment_roundtrip(t in arb_topology()) {
        for n in 0..t.num_nodes() {
            let node = NodeId(n as u32);
            let at = t.node_attach(node);
            prop_assert_eq!(t.port(at.router, at.port).node, Some(node));
            prop_assert_eq!(t.node_router(node), at.router);
        }
    }
}

#[test]
fn cmesh_structure() {
    let t = Topology::cmesh(3, 3, 4).unwrap();
    assert_eq!(t.num_routers(), 9);
    assert_eq!(t.num_nodes(), 36);
    assert_eq!(t.local_ports(RouterId(0)).len(), 4);
    // Center router has 4 network neighbours.
    assert_eq!(t.network_ports(RouterId(4)).len(), 4);
    assert!(Topology::cmesh(1, 3, 1).is_err());
    assert!(Topology::cmesh(3, 3, 0).is_err());
}

#[test]
fn failed_links_remove_both_directions() {
    let t = Topology::mesh(4, 4);
    // Kill the link from r0 going North (to r4).
    let d = t.with_failed_links(&[(RouterId(0), PortId(1))]).unwrap();
    assert!(d.neighbor(RouterId(0), PortId(1)).is_none());
    assert!(d.neighbor(RouterId(4), PortId(3)).is_none());
    // Distances re-computed: r0 -> r4 now takes a detour.
    assert_eq!(t.dist(RouterId(0), RouterId(4)), 1);
    assert_eq!(d.dist(RouterId(0), RouterId(4)), 3);
    // Failing a local port is rejected.
    assert!(t.with_failed_links(&[(RouterId(0), PortId(0))]).is_err());
}

#[test]
fn failed_links_disconnecting_rejected() {
    let t = Topology::mesh(2, 2);
    // Cut both links of r0: disconnects it.
    let cut = [(RouterId(0), PortId(1)), (RouterId(0), PortId(2))];
    match t.with_failed_links(&cut) {
        Err(TopologyError::Disconnected { unreachable }) => {
            // 2x2 mesh: cutting both of r0's links strands it; the witness
            // is relative to router 0, so it names everyone else.
            assert_eq!(unreachable, vec![RouterId(1), RouterId(2), RouterId(3)]);
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn runtime_fail_and_restore_link() {
    let mut t = Topology::mesh(4, 4);
    assert_eq!(t.dist(RouterId(0), RouterId(4)), 1);

    // Kill r0's North link (to r4) in place.
    let (a, b, lat) = t.fail_link(RouterId(0), PortId(1)).unwrap();
    assert_eq!(
        b,
        PortConn {
            router: RouterId(4),
            port: PortId(3)
        }
    );
    assert!(t.neighbor(RouterId(0), PortId(1)).is_none());
    assert!(t.neighbor(RouterId(4), PortId(3)).is_none());
    // Distances re-derived in place.
    assert_eq!(t.dist(RouterId(0), RouterId(4)), 3);
    // Kind survives so coordinate helpers keep working on the degraded mesh.
    assert_eq!(t.coords(RouterId(5)), (1, 1));

    // Killing the same (now dead) port again is a parameter error.
    assert!(matches!(
        t.fail_link(RouterId(0), PortId(1)),
        Err(TopologyError::BadParameter(_))
    ));
    // Killing a local port is a parameter error.
    assert!(matches!(
        t.fail_link(RouterId(0), PortId(0)),
        Err(TopologyError::BadParameter(_))
    ));

    // Heal: back to the original distances.
    t.restore_link(a, b, lat).unwrap();
    assert_eq!(t.dist(RouterId(0), RouterId(4)), 1);
    assert_eq!(
        t.neighbor(RouterId(0), PortId(1)),
        Some(PortConn {
            router: RouterId(4),
            port: PortId(3)
        })
    );
    // Restoring an already-connected port is rejected.
    assert!(t.restore_link(a, b, lat).is_err());
}

#[test]
fn runtime_fail_rejects_disconnecting_cut_with_witness() {
    // Line 0-1-2: cutting 1-2 strands router 2; nothing is modified.
    let mut t = Topology::irregular(3, &[(0, 1), (1, 2)], 1).unwrap();
    let p12 = t
        .network_ports(RouterId(1))
        .iter()
        .copied()
        .find(|&p| t.neighbor(RouterId(1), p).unwrap().router == RouterId(2))
        .unwrap();
    match t.fail_link(RouterId(1), p12) {
        Err(TopologyError::Disconnected { unreachable }) => {
            assert_eq!(unreachable, vec![RouterId(2)]);
            let msg = TopologyError::Disconnected { unreachable }.to_string();
            assert!(msg.contains("unreachable"), "{msg}");
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
    // Untouched: the link is still up.
    assert_eq!(t.dist(RouterId(0), RouterId(2)), 2);
    assert!(t.neighbor(RouterId(1), p12).is_some());
}
