//! Network topologies for the SPIN reproduction.
//!
//! A [`Topology`] is a concrete, data-driven description of a network: a set
//! of routers, the directed links between their ports, the terminals (NICs)
//! attached through local ports, per-link latencies, and precomputed
//! all-pairs hop distances. Constructors are provided for the topologies the
//! paper evaluates — the 8x8 2-D mesh and the 1024-node dragonfly — plus
//! rings, tori and arbitrary irregular graphs (SPIN's headline capability is
//! being topology-agnostic, so irregular graphs get first-class support).
//!
//! Port numbering convention: for a router with `l` local (NIC) ports and
//! `k` network ports, ports `0..l` attach terminals and ports `l..l+k` are
//! network ports. Mesh/torus routers map ports `1..=4` to
//! North/East/South/West in that order; unconnected edge ports exist but
//! have no peer.
//!
//! # Examples
//!
//! ```
//! use spin_topology::Topology;
//! use spin_types::{NodeId, RouterId};
//!
//! let mesh = Topology::mesh(8, 8);
//! assert_eq!(mesh.num_routers(), 64);
//! assert_eq!(mesh.num_nodes(), 64);
//! // Manhattan distance between opposite corners:
//! assert_eq!(mesh.dist(RouterId(0), RouterId(63)), 14);
//!
//! let dfly = Topology::dragonfly(4, 8, 4, 32);
//! assert_eq!(dfly.num_nodes(), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod builders;
mod error;

pub use error::TopologyError;

use smallvec::SmallVec;
use spin_types::{Direction, NodeId, PortConn, PortId, RouterId};
use std::fmt;

/// A single port of a router: either attached to a terminal node, connected
/// to a peer router port, or unconnected (mesh edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port {
    /// The peer network port, if this is a connected network port.
    pub conn: Option<PortConn>,
    /// The attached terminal, if this is a local port.
    pub node: Option<NodeId>,
    /// Link traversal latency in cycles (>= 1 for network ports).
    pub latency: u32,
}

impl Port {
    fn unconnected() -> Self {
        Port {
            conn: None,
            node: None,
            latency: 1,
        }
    }

    /// True if this port attaches a terminal node.
    #[inline]
    pub fn is_local(&self) -> bool {
        self.node.is_some()
    }

    /// True if this port connects to another router.
    #[inline]
    pub fn is_network(&self) -> bool {
        self.conn.is_some()
    }
}

/// Which topology family a [`Topology`] instance belongs to, with
/// family-specific parameters for routing algorithms that need them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyKind {
    /// `width x height` 2-D mesh.
    Mesh {
        /// Routers along x.
        width: u32,
        /// Routers along y.
        height: u32,
    },
    /// `width x height` 2-D torus (wrap-around links).
    Torus {
        /// Routers along x.
        width: u32,
        /// Routers along y.
        height: u32,
    },
    /// Unidirectional-pair ring of `n` routers (bidirectional links).
    Ring {
        /// Number of routers.
        n: u32,
    },
    /// Dragonfly with `p` terminals/router, `a` routers/group, `h` global
    /// links/router, `g` groups.
    Dragonfly {
        /// Terminals per router.
        p: u32,
        /// Routers per group.
        a: u32,
        /// Global links per router.
        h: u32,
        /// Number of groups.
        g: u32,
    },
    /// L-dimensional HyperX: routers form a `dims[0] x .. x dims[L-1]`
    /// lattice with per-dimension all-to-all links and `t` terminals per
    /// router.
    HyperX {
        /// Routers along each dimension (length L >= 1, entries >= 2).
        dims: Vec<u32>,
        /// Terminals per router.
        t: u32,
    },
    /// Dragonfly+ (two-level fat-tree groups joined all-to-all): `p`
    /// terminals per leaf, `l` leaves and `s` spines per group, `h` global
    /// links per spine, `g` groups.
    DragonflyPlus {
        /// Terminals per leaf router.
        p: u32,
        /// Leaf routers per group.
        l: u32,
        /// Spine routers per group.
        s: u32,
        /// Global links per spine router.
        h: u32,
        /// Number of groups.
        g: u32,
    },
    /// Complete graph of `n` routers with `p` terminals each.
    FullMesh {
        /// Number of routers.
        n: u32,
        /// Terminals per router.
        p: u32,
    },
    /// Arbitrary graph.
    Irregular,
}

/// A concrete network topology (see crate docs for conventions).
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    kind: TopologyKind,
    /// ports[r] = port table of router r.
    ports: Vec<Vec<Port>>,
    /// node_attach[n] = (router, local port) of terminal n.
    node_attach: Vec<PortConn>,
    /// dist[r1][r2] = network hop distance.
    dist: Vec<Vec<u32>>,
}

/// Candidate output ports, small enough to stay on the stack.
pub type PortVec = SmallVec<[PortId; 8]>;

/// Per-dimension coordinates of a HyperX router, small enough to stay on
/// the stack for any realistic dimension count.
pub type DimVec = SmallVec<[u32; 4]>;

impl Topology {
    pub(crate) fn from_parts(
        name: String,
        kind: TopologyKind,
        ports: Vec<Vec<Port>>,
        node_attach: Vec<PortConn>,
    ) -> Result<Self, TopologyError> {
        let mut topo = Topology {
            name,
            kind,
            ports,
            node_attach,
            dist: Vec::new(),
        };
        topo.validate()?;
        topo.dist = topo.all_pairs_bfs();
        // Reachability check: every router must reach every other. Links
        // are symmetric (validated above), so row 0 decides connectivity
        // and doubles as the partition witness.
        let unreachable: Vec<RouterId> = topo
            .dist
            .first()
            .map(|row| row.as_slice())
            .unwrap_or(&[])
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == u32::MAX)
            .map(|(r, _)| RouterId(r as u32))
            .collect();
        if !unreachable.is_empty() {
            return Err(TopologyError::Disconnected { unreachable });
        }
        Ok(topo)
    }

    fn validate(&self) -> Result<(), TopologyError> {
        for (r, ps) in self.ports.iter().enumerate() {
            for (p, port) in ps.iter().enumerate() {
                if port.conn.is_some() && port.node.is_some() {
                    return Err(TopologyError::PortConflict {
                        router: RouterId(r as u32),
                        port: PortId(p as u8),
                    });
                }
                if let Some(peer) = port.conn {
                    let back = self
                        .ports
                        .get(peer.router.index())
                        .and_then(|ps| ps.get(peer.port.index()))
                        .and_then(|p| p.conn);
                    let me = PortConn {
                        router: RouterId(r as u32),
                        port: PortId(p as u8),
                    };
                    if back != Some(me) {
                        return Err(TopologyError::AsymmetricLink { from: me, to: peer });
                    }
                }
            }
        }
        for (n, at) in self.node_attach.iter().enumerate() {
            let port = &self.ports[at.router.index()][at.port.index()];
            if port.node != Some(NodeId(n as u32)) {
                return Err(TopologyError::BadNodeAttachment {
                    node: NodeId(n as u32),
                });
            }
        }
        Ok(())
    }

    fn all_pairs_bfs(&self) -> Vec<Vec<u32>> {
        let n = self.ports.len();
        let mut dist = vec![vec![u32::MAX; n]; n];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..n {
            let row = &mut dist[src];
            row[src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(r) = queue.pop_front() {
                let d = row[r];
                for port in &self.ports[r] {
                    if let Some(peer) = port.conn {
                        let pr = peer.router.index();
                        if row[pr] == u32::MAX {
                            row[pr] = d + 1;
                            queue.push_back(pr);
                        }
                    }
                }
            }
        }
        dist
    }

    /// Human-readable topology name, e.g. `"mesh8x8"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The topology family and parameters.
    pub fn kind(&self) -> &TopologyKind {
        &self.kind
    }

    /// Number of routers.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.ports.len()
    }

    /// Number of terminal nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_attach.len()
    }

    /// Number of ports (local + network + unconnected) at router `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn radix(&self, r: RouterId) -> usize {
        self.ports[r.index()].len()
    }

    /// The port table of router `r`.
    #[inline]
    pub fn ports(&self, r: RouterId) -> &[Port] {
        &self.ports[r.index()]
    }

    /// The port `p` of router `r`.
    #[inline]
    pub fn port(&self, r: RouterId, p: PortId) -> &Port {
        &self.ports[r.index()][p.index()]
    }

    /// The peer endpoint of network port `p` of router `r`, if connected.
    #[inline]
    pub fn neighbor(&self, r: RouterId, p: PortId) -> Option<PortConn> {
        self.port(r, p).conn
    }

    /// Link latency of port `p` at router `r` in cycles.
    #[inline]
    pub fn link_latency(&self, r: RouterId, p: PortId) -> u32 {
        self.port(r, p).latency
    }

    /// The router and local port that terminal `n` attaches to.
    #[inline]
    pub fn node_attach(&self, n: NodeId) -> PortConn {
        self.node_attach[n.index()]
    }

    /// The router that terminal `n` attaches to.
    #[inline]
    pub fn node_router(&self, n: NodeId) -> RouterId {
        self.node_attach[n.index()].router
    }

    /// Network hop distance between two routers.
    #[inline]
    pub fn dist(&self, a: RouterId, b: RouterId) -> u32 {
        self.dist[a.index()][b.index()]
    }

    /// Minimal network hops from router `at` to terminal `to` (not counting
    /// the ejection hop).
    #[inline]
    pub fn dist_to_node(&self, at: RouterId, to: NodeId) -> u32 {
        self.dist(at, self.node_router(to))
    }

    /// Network output ports at `at` that lie on a minimal path to router
    /// `to`. Empty iff `at == to`.
    pub fn minimal_ports(&self, at: RouterId, to: RouterId) -> PortVec {
        let mut out = PortVec::new();
        if at == to {
            return out;
        }
        let d = self.dist(at, to);
        for (i, port) in self.ports[at.index()].iter().enumerate() {
            if let Some(peer) = port.conn {
                if self.dist(peer.router, to) + 1 == d {
                    out.push(PortId(i as u8));
                }
            }
        }
        out
    }

    /// All connected network output ports at `at` (any direction, minimal or
    /// not), excluding local ports.
    pub fn network_ports(&self, at: RouterId) -> PortVec {
        self.ports[at.index()]
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_network())
            .map(|(i, _)| PortId(i as u8))
            .collect()
    }

    /// Local (NIC) ports at router `at`.
    pub fn local_ports(&self, at: RouterId) -> PortVec {
        self.ports[at.index()]
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_local())
            .map(|(i, _)| PortId(i as u8))
            .collect()
    }

    /// Iterates over every directed network link as `(from, to)` endpoints.
    pub fn links(&self) -> impl Iterator<Item = (PortConn, PortConn)> + '_ {
        self.ports.iter().enumerate().flat_map(|(r, ps)| {
            ps.iter().enumerate().filter_map(move |(p, port)| {
                port.conn.map(|peer| {
                    (
                        PortConn {
                            router: RouterId(r as u32),
                            port: PortId(p as u8),
                        },
                        peer,
                    )
                })
            })
        })
    }

    /// The network diameter in hops.
    pub fn diameter(&self) -> u32 {
        self.dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    // ---- runtime link faults --------------------------------------------

    /// Checks whether removing the bidirectional link at `(r, p)` would
    /// disconnect the network, without modifying anything.
    ///
    /// Returns the peer endpoint on success. Fails with
    /// [`TopologyError::BadParameter`] if `(r, p)` is not a connected
    /// network port, or [`TopologyError::Disconnected`] — carrying the
    /// partition witness — if the network would fall apart. This is the
    /// same check [`Topology::with_failed_links`] applies to static
    /// pre-failed links; the runtime fault stage reuses it so a kill that
    /// would disconnect is rejected (and traced) instead of applied.
    ///
    /// [`Topology::with_failed_links`]: Topology::with_failed_links
    pub fn check_link_removal(&self, r: RouterId, p: PortId) -> Result<PortConn, TopologyError> {
        let Some(peer) = self
            .ports
            .get(r.index())
            .and_then(|ps| ps.get(p.index()))
            .and_then(|port| port.conn)
        else {
            return Err(TopologyError::BadParameter(format!(
                "({r}, {p}) is not a connected network port"
            )));
        };
        // BFS from router 0 skipping both directions of the doomed link.
        let me = PortConn { router: r, port: p };
        let n = self.ports.len();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        while let Some(at) = queue.pop_front() {
            for (i, port) in self.ports[at].iter().enumerate() {
                let from = PortConn {
                    router: RouterId(at as u32),
                    port: PortId(i as u8),
                };
                if from == me || from == peer {
                    continue;
                }
                if let Some(next) = port.conn {
                    let idx = next.router.index();
                    if !seen[idx] {
                        seen[idx] = true;
                        queue.push_back(idx);
                    }
                }
            }
        }
        let unreachable: Vec<RouterId> = seen
            .iter()
            .enumerate()
            .filter(|&(_, &ok)| !ok)
            .map(|(i, _)| RouterId(i as u32))
            .collect();
        if unreachable.is_empty() {
            Ok(peer)
        } else {
            Err(TopologyError::Disconnected { unreachable })
        }
    }

    /// Removes the bidirectional link at `(r, p)` in place — a runtime
    /// link fault — and recomputes the distance tables.
    ///
    /// The removal is rejected with nothing modified if it would
    /// disconnect the network (see [`Topology::check_link_removal`]).
    /// Returns `(local endpoint, peer endpoint, latency)` so the caller
    /// can later undo the fault with [`Topology::restore_link`].
    ///
    /// The topology [`kind`](Topology::kind) is deliberately left
    /// unchanged (a degraded mesh still answers [`coords`](Topology::coords)
    /// etc.); algorithms that rely on full regularity — e.g. dimension-order
    /// escape routes — must not be combined with runtime faults.
    pub fn fail_link(
        &mut self,
        r: RouterId,
        p: PortId,
    ) -> Result<(PortConn, PortConn, u32), TopologyError> {
        let peer = self.check_link_removal(r, p)?;
        let latency = self.ports[r.index()][p.index()].latency;
        self.ports[r.index()][p.index()] = Port::unconnected();
        self.ports[peer.router.index()][peer.port.index()] = Port::unconnected();
        self.dist = self.all_pairs_bfs();
        Ok((PortConn { router: r, port: p }, peer, latency))
    }

    /// Restores a link previously removed by [`Topology::fail_link`] (a
    /// runtime heal) and recomputes the distance tables. Both endpoints
    /// must currently be unconnected non-local ports.
    pub fn restore_link(
        &mut self,
        a: PortConn,
        b: PortConn,
        latency: u32,
    ) -> Result<(), TopologyError> {
        for e in [a, b] {
            let port = self
                .ports
                .get(e.router.index())
                .and_then(|ps| ps.get(e.port.index()))
                .ok_or_else(|| {
                    TopologyError::BadParameter(format!(
                        "({}, {}) does not exist",
                        e.router, e.port
                    ))
                })?;
            if port.conn.is_some() || port.node.is_some() {
                return Err(TopologyError::BadParameter(format!(
                    "({}, {}) is not an unconnected network port",
                    e.router, e.port
                )));
            }
        }
        self.ports[a.router.index()][a.port.index()] = Port {
            conn: Some(b),
            node: None,
            latency,
        };
        self.ports[b.router.index()][b.port.index()] = Port {
            conn: Some(a),
            node: None,
            latency,
        };
        self.dist = self.all_pairs_bfs();
        Ok(())
    }

    // ---- mesh / torus helpers -------------------------------------------

    /// `(x, y)` coordinates of a mesh/torus router.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a mesh or torus.
    pub fn coords(&self, r: RouterId) -> (u32, u32) {
        match self.kind {
            TopologyKind::Mesh { width, .. } | TopologyKind::Torus { width, .. } => {
                (r.0 % width, r.0 / width)
            }
            _ => panic!("coords() requires a mesh or torus topology"),
        }
    }

    /// The mesh/torus router at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a mesh or torus or `(x, y)` is out of
    /// range.
    pub fn router_at(&self, x: u32, y: u32) -> RouterId {
        match self.kind {
            TopologyKind::Mesh { width, height } | TopologyKind::Torus { width, height } => {
                assert!(x < width && y < height, "coordinates out of range");
                RouterId(y * width + x)
            }
            _ => panic!("router_at() requires a mesh or torus topology"),
        }
    }

    /// Port index of a mesh/torus direction (`N=1, E=2, S=3, W=4`).
    pub fn dir_port(&self, d: Direction) -> PortId {
        match d {
            Direction::North => PortId(1),
            Direction::East => PortId(2),
            Direction::South => PortId(3),
            Direction::West => PortId(4),
        }
    }

    /// Direction of a mesh/torus network port, if it is one.
    pub fn port_dir(&self, p: PortId) -> Option<Direction> {
        match p.0 {
            1 => Some(Direction::North),
            2 => Some(Direction::East),
            3 => Some(Direction::South),
            4 => Some(Direction::West),
            _ => None,
        }
    }

    // ---- dragonfly / dragonfly+ helpers ---------------------------------

    /// The group of dragonfly or dragonfly+ router `r`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a dragonfly or dragonfly+.
    pub fn group_of(&self, r: RouterId) -> u32 {
        match self.kind {
            TopologyKind::Dragonfly { a, .. } => r.0 / a,
            TopologyKind::DragonflyPlus { l, s, .. } => r.0 / (l + s),
            _ => panic!("group_of() requires a dragonfly or dragonfly+ topology"),
        }
    }

    /// True if `p` is a global (inter-group) port of dragonfly or
    /// dragonfly+ router `r`. The delivery stage uses this to maintain
    /// `Packet::global_hops`, so routing disciplines keyed on global hops
    /// see identical semantics in the live pipeline and the static walk.
    pub fn is_global_port(&self, r: RouterId, p: PortId) -> bool {
        match self.kind {
            TopologyKind::Dragonfly { .. } | TopologyKind::DragonflyPlus { .. } => self
                .neighbor(r, p)
                .map(|peer| self.group_of(peer.router) != self.group_of(r))
                .unwrap_or(false),
            _ => false,
        }
    }

    /// True if `r` is a spine (second-level) router of a dragonfly+.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a dragonfly+.
    pub fn is_spine(&self, r: RouterId) -> bool {
        match self.kind {
            TopologyKind::DragonflyPlus { l, s, .. } => r.0 % (l + s) >= l,
            _ => panic!("is_spine() requires a dragonfly+ topology"),
        }
    }

    // ---- hyperx helpers -------------------------------------------------

    /// The per-dimension sizes of a HyperX topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a HyperX.
    pub fn hyperx_dims(&self) -> &[u32] {
        match &self.kind {
            TopologyKind::HyperX { dims, .. } => dims,
            _ => panic!("hyperx_dims() requires a HyperX topology"),
        }
    }

    /// Mixed-radix coordinates of HyperX router `r` (dimension 0 varies
    /// fastest).
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a HyperX.
    pub fn hyperx_coords(&self, r: RouterId) -> DimVec {
        let dims = self.hyperx_dims();
        let mut coords = DimVec::new();
        let mut rest = r.0;
        for &d in dims {
            coords.push(rest % d);
            rest /= d;
        }
        coords
    }

    /// The HyperX router with the given coordinates (inverse of
    /// [`Topology::hyperx_coords`]).
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a HyperX or a coordinate is out of
    /// range.
    pub fn hyperx_router(&self, coords: &[u32]) -> RouterId {
        let dims = self.hyperx_dims();
        assert_eq!(coords.len(), dims.len(), "coordinate arity mismatch");
        let mut r = 0u32;
        for (i, (&c, &d)) in coords.iter().zip(dims).enumerate().rev() {
            assert!(c < d, "coordinate {c} out of range in dimension {i}");
            r = r * d + c;
        }
        RouterId(r)
    }

    /// The output port at HyperX router `r` along dimension `dim` towards
    /// coordinate `to` (which must differ from `r`'s own coordinate in that
    /// dimension).
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a HyperX, `dim`/`to` are out of range,
    /// or `to` equals `r`'s coordinate in `dim`.
    pub fn hyperx_port(&self, r: RouterId, dim: usize, to: u32) -> PortId {
        let (dims, t) = match &self.kind {
            TopologyKind::HyperX { dims, t } => (dims.as_slice(), *t),
            _ => panic!("hyperx_port() requires a HyperX topology"),
        };
        assert!(dim < dims.len(), "dimension {dim} out of range");
        assert!(to < dims[dim], "coordinate {to} out of range");
        let own = self.hyperx_coords(r)[dim];
        assert_ne!(to, own, "no self-link in dimension {dim}");
        let base: u32 = t + dims[..dim].iter().map(|&d| d - 1).sum::<u32>();
        let offset = if to < own { to } else { to - 1 };
        PortId((base + offset) as u8)
    }

    // ---- full-mesh helpers ----------------------------------------------

    /// The output port at full-mesh router `at` directly to router `to`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a full mesh, `to` is out of range, or
    /// `at == to`.
    pub fn full_mesh_port(&self, at: RouterId, to: RouterId) -> PortId {
        let (n, p) = match self.kind {
            TopologyKind::FullMesh { n, p } => (n, p),
            _ => panic!("full_mesh_port() requires a full-mesh topology"),
        };
        assert!(to.0 < n, "router {to} out of range");
        assert_ne!(at, to, "no self-link in a full mesh");
        let offset = if to.0 < at.0 { to.0 } else { to.0 - 1 };
        PortId((p + offset) as u8)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} routers, {} nodes, diameter {})",
            self.name,
            self.num_routers(),
            self.num_nodes(),
            self.diameter()
        )
    }
}

#[cfg(test)]
mod tests;
