//! Constructors for the supported topology families.

use crate::{Port, Topology, TopologyError, TopologyKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use spin_types::{NodeId, PortConn, PortId, RouterId};

fn local_port(node: NodeId) -> Port {
    Port {
        conn: None,
        node: Some(node),
        latency: 1,
    }
}

fn net_port(peer: PortConn, latency: u32) -> Port {
    Port {
        conn: Some(peer),
        node: None,
        latency,
    }
}

impl Topology {
    /// Builds a `width x height` 2-D mesh with one terminal per router,
    /// 1-cycle links, port layout `[local, N, E, S, W]`.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2` or `height < 2`.
    pub fn mesh(width: u32, height: u32) -> Topology {
        Self::grid(width, height, false).expect("mesh dimensions must be >= 2")
    }

    /// Builds a `width x height` 2-D torus (wrap-around links), otherwise
    /// identical to [`Topology::mesh`].
    ///
    /// # Panics
    ///
    /// Panics if `width < 2` or `height < 2`.
    pub fn torus(width: u32, height: u32) -> Topology {
        Self::grid(width, height, true).expect("torus dimensions must be >= 2")
    }

    fn grid(width: u32, height: u32, wrap: bool) -> Result<Topology, TopologyError> {
        if width < 2 || height < 2 {
            return Err(TopologyError::BadParameter(format!(
                "grid dimensions must be >= 2, got {width}x{height}"
            )));
        }
        let n = (width * height) as usize;
        let mut ports = vec![vec![Port::unconnected(); 5]; n];
        let mut node_attach = Vec::with_capacity(n);
        let at = |x: u32, y: u32| RouterId(y * width + x);
        for y in 0..height {
            for x in 0..width {
                let r = at(x, y);
                ports[r.index()][0] = local_port(NodeId(r.0));
                node_attach.push(PortConn {
                    router: r,
                    port: PortId(0),
                });
                // N=1 E=2 S=3 W=4; connect to the neighbour's opposite port.
                let neighbours: [(u8, Option<RouterId>); 4] = [
                    (1, step(y, height, 1, wrap).map(|ny| at(x, ny))),
                    (2, step(x, width, 1, wrap).map(|nx| at(nx, y))),
                    (3, step(y, height, -1, wrap).map(|ny| at(x, ny))),
                    (4, step(x, width, -1, wrap).map(|nx| at(nx, y))),
                ];
                for (p, peer) in neighbours {
                    if let Some(pr) = peer {
                        let opposite = match p {
                            1 => 3,
                            2 => 4,
                            3 => 1,
                            _ => 2,
                        };
                        ports[r.index()][p as usize] = net_port(
                            PortConn {
                                router: pr,
                                port: PortId(opposite),
                            },
                            1,
                        );
                    }
                }
            }
        }
        let kind = if wrap {
            TopologyKind::Torus { width, height }
        } else {
            TopologyKind::Mesh { width, height }
        };
        let name = format!(
            "{}{}x{}",
            if wrap { "torus" } else { "mesh" },
            width,
            height
        );
        Topology::from_parts(name, kind, ports, node_attach)
    }

    /// Builds a bidirectional ring of `n >= 2` routers, one terminal each.
    /// Port layout `[local, clockwise, counter-clockwise]`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: u32) -> Topology {
        assert!(n >= 2, "ring needs at least 2 routers");
        let mut ports = vec![vec![Port::unconnected(); 3]; n as usize];
        let mut node_attach = Vec::with_capacity(n as usize);
        for r in 0..n {
            ports[r as usize][0] = local_port(NodeId(r));
            node_attach.push(PortConn {
                router: RouterId(r),
                port: PortId(0),
            });
            let next = (r + 1) % n;
            let prev = (r + n - 1) % n;
            ports[r as usize][1] = net_port(
                PortConn {
                    router: RouterId(next),
                    port: PortId(2),
                },
                1,
            );
            ports[r as usize][2] = net_port(
                PortConn {
                    router: RouterId(prev),
                    port: PortId(1),
                },
                1,
            );
        }
        Topology::from_parts(
            format!("ring{n}"),
            TopologyKind::Ring { n },
            ports,
            node_attach,
        )
        .expect("ring construction is infallible")
    }

    /// Builds a dragonfly with `p` terminals/router, `a` routers/group, `h`
    /// global links/router and `g` groups, with 1-cycle intra-group and
    /// 3-cycle inter-group links (the paper's configuration). The paper's
    /// 1024-node network is `dragonfly(4, 8, 4, 32)`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters cannot be wired (see
    /// [`Topology::try_dragonfly`]).
    pub fn dragonfly(p: u32, a: u32, h: u32, g: u32) -> Topology {
        Self::try_dragonfly(p, a, h, g, 1, 3).expect("invalid dragonfly parameters")
    }

    /// Fallible dragonfly constructor with explicit link latencies.
    ///
    /// Global channels per group total `a*h`; every pair of groups receives
    /// `floor(a*h / (g-1))` channels and, when `a*h` is not a multiple of
    /// `g-1`, the remaining channels connect diametrically opposite groups
    /// (`G` and `G + g/2`), which requires `g` to be even.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadParameter`] if any parameter is zero,
    /// `g < 2`, `a*h < g-1` (not enough channels for full group
    /// connectivity), or the remainder channels cannot be paired.
    pub fn try_dragonfly(
        p: u32,
        a: u32,
        h: u32,
        g: u32,
        local_latency: u32,
        global_latency: u32,
    ) -> Result<Topology, TopologyError> {
        if p == 0 || a == 0 || h == 0 || g < 2 {
            return Err(TopologyError::BadParameter(format!(
                "dragonfly parameters must be positive with g >= 2, got p={p} a={a} h={h} g={g}"
            )));
        }
        let channels = a * h;
        if channels < g - 1 {
            return Err(TopologyError::BadParameter(format!(
                "a*h = {channels} global channels cannot connect {g} groups pairwise"
            )));
        }
        let base = channels / (g - 1);
        let rem = channels % (g - 1);
        if rem > 0 && !g.is_multiple_of(2) {
            return Err(TopologyError::BadParameter(format!(
                "remainder channels ({rem}) need an even group count, got g={g}"
            )));
        }

        let num_routers = (a * g) as usize;
        let radix = (p + (a - 1) + h) as usize;
        let mut ports = vec![vec![Port::unconnected(); radix]; num_routers];
        let mut node_attach = Vec::with_capacity((p * a * g) as usize);

        // Local ports and intra-group all-to-all links.
        for grp in 0..g {
            for i in 0..a {
                let r = RouterId(grp * a + i);
                for t in 0..p {
                    let node = NodeId(r.0 * p + t);
                    ports[r.index()][t as usize] = local_port(node);
                    node_attach.push(PortConn {
                        router: r,
                        port: PortId(t as u8),
                    });
                }
                for j in 0..a {
                    if j == i {
                        continue;
                    }
                    let my_port = p + if j < i { j } else { j - 1 };
                    let peer_port = p + if i < j { i } else { i - 1 };
                    let peer = RouterId(grp * a + j);
                    ports[r.index()][my_port as usize] = net_port(
                        PortConn {
                            router: peer,
                            port: PortId(peer_port as u8),
                        },
                        local_latency,
                    );
                }
            }
        }

        // Global wiring: enumerate each group's channel endpoints in a
        // canonical order (peer offset k = 1..g, then copy index); matching
        // copy indices of a pair are connected to each other.
        // cnt(G, D) = base (+rem if D is diametrically opposite).
        let pair_count = |from: u32, to: u32| -> u32 {
            let diametric = g.is_multiple_of(2) && (to + g / 2) % g == from;
            base + if diametric { rem } else { 0 }
        };
        // endpoint_index(G, D, c): position of copy c of pair (G,D) in G's
        // endpoint enumeration.
        let endpoint_index = |from: u32, to: u32, copy: u32| -> u32 {
            let mut idx = 0;
            for k in 1..g {
                let peer = (from + k) % g;
                if peer == to {
                    return idx + copy;
                }
                idx += pair_count(from, peer);
            }
            unreachable!("peer group not found");
        };
        let endpoint_router_port = |grp: u32, e: u32| -> PortConn {
            let r = RouterId(grp * a + e / h);
            let port = PortId((p + (a - 1) + e % h) as u8);
            PortConn { router: r, port }
        };
        for grp in 0..g {
            for k in 1..g {
                let peer = (grp + k) % g;
                if peer < grp {
                    continue; // wire each unordered pair once
                }
                for c in 0..pair_count(grp, peer) {
                    let e1 = endpoint_index(grp, peer, c);
                    let e2 = endpoint_index(peer, grp, c);
                    let end1 = endpoint_router_port(grp, e1);
                    let end2 = endpoint_router_port(peer, e2);
                    ports[end1.router.index()][end1.port.index()] = net_port(end2, global_latency);
                    ports[end2.router.index()][end2.port.index()] = net_port(end1, global_latency);
                }
            }
        }

        Topology::from_parts(
            format!("dragonfly_p{p}a{a}h{h}g{g}"),
            TopologyKind::Dragonfly { p, a, h, g },
            ports,
            node_attach,
        )
    }

    /// Builds an L-dimensional HyperX with 1-cycle links (see
    /// [`Topology::try_hyperx`]). `hyperx(&[4, 4, 4], 4)` is a 256-node
    /// 3-D HyperX.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`Topology::try_hyperx`]).
    pub fn hyperx(dims: &[u32], t: u32) -> Topology {
        Self::try_hyperx(dims, t, 1).expect("invalid hyperx parameters")
    }

    /// Fallible HyperX constructor with explicit link latency.
    ///
    /// Routers form a `dims[0] x .. x dims[L-1]` lattice; within every
    /// dimension, routers that agree on all other coordinates are pairwise
    /// connected (per-dimension all-to-all). Each router attaches `t`
    /// terminals. Port layout: `0..t` local, then for each dimension `i` in
    /// order, `dims[i] - 1` network ports ordered by peer coordinate
    /// (skipping the router's own coordinate).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadParameter`] if `dims` is empty, any
    /// dimension is `< 2`, `t == 0`, or the router radix exceeds the 256
    /// ports a [`PortId`] can address.
    pub fn try_hyperx(dims: &[u32], t: u32, latency: u32) -> Result<Topology, TopologyError> {
        if dims.is_empty() || t == 0 {
            return Err(TopologyError::BadParameter(format!(
                "hyperx needs >= 1 dimension and >= 1 terminal, got {dims:?} t={t}"
            )));
        }
        if let Some(&d) = dims.iter().find(|&&d| d < 2) {
            return Err(TopologyError::BadParameter(format!(
                "hyperx dimensions must be >= 2, got {d}"
            )));
        }
        let radix = t as u64 + dims.iter().map(|&d| (d - 1) as u64).sum::<u64>();
        if radix > 256 {
            return Err(TopologyError::BadParameter(format!(
                "hyperx radix {radix} exceeds the 256-port router limit"
            )));
        }
        let num_routers: u64 = dims.iter().map(|&d| d as u64).product();
        if num_routers * t as u64 > u32::MAX as u64 {
            return Err(TopologyError::BadParameter(format!(
                "hyperx with {num_routers} routers is too large"
            )));
        }
        let num_routers = num_routers as u32;

        // Router id is mixed-radix over the coordinates, dimension 0
        // fastest; strides[i] = product of sizes below dimension i.
        let mut strides = Vec::with_capacity(dims.len());
        let mut acc = 1u32;
        for &d in dims {
            strides.push(acc);
            acc *= d;
        }
        let mut ports = vec![vec![Port::unconnected(); radix as usize]; num_routers as usize];
        let mut node_attach = Vec::with_capacity((num_routers * t) as usize);
        for r in 0..num_routers {
            for tt in 0..t {
                let node = NodeId(r * t + tt);
                ports[r as usize][tt as usize] = local_port(node);
                node_attach.push(PortConn {
                    router: RouterId(r),
                    port: PortId(tt as u8),
                });
            }
            let mut base = t;
            for (i, &d) in dims.iter().enumerate() {
                let own = (r / strides[i]) % d;
                for to in 0..d {
                    if to == own {
                        continue;
                    }
                    let my_port = base + if to < own { to } else { to - 1 };
                    let peer_port = base + if own < to { own } else { own - 1 };
                    let peer =
                        RouterId((r as i64 + (to as i64 - own as i64) * strides[i] as i64) as u32);
                    ports[r as usize][my_port as usize] = net_port(
                        PortConn {
                            router: peer,
                            port: PortId(peer_port as u8),
                        },
                        latency,
                    );
                }
                base += d - 1;
            }
        }
        let dim_name: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
        Topology::from_parts(
            format!("hyperx{}t{t}", dim_name.join("x")),
            TopologyKind::HyperX {
                dims: dims.to_vec(),
                t,
            },
            ports,
            node_attach,
        )
    }

    /// Builds a dragonfly+ with 1-cycle local and 3-cycle global links
    /// (see [`Topology::try_dragonfly_plus`]).
    ///
    /// # Panics
    ///
    /// Panics if the parameters cannot be wired (see
    /// [`Topology::try_dragonfly_plus`]).
    pub fn dragonfly_plus(p: u32, l: u32, s: u32, h: u32, g: u32) -> Topology {
        Self::try_dragonfly_plus(p, l, s, h, g, 1, 3).expect("invalid dragonfly+ parameters")
    }

    /// Fallible dragonfly+ constructor with explicit link latencies.
    ///
    /// Each of the `g` groups is a two-level bipartite graph: `l` leaf
    /// routers (each attaching `p` terminals) fully connected to `s` spine
    /// routers. Spines carry `h` global links each; the `s*h` global
    /// channels per group are spread over the other groups with the same
    /// canonical pairing as [`Topology::try_dragonfly`] (every pair of
    /// groups gets `floor(s*h / (g-1))` channels, remainder channels join
    /// diametrically opposite groups).
    ///
    /// Router numbering within group `G`: leaves `G*(l+s) .. G*(l+s)+l`,
    /// then spines. Leaf ports: `0..p` local, then `p..p+s` up-links (port
    /// `p+j` to spine `j`). Spine ports: `0..l` down-links (port `i` to
    /// leaf `i`), then `l..l+h` global.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadParameter`] if any parameter is zero,
    /// `g < 2`, `s*h < g-1`, or the remainder channels cannot be paired
    /// (odd `g`).
    pub fn try_dragonfly_plus(
        p: u32,
        l: u32,
        s: u32,
        h: u32,
        g: u32,
        local_latency: u32,
        global_latency: u32,
    ) -> Result<Topology, TopologyError> {
        if p == 0 || l == 0 || s == 0 || h == 0 || g < 2 {
            return Err(TopologyError::BadParameter(format!(
                "dragonfly+ parameters must be positive with g >= 2, got p={p} l={l} s={s} h={h} g={g}"
            )));
        }
        let channels = s * h;
        if channels < g - 1 {
            return Err(TopologyError::BadParameter(format!(
                "s*h = {channels} global channels cannot connect {g} groups pairwise"
            )));
        }
        let base = channels / (g - 1);
        let rem = channels % (g - 1);
        if rem > 0 && !g.is_multiple_of(2) {
            return Err(TopologyError::BadParameter(format!(
                "remainder channels ({rem}) need an even group count, got g={g}"
            )));
        }
        let leaf_radix = (p + s) as u64;
        let spine_radix = (l + h) as u64;
        if leaf_radix > 256 || spine_radix > 256 {
            return Err(TopologyError::BadParameter(format!(
                "dragonfly+ radix ({leaf_radix} leaf / {spine_radix} spine) exceeds the 256-port limit"
            )));
        }

        let per_group = l + s;
        let num_routers = (per_group * g) as usize;
        let mut ports: Vec<Vec<Port>> = (0..num_routers)
            .map(|r| {
                let radix = if (r as u32) % per_group < l {
                    (p + s) as usize
                } else {
                    (l + h) as usize
                };
                vec![Port::unconnected(); radix]
            })
            .collect();
        let mut node_attach = Vec::with_capacity((p * l * g) as usize);

        for grp in 0..g {
            // Leaf terminals and the bipartite leaf-spine wiring.
            for i in 0..l {
                let leaf = RouterId(grp * per_group + i);
                for t in 0..p {
                    let node = NodeId((grp * l + i) * p + t);
                    ports[leaf.index()][t as usize] = local_port(node);
                    node_attach.push(PortConn {
                        router: leaf,
                        port: PortId(t as u8),
                    });
                }
                for j in 0..s {
                    let spine = RouterId(grp * per_group + l + j);
                    ports[leaf.index()][(p + j) as usize] = net_port(
                        PortConn {
                            router: spine,
                            port: PortId(i as u8),
                        },
                        local_latency,
                    );
                    ports[spine.index()][i as usize] = net_port(
                        PortConn {
                            router: leaf,
                            port: PortId((p + j) as u8),
                        },
                        local_latency,
                    );
                }
            }
        }

        // Global wiring between spines, canonical pairing as in the
        // dragonfly builder: endpoint e of group G lives on spine e/h,
        // port l + e%h.
        let pair_count = |from: u32, to: u32| -> u32 {
            let diametric = g.is_multiple_of(2) && (to + g / 2) % g == from;
            base + if diametric { rem } else { 0 }
        };
        let endpoint_index = |from: u32, to: u32, copy: u32| -> u32 {
            let mut idx = 0;
            for k in 1..g {
                let peer = (from + k) % g;
                if peer == to {
                    return idx + copy;
                }
                idx += pair_count(from, peer);
            }
            unreachable!("peer group not found");
        };
        let endpoint_router_port = |grp: u32, e: u32| -> PortConn {
            let r = RouterId(grp * per_group + l + e / h);
            let port = PortId((l + e % h) as u8);
            PortConn { router: r, port }
        };
        for grp in 0..g {
            for k in 1..g {
                let peer = (grp + k) % g;
                if peer < grp {
                    continue; // wire each unordered pair once
                }
                for c in 0..pair_count(grp, peer) {
                    let e1 = endpoint_index(grp, peer, c);
                    let e2 = endpoint_index(peer, grp, c);
                    let end1 = endpoint_router_port(grp, e1);
                    let end2 = endpoint_router_port(peer, e2);
                    ports[end1.router.index()][end1.port.index()] = net_port(end2, global_latency);
                    ports[end2.router.index()][end2.port.index()] = net_port(end1, global_latency);
                }
            }
        }

        Topology::from_parts(
            format!("dfplus_p{p}l{l}s{s}h{h}g{g}"),
            TopologyKind::DragonflyPlus { p, l, s, h, g },
            ports,
            node_attach,
        )
    }

    /// Builds a full mesh (complete graph) of `n` routers with `p`
    /// terminals each and 1-cycle links. Port layout: `0..p` local, then
    /// one port per peer router ordered by peer id (skipping self).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadParameter`] if `n < 2`, `p == 0`, or
    /// the radix `p + n - 1` exceeds the 256-port router limit.
    pub fn full_mesh(n: u32, p: u32) -> Result<Topology, TopologyError> {
        if n < 2 || p == 0 {
            return Err(TopologyError::BadParameter(format!(
                "full mesh needs >= 2 routers and >= 1 terminal, got n={n} p={p}"
            )));
        }
        let radix = p as u64 + n as u64 - 1;
        if radix > 256 {
            return Err(TopologyError::BadParameter(format!(
                "full-mesh radix {radix} exceeds the 256-port router limit"
            )));
        }
        let mut ports = vec![vec![Port::unconnected(); radix as usize]; n as usize];
        let mut node_attach = Vec::with_capacity((n * p) as usize);
        for i in 0..n {
            for t in 0..p {
                let node = NodeId(i * p + t);
                ports[i as usize][t as usize] = local_port(node);
                node_attach.push(PortConn {
                    router: RouterId(i),
                    port: PortId(t as u8),
                });
            }
            for j in 0..n {
                if j == i {
                    continue;
                }
                let my_port = p + if j < i { j } else { j - 1 };
                let peer_port = p + if i < j { i } else { i - 1 };
                ports[i as usize][my_port as usize] = net_port(
                    PortConn {
                        router: RouterId(j),
                        port: PortId(peer_port as u8),
                    },
                    1,
                );
            }
        }
        Topology::from_parts(
            format!("fullmesh{n}p{p}"),
            TopologyKind::FullMesh { n, p },
            ports,
            node_attach,
        )
    }

    /// Builds an irregular topology from an undirected edge list, with
    /// `nodes_per_router` terminals at each router and 1-cycle links.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate/self edges, out-of-range endpoints, or
    /// a disconnected graph.
    ///
    /// # Panics
    ///
    /// Panics only if the internally-built adjacency lists are asymmetric,
    /// which the construction above rules out (every edge inserts both
    /// directions).
    pub fn irregular(
        num_routers: u32,
        edges: &[(u32, u32)],
        nodes_per_router: u32,
    ) -> Result<Topology, TopologyError> {
        if num_routers == 0 {
            return Err(TopologyError::BadParameter(
                "need at least one router".into(),
            ));
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_routers as usize];
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in edges {
            if u >= num_routers || v >= num_routers {
                return Err(TopologyError::BadParameter(format!(
                    "edge ({u},{v}) out of range for {num_routers} routers"
                )));
            }
            if u == v {
                return Err(TopologyError::BadParameter(format!("self edge at {u}")));
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(TopologyError::BadParameter(format!(
                    "duplicate edge ({u},{v})"
                )));
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for nb in &mut adj {
            nb.sort_unstable();
        }
        let npr = nodes_per_router as usize;
        let mut ports = Vec::with_capacity(num_routers as usize);
        let mut node_attach = Vec::new();
        for r in 0..num_routers {
            let mut table = Vec::with_capacity(npr + adj[r as usize].len());
            for t in 0..nodes_per_router {
                let node = NodeId(r * nodes_per_router + t);
                table.push(local_port(node));
                node_attach.push(PortConn {
                    router: RouterId(r),
                    port: PortId(t as u8),
                });
            }
            for &peer in &adj[r as usize] {
                // The peer's port index for us: nodes + position of r in the
                // peer's sorted adjacency.
                let pos = adj[peer as usize]
                    .iter()
                    .position(|&x| x == r)
                    .expect("adjacency is symmetric");
                table.push(net_port(
                    PortConn {
                        router: RouterId(peer),
                        port: PortId((npr + pos) as u8),
                    },
                    1,
                ));
            }
            ports.push(table);
        }
        Topology::from_parts(
            format!("irregular{num_routers}"),
            TopologyKind::Irregular,
            ports,
            node_attach,
        )
    }

    /// Generates a random connected irregular topology: a random spanning
    /// tree plus `extra_edges` additional random edges. Deterministic for a
    /// given `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_routers == 0`.
    pub fn random_connected(
        num_routers: u32,
        extra_edges: u32,
        nodes_per_router: u32,
        seed: u64,
    ) -> Result<Topology, TopologyError> {
        if num_routers == 0 {
            return Err(TopologyError::BadParameter(
                "need at least one router".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<u32> = (0..num_routers).collect();
        order.shuffle(&mut rng);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for i in 1..num_routers as usize {
            let parent = order[rng.random_range(0..i)];
            let child = order[i];
            edges.push((parent, child));
            seen.insert((parent.min(child), parent.max(child)));
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_edges && attempts < extra_edges * 50 + 100 {
            attempts += 1;
            let u = rng.random_range(0..num_routers);
            let v = rng.random_range(0..num_routers);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                edges.push((u, v));
                added += 1;
            }
        }
        Self::irregular(num_routers, &edges, nodes_per_router)
    }
}

/// Steps a coordinate by `delta` within `0..size`, wrapping if `wrap`.
fn step(v: u32, size: u32, delta: i32, wrap: bool) -> Option<u32> {
    let next = v as i64 + delta as i64;
    if next < 0 || next >= size as i64 {
        if wrap {
            Some(((next + size as i64) % size as i64) as u32)
        } else {
            None
        }
    } else {
        Some(next as u32)
    }
}

impl Topology {
    /// Builds a concentrated `width x height` mesh with `c` terminals per
    /// router (port layout: `0..c` local, then N/E/S/W shifted by `c-1`).
    /// Concentration is the standard way to scale NoCs without exploding
    /// router count; SPIN is unaffected because it never inspects local
    /// ports.
    ///
    /// # Errors
    ///
    /// Returns an error if `width < 2`, `height < 2` or `c == 0`.
    pub fn cmesh(width: u32, height: u32, c: u32) -> Result<Topology, TopologyError> {
        if width < 2 || height < 2 {
            return Err(TopologyError::BadParameter(format!(
                "cmesh dimensions must be >= 2, got {width}x{height}"
            )));
        }
        if c == 0 {
            return Err(TopologyError::BadParameter(
                "need at least one terminal".into(),
            ));
        }
        // Build edges as an irregular graph but preserve mesh adjacency.
        let n = width * height;
        let mut edges = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let r = y * width + x;
                if x + 1 < width {
                    edges.push((r, r + 1));
                }
                if y + 1 < height {
                    edges.push((r, r + width));
                }
            }
        }
        let mut topo = Self::irregular(n, &edges, c)?;
        topo.name = format!("cmesh{width}x{height}c{c}");
        Ok(topo)
    }

    /// Returns a copy of this topology with the given bidirectional links
    /// removed — modelling faulty or power-gated network links, one of the
    /// paper's motivating use cases for topology-agnostic deadlock freedom.
    /// Each entry names one endpoint of the link; the reverse direction is
    /// removed too.
    ///
    /// # Errors
    ///
    /// Returns an error if a named port is not a connected network port, or
    /// if the removals disconnect the network.
    pub fn with_failed_links(
        &self,
        failures: &[(RouterId, PortId)],
    ) -> Result<Topology, TopologyError> {
        let mut ports = self.ports.clone();
        for &(r, p) in failures {
            let Some(peer) = ports
                .get(r.index())
                .and_then(|ps| ps.get(p.index()))
                .and_then(|port| port.conn)
            else {
                return Err(TopologyError::BadParameter(format!(
                    "({r}, {p}) is not a connected network port"
                )));
            };
            ports[r.index()][p.index()] = Port::unconnected();
            ports[peer.router.index()][peer.port.index()] = Port::unconnected();
        }
        Topology::from_parts(
            format!("{}_degraded{}", self.name, failures.len()),
            TopologyKind::Irregular,
            ports,
            self.node_attach.clone(),
        )
    }
}
