//! Determinism regression tests: the simulator must produce bit-identical
//! statistics for identical (SimConfig, seed) inputs, the parallel sweep
//! runner must produce identical results at any thread count, and the
//! sharded step kernel must produce identical results at any shard count.
//!
//! CI additionally reruns this whole suite (and the golden-trace and fault
//! suites) under `SPIN_SHARDS=1/2/4`: every network here builds without an
//! explicit `.shards()` call, so the environment fallback reroutes all of
//! them through the sharded kernel — the repeated-run equality checks then
//! pin sharded-vs-sharded, and the committed baselines pin
//! sharded-vs-serial.

use spin_core::SpinConfig;
use spin_experiments::fault::{campaign_json, run_campaign_with_threads};
use spin_experiments::{run_spec_with_threads, sweep, Design, ExperimentSpec, RunParams};
use spin_routing::{FavorsMinimal, FavorsNonMinimal, FullMeshDeroute};
use spin_sim::{FaultPlan, NetStats, Network, NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};

fn build_net(seed: u64) -> Network {
    let topo = Topology::mesh(8, 8);
    let traffic = SyntheticTraffic::new(
        SyntheticConfig::new(Pattern::UniformRandom, 0.2),
        &topo,
        seed,
    );
    NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            seed,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .build()
}

#[test]
fn identical_config_and_seed_give_identical_stats() {
    let run = |seed: u64| -> (NetStats, spin_core::SpinStats) {
        let mut net = build_net(seed);
        net.run(3_000);
        (net.stats(), net.spin_stats())
    };
    let (s1, a1) = run(42);
    let (s2, a2) = run(42);
    assert_eq!(
        s1, s2,
        "NetStats must be identical for identical config+seed"
    );
    assert_eq!(
        a1, a2,
        "SpinStats must be identical for identical config+seed"
    );
    // Sanity: the workload actually exercised the network and the SPIN
    // machinery, so the equality above is not vacuous.
    assert!(s1.packets_delivered > 0);
    // A different seed must actually change the run (otherwise the seed is
    // being ignored and the equality check proves nothing).
    let (s3, _) = run(43);
    assert_ne!(s1, s3, "different seeds should produce different runs");
}

/// The sharded kernel is bit-identical to serial at every shard count —
/// stats *and* SPIN protocol aggregates — independent of the `SPIN_SHARDS`
/// environment (the builder call pins the kernel explicitly).
#[test]
fn sharded_kernel_matches_serial_at_every_shard_count() {
    let run = |shards: usize| -> (NetStats, spin_core::SpinStats) {
        let topo = Topology::mesh(8, 8);
        let traffic =
            SyntheticTraffic::new(SyntheticConfig::new(Pattern::UniformRandom, 0.2), &topo, 42);
        let mut net = NetworkBuilder::new(topo)
            .config(SimConfig {
                vnets: 3,
                vcs_per_vnet: 1,
                seed: 42,
                ..SimConfig::default()
            })
            .routing(FavorsMinimal)
            .traffic(traffic)
            .spin(SpinConfig::default())
            .shards(shards)
            .build();
        net.run(3_000);
        (net.stats(), net.spin_stats())
    };
    let (s1, a1) = run(1);
    assert!(s1.packets_delivered > 0);
    for shards in [2, 4, 8] {
        let (s, a) = run(shards);
        assert_eq!(s1, s, "NetStats changed at {shards} shards");
        assert_eq!(a1, a, "SpinStats changed at {shards} shards");
    }
}

fn build_faulted_net(seed: u64) -> Network {
    let topo = Topology::mesh(8, 8);
    let traffic = SyntheticTraffic::new(
        SyntheticConfig::new(Pattern::UniformRandom, 0.1),
        &topo,
        seed,
    );
    let plan = FaultPlan::random_kills(&topo, 2, (500, 2_000), None, seed);
    NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            seed,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .faults(plan)
        .build()
}

#[test]
fn nonempty_fault_plan_runs_are_deterministic() {
    let run = |seed: u64| -> NetStats {
        let mut net = build_faulted_net(seed);
        net.run(3_000);
        net.stats()
    };
    let s1 = run(42);
    let s2 = run(42);
    assert_eq!(
        s1, s2,
        "faulted runs must be identical for identical config+seed"
    );
    // Sanity: the plan actually killed links and traffic flowed around them.
    assert!(s1.links_killed > 0);
    assert!(s1.packets_delivered > 0);
    let s3 = run(43);
    assert_ne!(
        s1, s3,
        "different seeds should produce different faulted runs"
    );
}

/// The fault-campaign JSON document — the artifact CI uploads — is
/// bit-identical at any worker thread count.
#[test]
fn fault_campaign_json_is_thread_count_invariant() {
    let doc1 = campaign_json(&run_campaign_with_threads(true, 1), true).to_string();
    let doc4 = campaign_json(&run_campaign_with_threads(true, 4), true).to_string();
    assert_eq!(doc1, doc4);
}

fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "determinism".into(),
        topo: Topology::mesh(4, 4),
        designs: vec![
            Design::new("favors_min_1vc", 1, true, || Box::new(FavorsMinimal)),
            Design::new("favors_min_3vc", 3, true, || Box::new(FavorsMinimal)),
        ],
        patterns: vec![Pattern::UniformRandom, Pattern::Transpose],
        rates: vec![0.05, 0.15, 0.30, 0.45],
        params: RunParams {
            warmup: 200,
            measure: 1_000,
            ..RunParams::default()
        },
        stop_at_saturation: true,
    }
}

#[test]
fn runner_is_deterministic_across_thread_counts() {
    let spec = spec();
    let serial = run_spec_with_threads(&spec, 1);
    for threads in [2, 4, 8] {
        let parallel = run_spec_with_threads(&spec, threads);
        assert_eq!(
            serial, parallel,
            "runner output changed at {threads} threads"
        );
    }
}

/// One operating point of the cross-topology campaign (full mesh, the
/// VC-free deroute scheme vs SPIN+FAvORS-NMin), pinned thread-invariant
/// like the mesh spec above — the deroute scheme re-rolls its random
/// ascending pick per cycle, which must come from the per-network RNG,
/// never from anything thread-dependent.
fn cross_topology_spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "determinism_fullmesh".into(),
        topo: Topology::full_mesh(8, 2).expect("valid full-mesh parameters"),
        designs: vec![
            Design::new("fm_deroute_1vc", 1, false, || Box::new(FullMeshDeroute)),
            Design::new("favors_nmin_spin_1vc", 1, true, || {
                Box::new(FavorsNonMinimal)
            }),
        ],
        patterns: vec![Pattern::UniformRandom],
        rates: vec![0.10, 0.40, 0.70],
        params: RunParams {
            warmup: 200,
            measure: 1_000,
            ..RunParams::default()
        },
        stop_at_saturation: true,
    }
}

#[test]
fn cross_topology_point_is_deterministic_across_thread_counts() {
    let spec = cross_topology_spec();
    let serial = run_spec_with_threads(&spec, 1);
    // Sanity: both designs actually moved traffic.
    for c in &serial {
        assert!(c.points.iter().any(|p| p.throughput > 0.0), "{}", c.design);
    }
    for threads in [2, 4, 8] {
        let parallel = run_spec_with_threads(&spec, threads);
        assert_eq!(
            serial, parallel,
            "cross-topology runner output changed at {threads} threads"
        );
    }
}

#[test]
fn runner_matches_the_serial_sweep_reference() {
    let spec = spec();
    let curves = run_spec_with_threads(&spec, 4);
    let mut i = 0;
    for &pattern in &spec.patterns {
        for design in &spec.designs {
            let (points, sat) = sweep(&spec.topo, design, pattern, &spec.rates, spec.params);
            assert_eq!(curves[i].points, points, "curve {}/{pattern}", design.name);
            assert_eq!(curves[i].saturation, sat);
            i += 1;
        }
    }
}
