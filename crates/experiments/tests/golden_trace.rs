//! Golden-trace regression tests: the JSONL event stream of the seeded
//! deadlock scenario must be byte-stable — across repeated runs, across
//! thread counts of the parallel harness, and it must actually tell the
//! SPIN story (probes → detection → freeze → spin → resolution).
//!
//! CI runs this suite at `SPIN_THREADS` 1/2/4/8; together with the
//! in-process thread sweep below that pins the stream against any
//! scheduling nondeterminism.

use spin_experiments::{parallel_map_with_threads, run_trace_scenario};
use spin_trace::{jsonl, VecSink};

/// One full scenario run, exported as deterministic JSONL.
fn scenario_jsonl() -> String {
    let net = run_trace_scenario(Box::new(VecSink::new()));
    jsonl::to_string(net.trace_events().expect("VecSink retains events"))
}

#[test]
fn golden_trace_is_byte_stable_across_runs_and_threads() {
    let reference = scenario_jsonl();
    // Repeated runs on this thread.
    assert_eq!(reference, scenario_jsonl(), "rerun changed the trace bytes");
    // Concurrent runs on a 4-thread pool (each simulation is independent;
    // the recording must not observe scheduling).
    let lanes = [0u8; 4];
    for (i, out) in parallel_map_with_threads(&lanes, 4, |_| scenario_jsonl())
        .into_iter()
        .enumerate()
    {
        assert_eq!(
            reference, out,
            "thread-pool lane {i} changed the trace bytes"
        );
    }
}

#[test]
fn golden_trace_tells_the_spin_story_in_order() {
    let trace = scenario_jsonl();
    // The scenario is chosen to deadlock: every protocol milestone must
    // appear, and in causal order of first occurrence.
    let first = |needle: &str| {
        trace
            .find(needle)
            .unwrap_or_else(|| panic!("trace never records {needle}"))
    };
    let launch = first("\"event\":\"probe_launch\"");
    let detected = first("\"event\":\"deadlock_detected\"");
    let frozen = first("\"event\":\"vc_frozen\"");
    let spin = first("\"event\":\"spin_start\"");
    let complete = first("\"event\":\"spin_complete\"");
    let resolved = first("\"event\":\"deadlock_resolved\"");
    assert!(launch < detected, "a probe must precede detection");
    assert!(detected < frozen, "detection must precede freezing");
    assert!(frozen < spin, "freezing must precede the spin");
    assert!(spin < complete, "the spin must complete after starting");
    assert!(
        complete <= resolved,
        "resolution is the initiator's completion"
    );
    // Packet lifecycle events are present too.
    for needle in [
        "\"event\":\"packet_inject\"",
        "\"event\":\"packet_hop\"",
        "\"event\":\"vc_allocated\"",
        "\"event\":\"packet_eject\"",
        "\"event\":\"sm_send\"",
    ] {
        first(needle);
    }
}

#[test]
fn golden_trace_jsonl_lines_are_wellformed() {
    let trace = scenario_jsonl();
    assert!(!trace.is_empty());
    for line in trace.lines() {
        assert!(line.starts_with("{\"cycle\":"), "bad line start: {line}");
        assert!(line.ends_with('}'), "bad line end: {line}");
        assert!(line.contains("\"event\":\""), "line without event: {line}");
        // No floats anywhere: byte stability forbids them.
        assert!(!line.contains('.'), "float crept into the stream: {line}");
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // The traced scenario and the identical untraced one must produce the
    // same statistics: observation must not change behaviour.
    let traced = run_trace_scenario(Box::new(VecSink::new()));
    let mut untraced = spin_experiments::trace_scenario_builder().build();
    untraced.run(spin_experiments::TRACE_SCENARIO_CYCLES);
    assert_eq!(traced.stats(), untraced.stats());
    assert_eq!(traced.spin_stats(), untraced.spin_stats());
    assert!(traced.stats().spins > 0, "scenario must actually spin");
}
