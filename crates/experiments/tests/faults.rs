//! End-to-end fault-injection regression tests: a link killed mid-run must
//! never silently lose a packet. Delivery is checked two ways — against the
//! aggregate counters, and packet-by-packet against the structured trace
//! (every injected id either ejects or is explicitly dropped-by-fault).

use proptest::prelude::*;
use spin_core::SpinConfig;
use spin_experiments::fault::run_campaign_with_threads;
use spin_routing::FavorsMinimal;
use spin_sim::{FaultPlan, Network, NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_trace::{TraceEvent, VecSink};
use spin_traffic::{Pattern, StopAfter, SyntheticConfig, SyntheticTraffic};
use std::collections::HashSet;

fn faulted_mesh(w: u32, h: u32, plan: FaultPlan, rate: f64, stop_at: u64, seed: u64) -> Network {
    let topo = Topology::mesh(w, h);
    let traffic = StopAfter::new(
        SyntheticTraffic::new(
            SyntheticConfig::new(Pattern::UniformRandom, rate),
            &topo,
            seed,
        ),
        stop_at,
    );
    NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            seed,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .faults(plan)
        .build()
}

/// The ISSUE's acceptance scenario: a seeded 8x8 mesh with a link killed
/// mid-run delivers 100% of the packets that were not physically astride
/// the dead link, verified packet-by-packet from the trace events.
#[test]
fn mid_run_kill_delivers_every_surviving_packet_by_trace() {
    let topo = Topology::mesh(8, 8);
    let traffic = StopAfter::new(
        SyntheticTraffic::new(
            SyntheticConfig::new(Pattern::UniformRandom, 0.12),
            &topo,
            11,
        ),
        2_000,
    );
    let mut net = NetworkBuilder::new(topo.clone())
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            seed: 11,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .faults(FaultPlan::random_kills(&topo, 1, (700, 701), None, 9))
        .trace_sink(Box::new(VecSink::new()))
        .build();
    net.run(2_000);
    assert!(net.drain(50_000), "faulted mesh failed to drain");

    let events = net.trace_events().expect("VecSink retains events");
    let mut injected = HashSet::new();
    let mut ejected = HashSet::new();
    let mut dropped = HashSet::new();
    let mut link_failed = 0;
    for r in events {
        match r.event {
            TraceEvent::PacketInject { packet, .. } => {
                injected.insert(packet);
            }
            TraceEvent::PacketEject { packet, .. } => {
                ejected.insert(packet);
            }
            TraceEvent::LinkFailed { .. } => link_failed += 1,
            TraceEvent::PacketDroppedByFault { packet, .. } => {
                dropped.insert(packet);
            }
            _ => {}
        }
    }
    assert_eq!(link_failed, 1, "exactly one kill was scheduled and valid");
    assert!(!dropped.is_empty() || !injected.is_empty());
    for id in &injected {
        assert!(
            ejected.contains(id) ^ dropped.contains(id),
            "packet {id:?} must be ejected or dropped-by-fault, exactly once"
        );
    }
    for id in &ejected {
        assert!(
            injected.contains(id),
            "ejected packet {id:?} never injected"
        );
    }
    // Aggregate counters agree with the per-packet accounting.
    let s = net.stats();
    assert_eq!(
        s.packets_created,
        s.packets_delivered + s.packets_dropped_by_fault
    );
    // Trace-side drops match the counter (in-network drops all have an
    // inject event; NIC-resident severed packets are also traced).
    assert_eq!(dropped.len() as u64, s.packets_dropped_by_fault);
}

/// The fault campaign is invariant to the worker thread count (every point
/// is an independent deterministic simulation).
#[test]
fn fault_campaign_is_thread_count_invariant() {
    let one = run_campaign_with_threads(true, 1);
    for threads in [2, 4] {
        let n = run_campaign_with_threads(true, threads);
        assert_eq!(one, n, "campaign output changed at {threads} threads");
    }
    assert!(one.iter().all(|p| p.fully_accounted()));
    assert!(one.iter().any(|p| p.links_killed > 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random single-link kill on a 4x4 mesh mid-run leaves every
    /// in-flight packet delivered or explicitly accounted dropped-by-fault.
    #[test]
    fn random_single_link_kill_conserves_packets(
        seed in 1u64..64,
        fault_seed in 1u64..64,
        kill_at in 200u64..1_500,
    ) {
        let topo = Topology::mesh(4, 4);
        let plan = FaultPlan::random_kills(&topo, 1, (kill_at, kill_at + 1), None, fault_seed);
        let mut net = faulted_mesh(4, 4, plan, 0.15, 2_000, seed);
        net.run(2_000);
        prop_assert!(net.drain(30_000), "faulted mesh failed to drain");
        let s = net.stats();
        prop_assert_eq!(s.links_killed + s.link_kills_rejected, 1);
        prop_assert_eq!(
            s.packets_created,
            s.packets_delivered + s.packets_dropped_by_fault
        );
    }
}
