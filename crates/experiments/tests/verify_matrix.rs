//! The verification matrix must be thread-count-invariant and stay in sync
//! with the committed golden `results/verify_matrix.json`.

use spin_experiments::verify_matrix::{matrix_json, matrix_reports};

#[test]
fn matrix_json_is_identical_at_any_thread_count() {
    let one = matrix_json(&matrix_reports(1)).pretty();
    let four = matrix_json(&matrix_reports(4)).pretty();
    assert_eq!(one, four, "matrix emission depends on thread count");
}

#[test]
fn matrix_matches_the_committed_golden_file() {
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/verify_matrix.json");
    let committed = std::fs::read_to_string(&golden)
        .expect("results/verify_matrix.json is committed; regenerate with the `verify` binary");
    let mut fresh = matrix_json(&matrix_reports(1)).pretty();
    fresh.push('\n'); // write_results ends the file with a newline
    assert_eq!(
        committed, fresh,
        "committed verify_matrix.json is stale; rerun `cargo run -p spin-experiments --bin verify`"
    );
}

#[test]
fn matrix_pins_the_acceptance_verdicts() {
    let reports = matrix_reports(1);
    let get = |name: &str| {
        reports
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("config {name} missing from matrix"))
    };
    assert_eq!(get("mesh4x4/xy/1vc").classification, "deadlock_free");
    assert_eq!(get("mesh8x8/xy/1vc").classification, "deadlock_free");
    assert_eq!(
        get("mesh4x4/escape_vc/2vc").classification,
        "deadlock_free_escape"
    );
    for ud in [
        "ring8/up_down/1vc",
        "cmesh4x4c2/up_down/1vc",
        "irregular12/up_down/1vc",
        "mesh8x8_degraded2/up_down/1vc",
    ] {
        assert_eq!(get(ud).classification, "deadlock_free", "{ud}");
    }
    // Single-VC torus DOR and FAvORS everywhere: recovery-required with at
    // least one enumerated ring and a finite bound.
    for rr in [
        "torus4x4/xy/1vc",
        "mesh4x4/favors_min/1vc",
        "torus4x4/favors_min/1vc",
        "ring8/favors_min/1vc",
        "dragonfly_p2a4h2g9/favors_min/1vc",
    ] {
        let r = get(rr);
        assert_eq!(r.classification, "recovery_required", "{rr}");
        assert!(r.rings_enumerated >= 1, "{rr} must enumerate a ring");
        assert!(r.max_spin_bound.is_some(), "{rr} must carry a bound");
    }
}
