//! Static-vs-dynamic cross-validation: run the deterministic deadlock
//! scenario with the derived static model attached and require that every
//! ground-truth deadlock the wait graph detects maps onto a static CDG
//! cycle and resolves within the paper's spin bound.

use spin_experiments::{trace_scenario_builder, TRACE_SCENARIO_CYCLES};
use spin_routing::FavorsMinimal;
use spin_topology::Topology;
use spin_verify::{analyze, DerivedModel, DEFAULT_RING_CAP};

#[test]
fn live_deadlocks_stay_within_the_static_model() {
    let topo = Topology::mesh(4, 4);
    let analysis = analyze(&topo, &FavorsMinimal, 1, DEFAULT_RING_CAP);
    let model = DerivedModel::new("mesh4x4/favors_min/1vc", analysis);
    let mut net = trace_scenario_builder()
        .static_model(Box::new(model))
        .build();
    // Check at every cycle: episode boundaries (open on first detection,
    // close when the deadlocked set drains) must be observed exactly.
    for _ in 0..TRACE_SCENARIO_CYCLES {
        net.step();
        net.static_model_check();
    }
    assert!(
        net.static_model_violations().is_empty(),
        "static model violated: {:?}",
        net.static_model_violations()
    );
    let episodes = net.static_model_episodes();
    assert!(
        !episodes.is_empty(),
        "the trace scenario deterministically deadlocks; no episode seen"
    );
    for e in episodes {
        // Every closed episode carries the bound it was checked against
        // and the spins actually spent resolving it.
        assert!(
            e.spins <= e.bound,
            "episode at cycle {} spent {} spins, bound {}",
            e.opened,
            e.spins,
            e.bound
        );
        assert!(e.closed > e.opened);
        assert!(e.channels >= 2, "a deadlock ring spans at least 2 buffers");
    }
}
