//! Minimal JSON emitter for machine-readable experiment results.
//!
//! The canonical build environment has no network access, so serde is not
//! available (see `vendor/README.md`); the result files the experiment
//! binaries write to `results/` are produced by this hand-rolled emitter
//! instead. Only emission is supported — the simulator never needs to
//! *parse* JSON.

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

/// A JSON value. Build with the variants or the [`obj`]/[`arr`] helpers and
/// serialise with `Display` (compact) or [`Json::pretty`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float. Non-finite values serialise as `null` (JSON has no NaN).
    Num(f64),
    /// An unsigned integer (kept separate from `Num` so large counters
    /// round-trip exactly).
    UInt(u64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds a [`Json::Arr`].
pub fn arr(items: Vec<Json>) -> Json {
    Json::Arr(items)
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::UInt(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl Json {
    fn write(&self, f: &mut fmt::Formatter<'_>, indent: Option<usize>) -> fmt::Result {
        let (nl, pad, pad_in) = match indent {
            Some(n) => ("\n", "  ".repeat(n), "  ".repeat(n + 1)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::UInt(x) => write!(f, "{x}"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                if items.is_empty() {
                    return f.write_str("[]");
                }
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{nl}{pad_in}")?;
                    item.write(f, indent.map(|n| n + 1))?;
                }
                write!(f, "{nl}{pad}]")
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    return f.write_str("{}");
                }
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{nl}{pad_in}")?;
                    escape(k, f)?;
                    f.write_str(if indent.is_some() { ": " } else { ":" })?;
                    v.write(f, indent.map(|n| n + 1))?;
                }
                write!(f, "{nl}{pad}}}")
            }
        }
    }

    /// Pretty-printed (2-space indented) serialisation.
    pub fn pretty(&self) -> String {
        struct Pretty<'a>(&'a Json);
        impl fmt::Display for Pretty<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.write(f, Some(0))
            }
        }
        Pretty(self).to_string()
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, None)
    }
}

/// Writes `json` (pretty-printed) to `results/<name>.json`, creating the
/// directory if needed. Returns the path written.
pub fn write_results(name: &str, json: &Json) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", json.pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let v = obj(vec![
            ("name", "fig7".into()),
            ("rate", Json::Num(0.25)),
            ("count", Json::UInt(u64::MAX)),
            ("sat", true.into()),
            ("pts", arr(vec![Json::Null, Json::Num(f64::NAN)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"fig7","rate":0.25,"count":18446744073709551615,"sat":true,"pts":[null,null]}"#
        );
    }

    #[test]
    fn string_escaping() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_is_indented_and_reparses_shapes() {
        let v = obj(vec![
            ("xs", arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("e", Json::Obj(vec![])),
        ]);
        let p = v.pretty();
        assert!(p.contains("\n  \"xs\": [\n    1,\n    2\n  ]"));
        assert!(p.ends_with('}'));
    }
}
