//! Fig. 8(a) — network energy-delay product on application traffic,
//! MinAdaptive 2VC + SPIN normalised to EscapeVC 3VC.
//!
//! PARSEC full-system traces are substituted with the request/reply
//! application model of `spin_traffic::apps` (see DESIGN.md substitution
//! #2). EDP = analytical network energy (buffer+crossbar activity from
//! measured flit-hops, leakage from the VC-dependent router area) x average
//! packet latency. The per-workload comparisons are independent, so they
//! fan out over the shared worker pool.
//!
//! Usage: `fig8a [--quick]`

use spin_core::SpinConfig;
use spin_experiments::{json, json::Json, parallel_map, quick_mode};
use spin_power::{PowerModel, RouterParams};
use spin_routing::{EscapeVc, FavorsMinimal, Routing};
use spin_sim::{NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{AppTraffic, PARSEC_PRESETS};
use spin_types::Cycle;

struct EdpResult {
    latency: f64,
    edp: f64,
}

fn run_design(
    topo: &Topology,
    routing: Box<dyn Routing>,
    vcs: u8,
    spin: bool,
    preset: usize,
    cycles: Cycle,
) -> EdpResult {
    let traffic = AppTraffic::new(PARSEC_PRESETS[preset], topo.num_nodes(), 11);
    let mut builder = NetworkBuilder::new(topo.clone())
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: vcs,
            ..SimConfig::default()
        })
        .routing_box(routing)
        .traffic(traffic);
    if spin {
        builder = builder.spin(SpinConfig::default());
    }
    let mut net = builder.build();
    net.run(cycles);
    let s = net.stats();
    let model = PowerModel::nangate15();
    let params = RouterParams::mesh_router(vcs as u32);
    let energy = model.network_energy(&params, topo.num_routers(), s.cycles, s.link_use.flit);
    let latency = s.avg_total_latency().max(1.0);
    EdpResult {
        latency,
        edp: energy * latency,
    }
}

fn main() {
    let quick = quick_mode();
    let cycles: Cycle = if quick { 20_000 } else { 100_000 };
    let topo = Topology::mesh(8, 8);
    println!("# Fig. 8a: network EDP on application traffic, normalised to EscapeVC 3VC\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "workload", "lat(esc)", "lat(spin)", "edp(esc)", "edp(spin)", "norm EDP"
    );
    let presets: Vec<usize> = (0..PARSEC_PRESETS.len()).collect();
    let results = parallel_map(&presets, |&i| {
        let esc = run_design(&topo, Box::new(EscapeVc), 3, false, i, cycles);
        let spin = run_design(&topo, Box::new(FavorsMinimal), 2, true, i, cycles);
        (esc, spin)
    });
    let mut geo = 0.0f64;
    let mut rows = Vec::new();
    for (i, (esc, spin)) in results.iter().enumerate() {
        let norm = spin.edp / esc.edp;
        geo += norm.ln();
        let name = PARSEC_PRESETS[i].name;
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>12.3e} {:>12.3e} {:>10.3}",
            name, esc.latency, spin.latency, esc.edp, spin.edp, norm
        );
        rows.push(json::obj(vec![
            ("workload", name.into()),
            ("latency_escapevc", Json::Num(esc.latency)),
            ("latency_spin", Json::Num(spin.latency)),
            ("edp_escapevc", Json::Num(esc.edp)),
            ("edp_spin", Json::Num(spin.edp)),
            ("normalised_edp", Json::Num(norm)),
        ]));
    }
    let gmean = (geo / results.len() as f64).exp();
    println!("\ngeometric-mean normalised EDP (SPIN 2VC / EscapeVC 3VC): {gmean:.3}");
    println!("# Paper reports ~0.82 (18% lower EDP on average).");
    let doc = json::obj(vec![
        ("experiment", "fig8a".into()),
        ("cycles", Json::UInt(cycles)),
        ("workloads", Json::Arr(rows)),
        ("geomean_normalised_edp", Json::Num(gmean)),
    ]);
    match json::write_results("fig8a", &doc) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write results/fig8a.json: {e}"),
    }
}
