//! Fig. 10 — router area overhead of each deadlock-freedom scheme,
//! normalised to the West-first (pure turn-model) router, from the
//! calibrated analytical model. Also prints the Sec. VI-C/D area & power
//! savings of 1-VC vs 2/3-VC routers for mesh and dragonfly.
//!
//! Usage: `fig10`

use spin_experiments::{json, json::Json};
use spin_power::{PowerModel, RouterParams, Scheme};

fn main() {
    let m = PowerModel::nangate15();
    println!("# Fig. 10: router area normalised to West-first\n");
    let mut area_rows = Vec::new();
    for (label, p, n) in [
        ("mesh 8x8 (1 VC base)", RouterParams::mesh_router(1), 64u32),
        ("mesh 8x8 (2 VC base)", RouterParams::mesh_router(2), 64),
        (
            "dragonfly 1024 (1 VC base)",
            RouterParams::dragonfly_router(1),
            256,
        ),
    ] {
        println!("## {label}");
        println!("{:<16} {:>12} {:>12}", "scheme", "area(norm)", "overhead");
        for (name, scheme) in [
            ("west_first", Scheme::TurnModel),
            ("spin", Scheme::Spin { num_routers: n }),
            ("static_bubble", Scheme::StaticBubble),
            ("escape_vc", Scheme::EscapeVc),
        ] {
            let norm = m.area_vs_turn_model(&p, scheme);
            println!("{name:<16} {norm:>12.3} {:>11.1}%", (norm - 1.0) * 100.0);
            area_rows.push(json::obj(vec![
                ("router", label.into()),
                ("scheme", name.into()),
                ("area_normalised", Json::Num(norm)),
            ]));
        }
        println!();
    }

    println!(
        "# Sec. VI area/power savings of VC reduction (paper: mesh 52%/50%, dragonfly 53%/55%)\n"
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "router", "area 1v3", "power 1v3", "area 2v3", "power 2v3"
    );
    let mut savings_rows = Vec::new();
    for (label, mk) in [
        ("mesh", RouterParams::mesh_router as fn(u32) -> RouterParams),
        ("dragonfly", RouterParams::dragonfly_router),
    ] {
        let a = |v: u32| m.router_area(&mk(v));
        let p = |v: u32| m.router_power(&mk(v), 0.3);
        println!(
            "{label:<22} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            100.0 * (1.0 - a(1) / a(3)),
            100.0 * (1.0 - p(1) / p(3)),
            100.0 * (1.0 - a(2) / a(3)),
            100.0 * (1.0 - p(2) / p(3)),
        );
        savings_rows.push(json::obj(vec![
            ("router", label.into()),
            ("area_saving_1vc_vs_3vc", Json::Num(1.0 - a(1) / a(3))),
            ("power_saving_1vc_vs_3vc", Json::Num(1.0 - p(1) / p(3))),
            ("area_saving_2vc_vs_3vc", Json::Num(1.0 - a(2) / a(3))),
            ("power_saving_2vc_vs_3vc", Json::Num(1.0 - p(2) / p(3))),
        ]));
    }
    let doc = json::obj(vec![
        ("experiment", "fig10".into()),
        ("area_normalised_to_west_first", Json::Arr(area_rows)),
        ("vc_reduction_savings", Json::Arr(savings_rows)),
    ]);
    match json::write_results("fig10", &doc) {
        Ok(path) => println!("\n# wrote {}", path.display()),
        Err(e) => eprintln!("\n# could not write results/fig10.json: {e}"),
    }
    println!(
        "\n# Shape to check: SPIN within a few percent of West-first; Static\n\
         # Bubble slightly above SPIN; EscapeVC far above all (a whole extra\n\
         # VC per port); ~half the area/power saved going 3 VCs -> 1 VC."
    );
}
