//! Table I — qualitative comparison of deadlock-freedom theories, with the
//! machine-checkable cells verified by code: VC requirements come from the
//! routing implementations, and the CDG claims are validated by cycle
//! analysis on an 8x8 mesh.
//!
//! Usage: `table1`

use spin_deadlock::Cdg;
use spin_experiments::{json, json::Json};
use spin_routing::{
    EscapeVc, FavorsMinimal, FavorsNonMinimal, Routing, Ugal, WestFirst, XyRouting,
};
use spin_topology::Topology;
use spin_types::{Direction, RouterId};

/// Builds the CDG of a mesh under a turn rule (see spin-routing tests).
fn mesh_cdg(
    topo: &Topology,
    allowed: impl Fn(Direction, Direction) -> bool,
) -> Cdg<(RouterId, Direction)> {
    let mut cdg = Cdg::new();
    for r in 0..topo.num_routers() {
        let r = RouterId(r as u32);
        for din in Direction::ALL {
            if topo.neighbor(r, topo.dir_port(din.opposite())).is_none() {
                continue;
            }
            for dout in Direction::ALL {
                if dout == din.opposite() || !allowed(din, dout) {
                    continue;
                }
                if let Some(peer) = topo.neighbor(r, topo.dir_port(dout)) {
                    cdg.add_dependency((r, din), (peer.router, dout));
                }
            }
        }
    }
    // Self-dependencies are recorded (not fatal) since the CDG learned to
    // report them as 1-cycles; a turn-rule mesh CDG must never have any.
    assert!(
        cdg.self_cycles().is_empty(),
        "mesh turn-rule CDG produced a self-dependency"
    );
    cdg
}

fn main() {
    let topo = Topology::mesh(8, 8);
    let west_first_acyclic = mesh_cdg(&topo, |din, dout| {
        !(dout == Direction::West && din != Direction::West)
    })
    .is_acyclic();
    let unrestricted_acyclic = mesh_cdg(&topo, |_, _| true).is_acyclic();

    println!("# Table I: comparison of deadlock-freedom theories\n");
    println!(
        "{:<16} {:<22} {:<12} {:<12} {:<22} {:<10}",
        "theory",
        "inj/sched restrictions",
        "acyclic CDG",
        "topo dep.",
        "VC cost (det/adaptive)",
        "livelock"
    );
    let rows = [
        ("Dally", "no", "yes", "yes", "mesh 1/6, dfly 2/3", "none"),
        (
            "Duato",
            "no",
            "sub-graph",
            "yes",
            "mesh 1/2, dfly 2/3",
            "none",
        ),
        (
            "FlowControl",
            "yes",
            "no",
            "yes",
            "mesh 2/2, dfly 2/2",
            "none",
        ),
        (
            "Deflection",
            "yes",
            "no",
            "no",
            "0 (no minimal rt.)",
            "high",
        ),
        ("SPIN", "no", "no", "no", "mesh 1/1, dfly 1/1", "none"),
    ];
    for (t, r, c, d, v, l) in rows {
        println!("{t:<16} {r:<22} {c:<12} {d:<12} {v:<22} {l:<10}");
    }

    println!("\n# Machine-checked cells:");
    println!(
        "west-first (Dally avoidance) CDG acyclic on 8x8 mesh: {west_first_acyclic} (must be true)"
    );
    println!(
        "unrestricted adaptive CDG acyclic on 8x8 mesh: {unrestricted_acyclic} (must be false)"
    );
    println!("\n# VC requirements reported by the routing implementations:");
    let algos: Vec<Box<dyn Routing>> = vec![
        Box::new(XyRouting),
        Box::new(WestFirst),
        Box::new(EscapeVc),
        Box::new(Ugal::dally_baseline()),
        Box::new(Ugal::with_spin()),
        Box::new(FavorsMinimal),
        Box::new(FavorsNonMinimal),
    ];
    let mut algo_rows = Vec::new();
    for a in &algos {
        println!(
            "{:<14} min VCs (without SPIN): {}, misroute bound p = {}",
            a.name(),
            a.min_vcs_required(),
            a.misroute_bound()
        );
        algo_rows.push(json::obj(vec![
            ("routing", a.name().into()),
            (
                "min_vcs_without_spin",
                Json::UInt(a.min_vcs_required() as u64),
            ),
            ("misroute_bound", Json::UInt(a.misroute_bound() as u64)),
        ]));
    }
    let doc = json::obj(vec![
        ("experiment", "table1".into()),
        (
            "theories",
            Json::Arr(
                rows.iter()
                    .map(|&(t, r, c, d, v, l)| {
                        json::obj(vec![
                            ("theory", t.into()),
                            ("restrictions", r.into()),
                            ("acyclic_cdg", c.into()),
                            ("topology_dependent", d.into()),
                            ("vc_cost", v.into()),
                            ("livelock", l.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("west_first_cdg_acyclic", west_first_acyclic.into()),
        ("unrestricted_cdg_acyclic", unrestricted_acyclic.into()),
        ("routing_vc_requirements", Json::Arr(algo_rows)),
    ]);
    match json::write_results("table1", &doc) {
        Ok(path) => println!("\n# wrote {}", path.display()),
        Err(e) => eprintln!("\n# could not write results/table1.json: {e}"),
    }
    assert!(
        west_first_acyclic && !unrestricted_acyclic,
        "CDG validation failed"
    );
}
