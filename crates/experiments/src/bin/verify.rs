//! Whole-matrix static deadlock verification — regenerates the golden
//! `results/verify_matrix.json` CI diffs on every build.
//!
//! For every `(topology, routing, VC count)` configuration in
//! `spin_verify::standard_configs()` the real routing implementation is
//! walked over the real topology to derive its channel dependency graph,
//! which is then classified (Dally acyclicity, Duato escape VC, or
//! SPIN-recoverable) with elementary rings and per-ring spin bounds
//! enumerated. The output is deterministic at any thread count.
//!
//! Usage: `verify`

use spin_experiments::verify_matrix::{matrix_json, matrix_reports};
use spin_experiments::{json, num_threads};

fn main() {
    let reports = matrix_reports(num_threads());
    println!("# Static verification matrix ({} configs)\n", reports.len());
    println!(
        "{:<32} {:<22} {:>6} {:>8} {:>6} {:>6} {:>7}",
        "config", "classification", "chans", "deps", "rings", "girth", "bound"
    );
    for r in &reports {
        let girth = r.girth.map_or("-".to_string(), |g| g.to_string());
        let bound = r.max_spin_bound.map_or("-".to_string(), |b| b.to_string());
        let rings = if r.rings_truncated {
            format!("{}+", r.rings_enumerated)
        } else {
            r.rings_enumerated.to_string()
        };
        println!(
            "{:<32} {:<22} {:>6} {:>8} {:>6} {:>6} {:>7}",
            r.name, r.classification, r.channels, r.dependencies, rings, girth, bound
        );
    }
    let free = reports
        .iter()
        .filter(|r| r.classification != "recovery_required")
        .count();
    println!(
        "\n# {} deadlock-free (incl. escape), {} recovery-required",
        free,
        reports.len() - free
    );
    match json::write_results("verify_matrix", &matrix_json(&reports)) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("# could not write results/verify_matrix.json: {e}");
            std::process::exit(1);
        }
    }
}
