//! Sharded-kernel scaling probe: wall-clock `Network::step` throughput of
//! one paper-scale simulation (the 1024-node dragonfly of `fig9_1024`,
//! saturated bit complement) at 1, 2, 4 and 8 shards, written to
//! `results/scaling.json` so the intra-simulation speedup is tracked across
//! PRs.
//!
//! Every shard count simulates the identical network — the sharded kernel
//! is bit-identical to serial — so the curve isolates pure kernel scaling:
//! steps/s per shard count, speedup vs serial, plus the host's
//! `available_parallelism` (the curve is only meaningful where the host has
//! the cores; a 1-core runner measures thread overhead, not scaling, and
//! the JSON records that honestly).
//!
//! Usage: `scaling [--quick] [--gate]`
//!
//! * `--quick` — smoke mode: shorter batches, the result is still written.
//! * `--gate` — CI gate: exit nonzero if the 4-shard speedup over serial is
//!   below 1.5x. Auto-skips (exit 0, with a notice) when the host reports
//!   fewer than 4 available cores or `SPIN_SKIP_SCALING_GATE=1` — a
//!   wall-clock gate is meaningless on an oversubscribed or tiny runner.

use spin_core::SpinConfig;
use spin_experiments::json::{arr, obj, write_results, Json};
use spin_routing::Ugal;
use spin_sim::{Network, NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};
use std::hint::black_box;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const GATE_SHARDS: usize = 4;
const GATE_MIN_SPEEDUP: f64 = 1.5;

fn dragonfly1024(shards: usize) -> Network {
    let topo = Topology::dragonfly(4, 8, 4, 32);
    let traffic = SyntheticTraffic::new(
        SyntheticConfig::new(Pattern::BitComplement, 0.30),
        &topo,
        13,
    );
    NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            seed: 13,
            ..SimConfig::default()
        })
        .routing(Ugal::with_spin())
        .traffic(traffic)
        .spin(SpinConfig::default())
        .shards(shards)
        .build()
}

/// Median ns/step over `reps` batches on a warmed network.
fn time_shards(shards: usize, warmup: u64, batch: u64, reps: usize) -> (f64, Vec<f64>) {
    let mut net = dragonfly1024(shards);
    assert_eq!(net.shards(), shards.min(net.topology().num_routers()));
    net.run(warmup);
    let mut samples: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        net.run(batch);
        black_box(net.now());
        samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    let mut sorted = samples.clone();
    sorted.sort_by(f64::total_cmp);
    (sorted[reps / 2], samples)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let (warmup, batch, reps) = if quick {
        (200, 200, 3)
    } else {
        (1_000, 1_000, 5)
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!(
        "# scaling: 1024-node dragonfly, saturated bit complement \
         (median of {reps} x {batch}-cycle batches; host cores: {cores})\n"
    );
    let mut serial_ns = 0.0f64;
    let mut speedup_at_gate = 0.0f64;
    let mut points = Vec::new();
    for shards in SHARD_COUNTS {
        let (median, samples) = time_shards(shards, warmup, batch, reps);
        if shards == 1 {
            serial_ns = median;
        }
        let speedup = serial_ns / median;
        if shards == GATE_SHARDS {
            speedup_at_gate = speedup;
        }
        println!(
            "shards={shards:<2} {median:12.1} ns/step  ({:8.3} ksteps/s, {speedup:5.2}x vs serial)",
            1e6 / median
        );
        points.push(obj(vec![
            ("shards", Json::UInt(shards as u64)),
            ("ns_per_step_median", Json::Num(median)),
            ("steps_per_sec", Json::Num(1e9 / median)),
            ("speedup_vs_serial", Json::Num(speedup)),
            (
                "samples_ns_per_step",
                arr(samples.into_iter().map(Json::Num).collect()),
            ),
        ]));
    }
    let doc = obj(vec![
        ("name", "scaling".into()),
        ("topology", "dragonfly_p4_a8_h4_g32".into()),
        ("pattern", "bit_complement_0.30".into()),
        ("available_parallelism", Json::UInt(cores as u64)),
        ("quick", Json::Bool(quick)),
        ("warmup_cycles", Json::UInt(warmup)),
        ("batch_cycles", Json::UInt(batch)),
        ("reps", Json::UInt(reps as u64)),
        ("points", arr(points)),
    ]);
    match write_results("scaling", &doc) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("failed to write results: {e}"),
    }

    if gate {
        if std::env::var("SPIN_SKIP_SCALING_GATE").is_ok_and(|v| v == "1") {
            println!("scaling gate: skipped (SPIN_SKIP_SCALING_GATE=1)");
            return;
        }
        if cores < GATE_SHARDS {
            println!(
                "scaling gate: skipped (host reports {cores} cores; \
                 need >= {GATE_SHARDS} for a meaningful {GATE_SHARDS}-shard gate)"
            );
            return;
        }
        if speedup_at_gate < GATE_MIN_SPEEDUP {
            eprintln!(
                "scaling gate: FAIL — {GATE_SHARDS}-shard speedup {speedup_at_gate:.2}x \
                 is below the {GATE_MIN_SPEEDUP:.1}x floor"
            );
            std::process::exit(1);
        }
        println!("scaling gate: OK ({GATE_SHARDS}-shard speedup {speedup_at_gate:.2}x)");
    }
}
