//! Cycle-kernel throughput probe: wall-clock speed of `Network::step` on an
//! 8x8 mesh at a quiet and a saturated operating point, written as
//! machine-readable JSON to `results/step_throughput.json` so the perf
//! trajectory is tracked across PRs (see EXPERIMENTS.md).
//!
//! The two operating points mirror the criterion guard bench in
//! `crates/bench/benches/step_throughput.rs`; this binary trades
//! criterion's statistics for a fast, scriptable single number (median of
//! `REPS` timed batches).
//!
//! Usage: `step_throughput [--quick]`

use spin_core::SpinConfig;
use spin_experiments::json::{arr, obj, write_results, Json};
use spin_experiments::quick_mode;
use spin_routing::FavorsMinimal;
use spin_sim::{Network, NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};
use spin_verify::{FabricManager, DEFAULT_RING_CAP};
use std::hint::black_box;
use std::time::Instant;

fn mesh8x8(rate: f64, shards: usize, fabric: bool) -> Network {
    let topo = Topology::mesh(8, 8);
    let traffic =
        SyntheticTraffic::new(SyntheticConfig::new(Pattern::UniformRandom, rate), &topo, 7);
    let mut builder = NetworkBuilder::new(topo.clone())
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 1,
            ..SimConfig::default()
        })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .shards(shards);
    if fabric {
        // The online admission check only runs on kill/heal events; this
        // fault-free point pins that merely installing the manager leaves
        // the hot step path alone (the perf gate holds it to <2%).
        builder = builder.fabric(Box::new(FabricManager::new(
            "mesh8x8/favors_min",
            topo,
            Box::new(FavorsMinimal),
            1,
            true,
            DEFAULT_RING_CAP,
        )));
    }
    builder.build()
}

/// Times `batch` steps `reps` times on a warmed network; returns the
/// per-batch nanosecond medians' midpoint (median of reps).
fn time_config(
    rate: f64,
    shards: usize,
    fabric: bool,
    warmup: u64,
    batch: u64,
    reps: usize,
) -> (f64, Vec<f64>) {
    let mut net = mesh8x8(rate, shards, fabric);
    net.run(warmup);
    let mut samples: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        net.run(batch);
        black_box(net.now());
        let dt = t0.elapsed();
        samples.push(dt.as_nanos() as f64 / batch as f64);
    }
    let mut sorted = samples.clone();
    sorted.sort_by(f64::total_cmp);
    (sorted[reps / 2], samples)
}

fn main() {
    let quick = quick_mode();
    let (warmup, batch, reps) = if quick {
        (2_000, 2_000, 5)
    } else {
        (2_000, 10_000, 9)
    };
    // The sharded point reuses the saturated workload: saturation is where
    // a parallel step has work to fan out (low load would only measure the
    // phase-barrier overhead).
    let configs = [
        ("mesh8x8_low_load_0.05", 0.05, 1, false),
        ("mesh8x8_low_load_0.05_fabric", 0.05, 1, true),
        ("mesh8x8_saturated_0.45", 0.45, 1, false),
        ("mesh8x8_saturated_0.45_shards4", 0.45, 4, false),
    ];
    println!(
        "# step_throughput: ns per Network::step (median of {reps} x {batch}-cycle batches)\n"
    );
    let mut points = Vec::new();
    for (name, rate, shards, fabric) in configs {
        let (median, samples) = time_config(rate, shards, fabric, warmup, batch, reps);
        println!(
            "{name:<28} {median:10.1} ns/step  ({:.2} Msteps/s)",
            1e3 / median
        );
        points.push(obj(vec![
            ("config", (*name).into()),
            ("rate", Json::Num(rate)),
            ("shards", Json::UInt(shards as u64)),
            ("fabric", Json::Bool(fabric)),
            ("ns_per_step_median", Json::Num(median)),
            ("msteps_per_sec", Json::Num(1e3 / median)),
            (
                "samples_ns_per_step",
                arr(samples.into_iter().map(Json::Num).collect()),
            ),
        ]));
    }
    let doc = obj(vec![
        ("name", "step_throughput".into()),
        ("warmup_cycles", Json::UInt(warmup)),
        ("batch_cycles", Json::UInt(batch)),
        ("reps", Json::UInt(reps as u64)),
        ("points", arr(points)),
    ]);
    match write_results("step_throughput", &doc) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("failed to write results: {e}"),
    }
}
