//! Cross-topology campaign: latency, throughput and spin counts vs offered
//! load on the low-diameter expansion topologies — HyperX, dragonfly+ and
//! full mesh at 256 nodes — comparing each family's *native* deadlock
//! discipline (VC escalation or VC-free deroutes, no SPIN) against
//! SPIN+FAvORS on one VC (see `docs/TOPOLOGIES.md`).
//!
//! Usage: `cross_topology [--quick] [--full]`
//!
//! `--quick` shrinks every network to smoke-test scale (16–32 nodes) and
//! trims the rate grid; the default and `--full` runs use the 256-node
//! instances the committed `results/cross_topology.json` records.

use spin_experiments::{full_mode, quick_mode, run_and_report, Design, ExperimentSpec, RunParams};
use spin_routing::{DfPlusAdaptive, FavorsMinimal, FavorsNonMinimal, FullMeshDeroute, HyperXDal};
use spin_topology::Topology;
use spin_traffic::Pattern;
use spin_types::Cycle;

fn main() {
    let quick = quick_mode();
    let full = full_mode();
    let measure: Cycle = if full {
        50_000
    } else if quick {
        2_000
    } else {
        10_000
    };
    let params = RunParams {
        warmup: measure / 5,
        measure,
        seed: 23,
        ..RunParams::default()
    };
    // Low-diameter topologies saturate far above mesh rates: the grid
    // reaches 0.9 flits/node/cycle.
    let rates = if quick {
        vec![0.1, 0.4, 0.7]
    } else {
        vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90]
    };

    // 256-node instances (smoke scale under --quick):
    //   HyperX 4x4x4, 4 terminals/router  -> 64 routers, radix 13
    //   dragonfly+ p4 l8 s8 h1 g8         -> 128 routers, 8 groups
    //   full mesh, 64 routers x 4 nodes   -> radix 67
    let hx = if quick {
        Topology::hyperx(&[4, 4], 2)
    } else {
        Topology::hyperx(&[4, 4, 4], 4)
    };
    let dfp = if quick {
        Topology::dragonfly_plus(2, 2, 2, 2, 4)
    } else {
        Topology::dragonfly_plus(4, 8, 8, 1, 8)
    };
    let fm = if quick {
        Topology::full_mesh(8, 2)
    } else {
        Topology::full_mesh(64, 4)
    }
    .expect("valid full-mesh parameters");

    let hx_esc = HyperXDal::escalation(&hx);
    let specs = [
        ExperimentSpec {
            name: "cross_topology_hyperx".into(),
            topo: hx,
            designs: vec![
                Design::new("hx_dal_esc_3vc", 3, false, move || Box::new(hx_esc)),
                Design::new("favors_min_spin_1vc", 1, true, || Box::new(FavorsMinimal)),
            ],
            patterns: vec![Pattern::UniformRandom],
            rates: rates.clone(),
            params,
            stop_at_saturation: true,
        },
        ExperimentSpec {
            name: "cross_topology_dfplus".into(),
            topo: dfp,
            designs: vec![
                Design::new("dfplus_esc_3vc", 3, false, || {
                    Box::new(DfPlusAdaptive::escalation())
                }),
                Design::new("favors_nmin_spin_1vc", 1, true, || {
                    Box::new(FavorsNonMinimal)
                }),
            ],
            patterns: vec![Pattern::UniformRandom],
            rates: rates.clone(),
            params,
            stop_at_saturation: true,
        },
        ExperimentSpec {
            name: "cross_topology_fullmesh".into(),
            topo: fm,
            designs: vec![
                Design::new("fm_deroute_1vc", 1, false, || Box::new(FullMeshDeroute)),
                Design::new("favors_nmin_spin_1vc", 1, true, || {
                    Box::new(FavorsNonMinimal)
                }),
            ],
            patterns: vec![Pattern::UniformRandom],
            rates,
            params,
            stop_at_saturation: true,
        },
    ];

    println!("# Cross-topology campaign: native discipline vs SPIN+FAvORS ({measure} cycles)\n");
    for spec in &specs {
        println!("# {} ({} nodes)", spec.topo.name(), spec.topo.num_nodes());
        run_and_report(spec);
    }
    println!(
        "# Shape to check: native disciplines (escalation / deroutes) pay no\n\
         # recovery cost and their spin column stays zero; SPIN+FAvORS on one\n\
         # VC matches or beats their latency at low load and spins only near\n\
         # saturation. The full-mesh deroute scheme needs neither VCs nor SPIN."
    );
}
