//! Fig. 7 — 8x8 mesh: latency vs injection rate for the paper's six mesh
//! designs over five synthetic patterns.
//!
//! Usage: `fig7 [--quick]`

use spin_experiments::{print_sweep, quick_mode, rate_grid, sweep, Design, RunParams};
use spin_routing::{EscapeVc, FavorsMinimal, ReservedVcAdaptive, WestFirst};
use spin_topology::Topology;
use spin_traffic::Pattern;

fn designs() -> Vec<Design> {
    vec![
        Design::new("westfirst_3vc", 3, false, || Box::new(WestFirst)),
        Design::new("escapevc_3vc", 3, false, || Box::new(EscapeVc)),
        Design::new("staticbubble_3vc", 3, false, || Box::new(ReservedVcAdaptive::new(3)))
            .with_static_bubble(),
        Design::new("minadaptive_3vc_spin", 3, true, || Box::new(FavorsMinimal)),
        Design::new("favors_min_1vc", 1, true, || Box::new(FavorsMinimal)),
        Design::new("westfirst_1vc", 1, false, || Box::new(WestFirst)),
    ]
}

fn main() {
    let quick = quick_mode();
    let topo = Topology::mesh(8, 8);
    let params = if quick {
        RunParams { warmup: 500, measure: 2_000, ..RunParams::default() }
    } else {
        RunParams::default()
    };
    let rates = rate_grid(quick);
    let patterns = [
        Pattern::UniformRandom,
        Pattern::Transpose,
        Pattern::BitReverse,
        Pattern::BitRotation,
        Pattern::Tornado,
    ];
    println!("# Fig. 7: 8x8 mesh latency vs injection rate\n");
    let mut summary: Vec<(String, f64)> = Vec::new();
    for pattern in patterns {
        for d in designs() {
            let (points, sat) = sweep(&topo, &d, pattern, &rates, params);
            print_sweep(d.name, pattern, &points, sat);
            summary.push((format!("{pattern}/{}", d.name), sat));
        }
    }
    println!("# Saturation throughput summary (flits/node/cycle)");
    for (k, v) in summary {
        println!("{k:<45} {v:.3}");
    }
}
