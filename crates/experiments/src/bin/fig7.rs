//! Fig. 7 — 8x8 mesh: latency vs injection rate for the paper's six mesh
//! designs over five synthetic patterns.
//!
//! Usage: `fig7 [--quick]`

use spin_experiments::{quick_mode, rate_grid, run_and_report, Design, ExperimentSpec, RunParams};
use spin_routing::{EscapeVc, FavorsMinimal, ReservedVcAdaptive, WestFirst};
use spin_topology::Topology;
use spin_traffic::Pattern;

fn designs() -> Vec<Design> {
    vec![
        Design::new("westfirst_3vc", 3, false, || Box::new(WestFirst)),
        Design::new("escapevc_3vc", 3, false, || Box::new(EscapeVc)),
        Design::new("staticbubble_3vc", 3, false, || {
            Box::new(ReservedVcAdaptive::new(3))
        })
        .with_static_bubble(),
        Design::new("minadaptive_3vc_spin", 3, true, || Box::new(FavorsMinimal)),
        Design::new("favors_min_1vc", 1, true, || Box::new(FavorsMinimal)),
        Design::new("westfirst_1vc", 1, false, || Box::new(WestFirst)),
    ]
}

fn main() {
    let quick = quick_mode();
    let params = if quick {
        RunParams {
            warmup: 500,
            measure: 2_000,
            ..RunParams::default()
        }
    } else {
        RunParams::default()
    };
    let spec = ExperimentSpec {
        name: "fig7".into(),
        topo: Topology::mesh(8, 8),
        designs: designs(),
        patterns: vec![
            Pattern::UniformRandom,
            Pattern::Transpose,
            Pattern::BitReverse,
            Pattern::BitRotation,
            Pattern::Tornado,
        ],
        rates: rate_grid(quick),
        params,
        stop_at_saturation: true,
    };
    println!("# Fig. 7: 8x8 mesh latency vs injection rate\n");
    let curves = run_and_report(&spec);
    println!("# Saturation throughput summary (flits/node/cycle)");
    for c in &curves {
        println!(
            "{:<45} {:.3}",
            format!("{}/{}", c.pattern, c.design),
            c.saturation
        );
    }
}
