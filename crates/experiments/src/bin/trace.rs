//! Observability demo — replays the documented deadlock scenario
//! ([`spin_experiments::trace_scenario_builder`]: a 4x4 mesh, adaptive
//! minimal routing, 1 VC/vnet, saturating uniform-random traffic, SPIN with
//! `t_dd = 64`) with full event tracing and time-series metrics on, then
//! exports:
//!
//! * `results/trace.jsonl` — the structured event stream, one JSON object
//!   per line (byte-identical across runs and thread counts; the
//!   golden-trace regression test pins this stream);
//! * `results/trace.chrome.json` — the same narrative as a Chrome
//!   `trace_event` timeline: load it in `about:tracing` or
//!   <https://ui.perfetto.dev> to browse packets and per-router SPIN
//!   protocol activity on a cycle axis;
//! * `results/trace_metrics.json` — the epoch ring (injection/ejection
//!   rates, log2 latency histogram, per-link flit counts, per-VC occupancy
//!   snapshots) for plotting transients.
//!
//! The run is deterministic: the scenario is seeded, tracing observes
//! without perturbing, and the event order is simulation order.
//!
//! Usage: `trace [--quick]` (`--quick` truncates the exports, not the run).

use spin_experiments::{json, json::Json, quick_mode, run_trace_scenario, TRACE_SCENARIO_CYCLES};
use spin_sim::LATENCY_BUCKETS;
use spin_trace::{chrome, jsonl, TraceRecord, VecSink};
use std::io::Write as _;
use std::path::PathBuf;

fn write_text(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(contents.as_bytes())?;
    Ok(path)
}

fn event_counts(events: &[TraceRecord]) -> Vec<(&'static str, u64)> {
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    for rec in events {
        let name = rec.event.name();
        match counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => counts.push((name, 1)),
        }
    }
    counts
}

fn main() {
    let quick = quick_mode();
    println!("# trace: deadlock scenario with full observability ({TRACE_SCENARIO_CYCLES} cycles)");
    let net = run_trace_scenario(Box::new(VecSink::new()));
    let events = net
        .trace_events()
        .expect("VecSink retains the recording")
        .to_vec();
    let stats = net.stats();

    // Narrative summary: the protocol story the trace tells.
    println!("\n## event counts");
    for (name, count) in event_counts(&events) {
        println!("{name:<24} {count:>8}");
    }
    let first = |name: &str| events.iter().find(|r| r.event.name() == name);
    for name in ["probe_launch", "deadlock_detected", "spin_start"] {
        match first(name) {
            Some(r) => println!("first {name:<20} cycle {}", r.cycle),
            None => println!("first {name:<20} (never)"),
        }
    }
    println!(
        "\n{} packets delivered, {} spins, {} probes over {} cycles",
        stats.packets_delivered, stats.spins, stats.probes_sent, stats.cycles
    );

    // Exports. --quick keeps the run identical but truncates the files.
    let keep = if quick {
        2_000.min(events.len())
    } else {
        events.len()
    };
    match write_text("trace.jsonl", &jsonl::to_string(&events[..keep])) {
        Ok(p) => println!("# wrote {} ({keep} events)", p.display()),
        Err(e) => eprintln!("# could not write trace.jsonl: {e}"),
    }
    match write_text("trace.chrome.json", &chrome::to_string(&events[..keep])) {
        Ok(p) => println!("# wrote {} (load in about:tracing)", p.display()),
        Err(e) => eprintln!("# could not write trace.chrome.json: {e}"),
    }

    // Epoch time-series → trace_metrics.json.
    let metrics = net.metrics().expect("scenario enables the epoch ring");
    let epochs: Vec<Json> = metrics
        .epochs()
        .iter()
        .map(|e| {
            json::obj(vec![
                ("start", Json::UInt(e.start)),
                ("end", Json::UInt(e.end)),
                ("flits_injected", Json::UInt(e.flits_injected)),
                ("flits_delivered", Json::UInt(e.flits_delivered)),
                ("packets_injected", Json::UInt(e.packets_injected)),
                ("packets_delivered", Json::UInt(e.packets_delivered)),
                ("sm_link_cycles", Json::UInt(e.sm_link_cycles)),
                (
                    "latency_hist",
                    Json::Arr(e.latency_hist.iter().map(|&c| Json::UInt(c)).collect()),
                ),
                (
                    "link_flits",
                    Json::Arr(e.link_flits.iter().map(|&c| Json::UInt(c as u64)).collect()),
                ),
                (
                    "vc_occupancy",
                    Json::Arr(
                        e.vc_occupancy
                            .iter()
                            .map(|&c| Json::UInt(c as u64))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let doc = json::obj(vec![
        ("experiment", Json::Str("trace".into())),
        ("cycles", Json::UInt(TRACE_SCENARIO_CYCLES)),
        ("epoch_len", Json::UInt(metrics.config().epoch_len)),
        ("latency_buckets", Json::UInt(LATENCY_BUCKETS as u64)),
        ("epochs_evicted", Json::UInt(metrics.evicted())),
        ("epochs", Json::Arr(epochs)),
    ]);
    match json::write_results("trace_metrics", &doc) {
        Ok(p) => println!("# wrote {}", p.display()),
        Err(e) => eprintln!("# could not write trace_metrics.json: {e}"),
    }
}
