//! Fig. 8(b) — network-link utilisation split into data flits, probe SMs,
//! other SMs and idle, for uniform random traffic on the 8x8 mesh with
//! 3 VCs (minimal adaptive + SPIN) at low / medium / high load.
//!
//! Usage: `fig8b [--quick]`

use spin_experiments::{json, quick_mode, run_spec, spec_json, Design, ExperimentSpec, RunParams};
use spin_routing::FavorsMinimal;
use spin_topology::Topology;
use spin_traffic::Pattern;

fn main() {
    let quick = quick_mode();
    let cycles = if quick { 10_000 } else { 50_000 };
    let spec = ExperimentSpec {
        name: "fig8b".into(),
        topo: Topology::mesh(8, 8),
        designs: vec![Design::new("minadaptive_3vc_spin", 3, true, || {
            Box::new(FavorsMinimal)
        })],
        patterns: vec![Pattern::UniformRandom],
        // Low / medium / high load; the high point is deliberately past
        // saturation, so the curve must not be cut there.
        rates: vec![0.01, 0.2, 0.5],
        params: RunParams {
            warmup: cycles / 5,
            measure: cycles,
            seed: 5,
            ..RunParams::default()
        },
        stop_at_saturation: false,
    };
    println!("# Fig. 8b: link utilisation, mesh 8x8, 3 VCs, minimal adaptive + SPIN\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "rate", "flit%", "probe%", "otherSM%", "idle%", "spins"
    );
    let curves = run_spec(&spec);
    for p in &curves[0].points {
        println!(
            "{:>8.2} {:>10.2} {:>10.3} {:>10.3} {:>10.2} {:>8}",
            p.offered,
            100.0 * p.flit_util,
            100.0 * p.probe_util,
            100.0 * p.other_sm_util,
            100.0 * p.idle_util,
            p.spins
        );
    }
    match json::write_results(&spec.name, &spec_json(&spec, &curves)) {
        Ok(path) => println!("\n# wrote {}", path.display()),
        Err(e) => eprintln!("\n# could not write results/{}.json: {e}", spec.name),
    }
    println!(
        "\n# Shape to check against the paper: SM utilisation stays under ~5%\n\
         # at every load; flit utilisation peaks at medium load and falls at\n\
         # high load as deadlocks become frequent; links are otherwise idle."
    );
}
