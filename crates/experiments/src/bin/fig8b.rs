//! Fig. 8(b) — network-link utilisation split into data flits, probe SMs,
//! other SMs and idle, for uniform random traffic on the 8x8 mesh with
//! 3 VCs (minimal adaptive + SPIN) at low / medium / high load.
//!
//! Usage: `fig8b [--quick]`

use spin_core::SpinConfig;
use spin_experiments::quick_mode;
use spin_routing::FavorsMinimal;
use spin_sim::{NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};

fn main() {
    let quick = quick_mode();
    let cycles = if quick { 10_000 } else { 50_000 };
    let topo = Topology::mesh(8, 8);
    println!("# Fig. 8b: link utilisation, mesh 8x8, 3 VCs, minimal adaptive + SPIN\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "rate", "flit%", "probe%", "otherSM%", "idle%", "spins"
    );
    for rate in [0.01, 0.2, 0.5] {
        let tc = SyntheticConfig::new(Pattern::UniformRandom, rate);
        let traffic = SyntheticTraffic::new(tc, &topo, 5);
        let mut net = NetworkBuilder::new(topo.clone())
            .config(SimConfig { vnets: 3, vcs_per_vnet: 3, ..SimConfig::default() })
            .routing(FavorsMinimal)
            .traffic(traffic)
            .spin(SpinConfig::default())
            .build();
        net.run(cycles);
        let s = net.stats();
        let u = s.link_use;
        println!(
            "{:>8.2} {:>10.2} {:>10.3} {:>10.3} {:>10.2} {:>8}",
            rate,
            100.0 * u.flit_fraction(),
            100.0 * u.probe_fraction(),
            100.0 * u.other_sm_fraction(),
            100.0 * u.idle_fraction(),
            s.spins
        );
    }
    println!(
        "\n# Shape to check against the paper: SM utilisation stays under ~5%\n\
         # at every load; flit utilisation peaks at medium load and falls at\n\
         # high load as deadlocks become frequent; links are otherwise idle."
    );
}
