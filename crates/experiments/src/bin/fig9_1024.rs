//! Fig. 9 at the paper's full dragonfly scale: false positives and spins vs
//! injection rate on the true 1024-node dragonfly (p=4, a=8, h=4, g=32 —
//! 256 routers, 1024 nodes, the configuration of the paper's Sec. IV), UGAL
//! with SPIN in 1-VC and 3-VC configurations under bit complement, probes
//! classified against the ground-truth detector.
//!
//! This is the experiment the sharded step kernel exists for: one 256-router
//! network is far too large for the quick CI figures, so each point's
//! `Network::step` fans out across every available core (capped at 8
//! shards), while the per-point results stay bit-identical to a serial run
//! (see `crates/sim/tests/shard_oracle.rs`). The result lands in
//! `results/fig9_dragonfly1024.json`; EXPERIMENTS.md records the runtime.
//!
//! Usage: `fig9_1024 [--quick]` (`--quick` shortens the window and the rate
//! grid for CI smoke; the committed artifact comes from the default mode).

use spin_experiments::{json, quick_mode, run_spec, spec_json, Design, ExperimentSpec, RunParams};
use spin_routing::Ugal;
use spin_topology::Topology;
use spin_traffic::Pattern;
use spin_types::Cycle;

fn main() {
    let quick = quick_mode();
    let cycles: Cycle = if quick { 2_000 } else { 20_000 };
    let rates = if quick {
        vec![0.10, 0.30]
    } else {
        vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
    };
    let shards = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(1);
    let params = RunParams {
        warmup: cycles / 5,
        measure: cycles,
        classify: true,
        seed: 13,
        shards: Some(shards),
        ..RunParams::default()
    };
    let spec = ExperimentSpec {
        name: "fig9_dragonfly1024".into(),
        topo: Topology::dragonfly(4, 8, 4, 32),
        designs: vec![
            Design::new("ugal_spin_1vc", 1, true, || Box::new(Ugal::with_spin())),
            Design::new("ugal_spin_3vc", 3, true, || Box::new(Ugal::with_spin())),
        ],
        patterns: vec![Pattern::BitComplement],
        rates,
        params,
        stop_at_saturation: false,
    };
    assert_eq!(spec.topo.num_nodes(), 1024, "paper-scale dragonfly");

    println!(
        "# Fig. 9, 1024-node dragonfly ({} routers, {cycles} cycles, {shards} shards/step)\n",
        spec.topo.num_routers()
    );
    let t0 = std::time::Instant::now();
    let curves = run_spec(&spec);
    let wall = t0.elapsed();
    for c in &curves {
        println!("## {} / {} / {}", spec.topo.name(), c.pattern, c.design);
        println!(
            "{:>8} {:>10} {:>14} {:>8}",
            "rate", "probes", "false_spins", "spins"
        );
        for p in &c.points {
            println!(
                "{:>8.2} {:>10} {:>14} {:>8}",
                p.offered, p.probes, p.false_positive_spins, p.spins
            );
        }
        println!();
    }
    match json::write_results(&spec.name, &spec_json(&spec, &curves)) {
        Ok(path) => println!("# wrote {} in {:.1}s", path.display(), wall.as_secs_f64()),
        Err(e) => eprintln!("# could not write results/{}.json: {e}", spec.name),
    }
    println!(
        "# Shape to check against the paper (Fig. 9 right): the 1-VC dragonfly\n\
         # shows ~zero false positives; spins fall as VCs rise at low/medium\n\
         # load; past saturation both configurations probe heavily."
    );
}
