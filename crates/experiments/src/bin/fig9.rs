//! Fig. 9 — false positives and spins as a function of injection rate, for
//! the mesh (uniform random) and dragonfly (bit complement), in 1-VC and
//! 3-VC configurations. Probes are classified against the ground-truth
//! wait-graph detector.
//!
//! Usage: `fig9 [--quick] [--full]`

use spin_core::SpinConfig;
use spin_experiments::{full_mode, quick_mode};
use spin_routing::{FavorsMinimal, Routing, Ugal};
use spin_sim::{NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};
use spin_types::Cycle;

fn run(
    topo: &Topology,
    routing: Box<dyn Routing>,
    vcs: u8,
    pattern: Pattern,
    rate: f64,
    cycles: Cycle,
) -> (u64, u64, u64) {
    let mut tc = SyntheticConfig::new(pattern, rate);
    tc.vnets = 3;
    let traffic = SyntheticTraffic::new(tc, topo, 13);
    let mut net = NetworkBuilder::new(topo.clone())
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: vcs,
            classify_probes: true,
            ..SimConfig::default()
        })
        .routing_box(routing)
        .traffic(traffic)
        .spin(SpinConfig::default())
        .build();
    net.run(cycles);
    let s = net.stats();
    (s.probes_sent, s.false_positive_spins, s.spins)
}

fn main() {
    let quick = quick_mode();
    let full = full_mode();
    let cycles: Cycle = if full {
        100_000
    } else if quick {
        5_000
    } else {
        20_000
    };
    let rates = if quick {
        vec![0.1, 0.3, 0.5]
    } else {
        vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
    };
    let mesh = Topology::mesh(8, 8);
    let dfly = if full {
        Topology::dragonfly(4, 8, 4, 32)
    } else {
        Topology::dragonfly(2, 4, 2, 8)
    };

    fn mk_mesh() -> Box<dyn Routing> {
        Box::new(FavorsMinimal)
    }
    fn mk_dfly() -> Box<dyn Routing> {
        Box::new(Ugal::with_spin())
    }
    type Mk = fn() -> Box<dyn Routing>;
    let cases: [(&str, &Topology, Pattern, Mk); 2] = [
        ("mesh/uniform", &mesh, Pattern::UniformRandom, mk_mesh),
        ("dragonfly/bit_complement", &dfly, Pattern::BitComplement, mk_dfly),
    ];

    println!("# Fig. 9: false positives and spins vs injection rate ({cycles} cycles)\n");
    for (label, topo, pattern, mk) in cases {
        for vcs in [1u8, 3u8] {
            println!("## {label} {vcs}VC");
            println!("{:>8} {:>10} {:>14} {:>8}", "rate", "probes", "false_spins", "spins");
            for &rate in &rates {
                let (probes, fps, spins) = run(topo, mk(), vcs, pattern, rate, cycles);
                println!("{rate:>8.2} {probes:>10} {fps:>14} {spins:>8}");
            }
            println!();
        }
    }
    println!(
        "# Shape to check against the paper: 1-VC configurations show ~zero\n\
         # false positives (no probe forking); multi-VC meshes show some false\n\
         # positives at high load; no false positives below ~10x application\n\
         # loads; more VCs => fewer deadlocks (spins) at low/medium load."
    );
}
