//! Fig. 9 — false positives and spins as a function of injection rate, for
//! the mesh (uniform random) and dragonfly (bit complement), in 1-VC and
//! 3-VC configurations. Probes are classified against the ground-truth
//! wait-graph detector.
//!
//! Usage: `fig9 [--quick] [--full]`

use spin_experiments::{
    full_mode, json, quick_mode, run_spec, spec_json, Design, ExperimentSpec, RunParams,
};
use spin_routing::{FavorsMinimal, Ugal};
use spin_topology::Topology;
use spin_traffic::Pattern;
use spin_types::Cycle;

fn main() {
    let quick = quick_mode();
    let full = full_mode();
    let cycles: Cycle = if full {
        100_000
    } else if quick {
        5_000
    } else {
        20_000
    };
    let rates = if quick {
        vec![0.1, 0.3, 0.5]
    } else {
        vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.50]
    };
    let params = RunParams {
        warmup: cycles / 5,
        measure: cycles,
        classify: true,
        seed: 13,
        ..RunParams::default()
    };
    let dfly = if full {
        Topology::dragonfly(4, 8, 4, 32)
    } else {
        Topology::dragonfly(2, 4, 2, 8)
    };
    // Both configurations sample all rates, including past saturation: the
    // interesting false positives appear exactly there.
    let specs = [
        ExperimentSpec {
            name: "fig9_mesh".into(),
            topo: Topology::mesh(8, 8),
            designs: vec![
                Design::new("favors_min_1vc", 1, true, || Box::new(FavorsMinimal)),
                Design::new("favors_min_3vc", 3, true, || Box::new(FavorsMinimal)),
            ],
            patterns: vec![Pattern::UniformRandom],
            rates: rates.clone(),
            params,
            stop_at_saturation: false,
        },
        ExperimentSpec {
            name: "fig9_dragonfly".into(),
            topo: dfly,
            designs: vec![
                Design::new("ugal_spin_1vc", 1, true, || Box::new(Ugal::with_spin())),
                Design::new("ugal_spin_3vc", 3, true, || Box::new(Ugal::with_spin())),
            ],
            patterns: vec![Pattern::BitComplement],
            rates,
            params,
            stop_at_saturation: false,
        },
    ];

    println!("# Fig. 9: false positives and spins vs injection rate ({cycles} cycles)\n");
    for spec in &specs {
        let curves = run_spec(spec);
        for c in &curves {
            println!("## {} / {} / {}", spec.topo.name(), c.pattern, c.design);
            println!(
                "{:>8} {:>10} {:>14} {:>8}",
                "rate", "probes", "false_spins", "spins"
            );
            for p in &c.points {
                println!(
                    "{:>8.2} {:>10} {:>14} {:>8}",
                    p.offered, p.probes, p.false_positive_spins, p.spins
                );
            }
            println!();
        }
        match json::write_results(&spec.name, &spec_json(spec, &curves)) {
            Ok(path) => println!("# wrote {}", path.display()),
            Err(e) => eprintln!("# could not write results/{}.json: {e}", spec.name),
        }
    }
    println!(
        "# Shape to check against the paper: 1-VC configurations show ~zero\n\
         # false positives (no probe forking); multi-VC meshes show some false\n\
         # positives at high load; no false positives below ~10x application\n\
         # loads; more VCs => fewer deadlocks (spins) at low/medium load."
    );
}
