//! Fig. 3 — minimum injection rate (flits/node/cycle) at which an 8x8 mesh
//! (minimal adaptive routing) and a dragonfly (UGAL, free VC use) deadlock
//! at least once, per synthetic pattern, with 3 VCs/port and 1-flit packets.
//!
//! The rate is found by a coarse geometric scan followed by bisection; the
//! ground-truth AND-OR wait-graph detector decides "deadlocked". Each
//! (topology, pattern) search is independent, so they fan out over the
//! shared worker pool.
//!
//! Usage: `fig3 [--quick] [--full]`
//! `--full` = the paper's 100K-cycle horizon and 1024-node dragonfly.

use spin_experiments::{full_mode, json, json::Json, parallel_map, quick_mode};
use spin_routing::{FavorsMinimal, Routing, Ugal};
use spin_sim::{NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};
use spin_types::Cycle;

fn deadlocks_at(
    topo: &Topology,
    routing: fn() -> Box<dyn Routing>,
    pattern: Pattern,
    rate: f64,
    horizon: Cycle,
) -> bool {
    let tc = SyntheticConfig::single_flit(pattern, rate);
    let traffic = SyntheticTraffic::new(tc, topo, 7);
    let mut net = NetworkBuilder::new(topo.clone())
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: 3,
            ..SimConfig::default()
        })
        .routing_box(routing())
        .traffic(traffic)
        .build();
    // SPIN off: we are measuring when deadlocks *form*.
    net.run_until_deadlock(horizon, 100).is_some()
}

/// Finds the minimum deadlocking rate in [lo, hi], or `None` if even `hi`
/// never deadlocks within the horizon.
fn min_deadlock_rate(
    topo: &Topology,
    routing: fn() -> Box<dyn Routing>,
    pattern: Pattern,
    horizon: Cycle,
) -> Option<f64> {
    let mut hi = 0.05f64;
    while hi <= 1.0 && !deadlocks_at(topo, routing, pattern, hi, horizon) {
        hi *= 2.0;
    }
    if hi > 1.0 {
        // One last try at the maximum meaningful rate.
        if !deadlocks_at(topo, routing, pattern, 1.0, horizon) {
            return None;
        }
        hi = 1.0;
    }
    let mut lo = hi / 2.0;
    for _ in 0..5 {
        let mid = 0.5 * (lo + hi);
        if deadlocks_at(topo, routing, pattern, mid, horizon) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// A deadlock search needs a fresh routing instance per bisection probe.
type RoutingFactory = fn() -> Box<dyn Routing>;

fn mk_mesh() -> Box<dyn Routing> {
    Box::new(FavorsMinimal)
}

fn mk_dfly() -> Box<dyn Routing> {
    Box::new(Ugal::with_spin())
}

fn main() {
    let quick = quick_mode();
    let full = full_mode();
    let horizon: Cycle = if full {
        100_000
    } else if quick {
        10_000
    } else {
        25_000
    };
    let mesh = Topology::mesh(8, 8);
    let dfly = if full {
        Topology::dragonfly(4, 8, 4, 32)
    } else {
        Topology::dragonfly(2, 4, 2, 8)
    };
    let patterns = [
        Pattern::UniformRandom,
        Pattern::BitComplement,
        Pattern::Transpose,
        Pattern::Tornado,
        Pattern::Neighbor,
        Pattern::BitReverse,
        Pattern::BitRotation,
    ];
    println!("# Fig. 3: minimum injection rate that deadlocks within {horizon} cycles");
    println!("# (3 VCs/port, 1-flit packets, detection by ground-truth wait graph)\n");
    println!("{:<16} {:>16} {:>18}", "pattern", "mesh8x8", dfly.name());
    // One search per (topology, pattern); all independent.
    let searches: Vec<(&Topology, RoutingFactory, Pattern)> = patterns
        .iter()
        .flat_map(|&p| [(&mesh, mk_mesh as RoutingFactory, p), (&dfly, mk_dfly, p)])
        .collect();
    let found = parallel_map(&searches, |&(topo, mk, pattern)| {
        min_deadlock_rate(topo, mk, pattern, horizon)
    });
    let fmt = |x: Option<f64>| match x {
        Some(r) => format!("{r:.3}"),
        None => "no deadlock".to_string(),
    };
    let mut rows = Vec::new();
    for (i, pattern) in patterns.iter().enumerate() {
        let (m, d) = (found[2 * i], found[2 * i + 1]);
        println!("{:<16} {:>16} {:>18}", pattern.to_string(), fmt(m), fmt(d));
        let rate = |x: Option<f64>| x.map(Json::Num).unwrap_or(Json::Null);
        rows.push(json::obj(vec![
            ("pattern", Json::Str(pattern.to_string())),
            ("mesh8x8", rate(m)),
            (dfly.name(), rate(d)),
        ]));
    }
    let doc = json::obj(vec![
        ("experiment", "fig3".into()),
        ("horizon_cycles", Json::UInt(horizon)),
        ("min_deadlock_rate", Json::Arr(rows)),
    ]);
    match json::write_results("fig3", &doc) {
        Ok(path) => println!("\n# wrote {}", path.display()),
        Err(e) => eprintln!("\n# could not write results/fig3.json: {e}"),
    }
    println!(
        "\n# Paper's observation to check: these rates are >= 10x real-application\n\
         # loads (~0.01-0.05), and some patterns never deadlock at all."
    );
}
