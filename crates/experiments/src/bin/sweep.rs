//! Generic sweep utility: pick a topology, routing algorithm, deadlock
//! scheme and traffic pattern from the command line and print a
//! latency/throughput curve. The figure binaries build fixed
//! [`ExperimentSpec`]s over this same machinery; `sweep` assembles one from
//! the command line for ad-hoc exploration.
//!
//! Usage:
//!   `sweep <topo> <routing> <pattern> <vcs> <spin|nospin|bubble> <rates...>`
//!
//!   topo    = mesh8x8 | mesh4x4 | torus4x4 | ring8 | dfly64 | dfly1024 | random24
//!   routing = xy | westfirst | escape | favors | favors_nmin | ugal |
//!             ugal_spin | updown | static_bubble
//!   pattern = uniform | bitcomp | transpose | tornado | neighbor |
//!             bitrev | bitrot | shuffle
//!
//! Example: `sweep mesh8x8 favors transpose 1 spin 0.05 0.1 0.2 0.3`
//!
//! Results always land in `results/sweep.json`; append `--json` to also
//! echo the JSON document on stdout (for plotting scripts).

use spin_experiments::{run_and_report, spec_json, Design, ExperimentSpec, RunParams};
use spin_routing::{
    EscapeVc, FavorsMinimal, FavorsNonMinimal, ReservedVcAdaptive, Routing, Ugal, UpDown,
    WestFirst, XyRouting,
};
use spin_topology::Topology;
use spin_traffic::Pattern;

fn topology(name: &str) -> Topology {
    match name {
        "mesh8x8" => Topology::mesh(8, 8),
        "mesh4x4" => Topology::mesh(4, 4),
        "torus4x4" => Topology::torus(4, 4),
        "ring8" => Topology::ring(8),
        "dfly64" => Topology::dragonfly(2, 4, 2, 8),
        "dfly1024" => Topology::dragonfly(4, 8, 4, 32),
        "random24" => Topology::random_connected(24, 16, 1, 42).expect("valid"),
        other => panic!("unknown topology `{other}` (see --help text in the source)"),
    }
}

fn routing_factory(name: String, topo: &Topology, vcs: u8) -> impl Fn() -> Box<dyn Routing> {
    let topo = topo.clone();
    move || match name.as_str() {
        "xy" => Box::new(XyRouting),
        "westfirst" => Box::new(WestFirst),
        "escape" => Box::new(EscapeVc),
        "favors" => Box::new(FavorsMinimal),
        "favors_nmin" => Box::new(FavorsNonMinimal),
        "ugal" => Box::new(Ugal::dally_baseline()),
        "ugal_spin" => Box::new(Ugal::with_spin()),
        "updown" => Box::new(UpDown::new(&topo)),
        "static_bubble" => Box::new(ReservedVcAdaptive::new(vcs)),
        other => panic!("unknown routing `{other}`"),
    }
}

fn pattern(name: &str) -> Pattern {
    match name {
        "uniform" => Pattern::UniformRandom,
        "bitcomp" => Pattern::BitComplement,
        "transpose" => Pattern::Transpose,
        "tornado" => Pattern::Tornado,
        "neighbor" => Pattern::Neighbor,
        "bitrev" => Pattern::BitReverse,
        "bitrot" => Pattern::BitRotation,
        "shuffle" => Pattern::Shuffle,
        other => panic!("unknown pattern `{other}`"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_stdout = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let topo_name = args.first().map(String::as_str).unwrap_or("mesh8x8");
    let routing_name = args.get(1).cloned().unwrap_or_else(|| "favors".to_string());
    let pattern_name = args.get(2).map(String::as_str).unwrap_or("uniform");
    let vcs: u8 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let scheme = args.get(4).cloned().unwrap_or_else(|| "spin".to_string());
    let rates: Vec<f64> = if args.len() > 5 {
        args[5..].iter().map(|s| s.parse().expect("rate")).collect()
    } else {
        vec![0.02, 0.06, 0.10, 0.14, 0.18, 0.22, 0.30, 0.40]
    };

    let topo = topology(topo_name);
    let mut design = Design::new(
        format!("{routing_name}_{vcs}vc_{scheme}"),
        vcs,
        scheme == "spin",
        routing_factory(routing_name.clone(), &topo, vcs),
    );
    if scheme == "static_bubble" || routing_name == "static_bubble" {
        design = design.with_static_bubble();
    }
    if scheme == "bubble" {
        design = design.with_bubble_flow_control();
    }
    println!(
        "# sweep: {} / {} / {} / {}VC / {}",
        topo, routing_name, pattern_name, vcs, scheme
    );
    let spec = ExperimentSpec {
        name: "sweep".into(),
        topo,
        designs: vec![design],
        patterns: vec![pattern(pattern_name)],
        rates,
        params: RunParams {
            warmup: 2_000,
            measure: 8_000,
            ..RunParams::default()
        },
        // Ad-hoc exploration: measure every requested rate.
        stop_at_saturation: false,
    };
    let curves = run_and_report(&spec);
    if json_stdout {
        println!("{}", spec_json(&spec, &curves));
    }
}
