//! Generic sweep utility: pick a topology, routing algorithm, deadlock
//! scheme and traffic pattern from the command line and print a
//! latency/throughput curve. The figure binaries wrap fixed configurations
//! of this same machinery; `sweep` exposes it for ad-hoc exploration.
//!
//! Usage:
//!   sweep [topo] [routing] [pattern] [vcs] [spin|nospin|bubble] [rates...]
//!
//!   topo    = mesh8x8 | mesh4x4 | torus4x4 | ring8 | dfly64 | dfly1024 | random24
//!   routing = xy | westfirst | escape | favors | favors_nmin | ugal |
//!             ugal_spin | updown | static_bubble
//!   pattern = uniform | bitcomp | transpose | tornado | neighbor |
//!             bitrev | bitrot | shuffle
//!
//! Example: `sweep mesh8x8 favors transpose 1 spin 0.05 0.1 0.2 0.3`
//!
//! Append `--json` to also emit the measured points as a JSON array on the
//! last line (for plotting scripts).

use spin_core::SpinConfig;
use spin_routing::{
    EscapeVc, FavorsMinimal, FavorsNonMinimal, ReservedVcAdaptive, Routing, Ugal, UpDown,
    WestFirst, XyRouting,
};
use spin_sim::{NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};

fn topology(name: &str) -> Topology {
    match name {
        "mesh8x8" => Topology::mesh(8, 8),
        "mesh4x4" => Topology::mesh(4, 4),
        "torus4x4" => Topology::torus(4, 4),
        "ring8" => Topology::ring(8),
        "dfly64" => Topology::dragonfly(2, 4, 2, 8),
        "dfly1024" => Topology::dragonfly(4, 8, 4, 32),
        "random24" => Topology::random_connected(24, 16, 1, 42).expect("valid"),
        other => panic!("unknown topology `{other}` (see --help text in the source)"),
    }
}

fn routing(name: &str, topo: &Topology, vcs: u8) -> Box<dyn Routing> {
    match name {
        "xy" => Box::new(XyRouting),
        "westfirst" => Box::new(WestFirst),
        "escape" => Box::new(EscapeVc),
        "favors" => Box::new(FavorsMinimal),
        "favors_nmin" => Box::new(FavorsNonMinimal),
        "ugal" => Box::new(Ugal::dally_baseline()),
        "ugal_spin" => Box::new(Ugal::with_spin()),
        "updown" => Box::new(UpDown::new(topo)),
        "static_bubble" => Box::new(ReservedVcAdaptive::new(vcs)),
        other => panic!("unknown routing `{other}`"),
    }
}

fn pattern(name: &str) -> Pattern {
    match name {
        "uniform" => Pattern::UniformRandom,
        "bitcomp" => Pattern::BitComplement,
        "transpose" => Pattern::Transpose,
        "tornado" => Pattern::Tornado,
        "neighbor" => Pattern::Neighbor,
        "bitrev" => Pattern::BitReverse,
        "bitrot" => Pattern::BitRotation,
        "shuffle" => Pattern::Shuffle,
        other => panic!("unknown pattern `{other}`"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let topo_name = args.first().map(String::as_str).unwrap_or("mesh8x8");
    let routing_name = args.get(1).map(String::as_str).unwrap_or("favors");
    let pattern_name = args.get(2).map(String::as_str).unwrap_or("uniform");
    let vcs: u8 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let scheme = args.get(4).map(String::as_str).unwrap_or("spin");
    let rates: Vec<f64> = if args.len() > 5 {
        args[5..].iter().map(|s| s.parse().expect("rate")).collect()
    } else {
        vec![0.02, 0.06, 0.10, 0.14, 0.18, 0.22, 0.30, 0.40]
    };

    let topo = topology(topo_name);
    println!(
        "# sweep: {} / {} / {} / {}VC / {}",
        topo, routing_name, pattern_name, vcs, scheme
    );
    println!(
        "{:>8} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "offered", "latency", "throughput", "spins", "probes", "kills"
    );
    let mut measured: Vec<serde_json::Value> = Vec::new();
    for &rate in &rates {
        let tc = SyntheticConfig::new(pattern(pattern_name), rate);
        let traffic = SyntheticTraffic::new(tc, &topo, 1);
        let mut b = NetworkBuilder::new(topo.clone())
            .config(SimConfig {
                vnets: 3,
                vcs_per_vnet: vcs,
                static_bubble: scheme == "static_bubble" || routing_name == "static_bubble",
                bubble_flow_control: scheme == "bubble",
                ..SimConfig::default()
            })
            .routing_box(routing(routing_name, &topo, vcs))
            .traffic(traffic);
        if scheme == "spin" {
            b = b.spin(SpinConfig::default());
        }
        let mut net = b.build();
        net.run(2_000);
        net.reset_measurement();
        net.run(8_000);
        let s = net.stats();
        println!(
            "{:>8.3} {:>10.1} {:>12.3} {:>8} {:>8} {:>8}",
            rate,
            s.avg_total_latency(),
            s.throughput(net.topology().num_nodes()),
            s.spins,
            s.probes_sent,
            s.kills_sent
        );
        measured.push(serde_json::json!({
            "offered": rate,
            "latency": s.avg_total_latency(),
            "throughput": s.throughput(net.topology().num_nodes()),
            "spins": s.spins,
            "probes": s.probes_sent,
            "kills": s.kills_sent,
        }));
    }
    if json {
        println!("{}", serde_json::Value::Array(measured));
    }
}
