//! Runtime fault-injection campaign: kills links mid-run on an 8x8 mesh
//! and a 64-node dragonfly, measures degraded-mode delivery, and *gates*
//! on exact packet conservation — every created packet must be delivered
//! or explicitly dropped-by-fault, and every network must drain. Any
//! violation exits nonzero, which is what the CI smoke job checks.
//!
//! Usage: `fault_campaign [--quick]`; writes `results/fault_campaign.json`.

use spin_experiments::fault::{campaign_json, run_campaign_with_threads, FaultPoint};
use spin_experiments::{json, num_threads, quick_mode};

fn main() {
    let quick = quick_mode();
    let threads = num_threads();
    let t0 = std::time::Instant::now();
    let points = run_campaign_with_threads(quick, threads);
    let elapsed = t0.elapsed().as_secs_f64();

    println!(
        "## fault campaign ({})",
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:>8} {:>16} {:>7} {:>5} {:>7} {:>9} {:>9} {:>8} {:>9} {:>10} {:>9} {:>7}",
        "topo",
        "routing",
        "faults",
        "seed",
        "killed",
        "rejected",
        "created",
        "dropped",
        "rerouted",
        "delivered",
        "latency",
        "spins"
    );
    let mut failures: Vec<&FaultPoint> = Vec::new();
    for p in &points {
        println!(
            "{:>8} {:>16} {:>7} {:>5} {:>7} {:>9} {:>9} {:>8} {:>9} {:>9.4} {:>9.1} {:>7}{}",
            p.topo,
            p.routing,
            p.faults_scheduled,
            p.seed,
            p.links_killed,
            p.kills_rejected,
            p.packets_created,
            p.packets_dropped,
            p.packets_rerouted,
            p.delivered_fraction(),
            p.avg_latency,
            p.spins,
            if p.fully_accounted() { "" } else { "  FAIL" }
        );
        if !p.fully_accounted() {
            failures.push(p);
        }
    }
    println!(
        "# measured {} points on {threads} thread(s) in {elapsed:.2}s",
        points.len()
    );

    match json::write_results("fault_campaign", &campaign_json(&points, quick)) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("# could not write results/fault_campaign.json: {e}");
            std::process::exit(1);
        }
    }

    if !failures.is_empty() {
        for p in &failures {
            eprintln!(
                "FAIL: {}/{} faults={} seed={}: {} (created {}, delivered {}, dropped {})",
                p.topo,
                p.routing,
                p.faults_scheduled,
                p.seed,
                if p.drained {
                    "packets unaccounted for"
                } else {
                    "network failed to drain (wedge)"
                },
                p.packets_created,
                p.packets_delivered,
                p.packets_dropped,
            );
        }
        std::process::exit(1);
    }
    println!("# all points conserved packets and drained");
}
