//! Fig. 6 — dragonfly: latency vs injection rate.
//!
//! 3-VC comparison: UGAL with Dally VC ordering vs UGAL with free VC use
//! under SPIN. 1-VC comparison: minimal adaptive + SPIN vs FAvORS-NMin.
//!
//! Usage: `fig6 [--quick] [--full]`
//! Default runs the paper's 1024-node dragonfly (p=4, a=8, h=4, g=32) with
//! shortened windows; `--quick` switches to a 72-node dragonfly;
//! `--full` uses paper-length windows.

use spin_experiments::{full_mode, quick_mode, run_and_report, Design, ExperimentSpec, RunParams};
use spin_routing::{FavorsMinimal, FavorsNonMinimal, Ugal};
use spin_topology::Topology;
use spin_traffic::Pattern;

fn designs() -> Vec<Design> {
    vec![
        Design::new("ugal_3vc_dally", 3, false, || {
            Box::new(Ugal::dally_baseline())
        }),
        Design::new("ugal_3vc_spin", 3, true, || Box::new(Ugal::with_spin())),
        Design::new("minimal_1vc_spin", 1, true, || Box::new(FavorsMinimal)),
        Design::new("favors_nmin_1vc", 1, true, || Box::new(FavorsNonMinimal)),
    ]
}

fn main() {
    let quick = quick_mode();
    let full = full_mode();
    let topo = if quick {
        Topology::dragonfly(2, 4, 2, 8) // 64 nodes, power-of-two for bit patterns
    } else {
        Topology::dragonfly(4, 8, 4, 32) // the paper's 1024-node network
    };
    let params = if full {
        RunParams {
            warmup: 5_000,
            measure: 20_000,
            latency_cap: 800.0,
            ..RunParams::default()
        }
    } else if quick {
        RunParams {
            warmup: 500,
            measure: 2_000,
            ..RunParams::default()
        }
    } else {
        RunParams {
            warmup: 1_000,
            measure: 4_000,
            ..RunParams::default()
        }
    };
    let rates: Vec<f64> = if quick {
        vec![0.02, 0.10, 0.20, 0.30, 0.40]
    } else {
        vec![
            0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
        ]
    };
    println!(
        "# Fig. 6: dragonfly ({}) latency vs injection rate\n",
        topo.name()
    );
    let spec = ExperimentSpec {
        name: "fig6".into(),
        topo,
        designs: designs(),
        patterns: vec![
            Pattern::UniformRandom,
            Pattern::BitComplement,
            Pattern::Transpose,
            Pattern::Tornado,
            Pattern::Neighbor,
        ],
        rates,
        params,
        stop_at_saturation: true,
    };
    let curves = run_and_report(&spec);
    println!("# Saturation throughput summary (flits/node/cycle)");
    for c in &curves {
        println!(
            "{:<45} {:.3}",
            format!("{}/{}", c.pattern, c.design),
            c.saturation
        );
    }
}
