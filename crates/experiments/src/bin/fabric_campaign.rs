//! Online fabric-manager campaign: rolls link kills and heals through
//! seven `(topology, routing)` configurations, with every reconfiguration
//! passing the incremental CDG re-certification admission check before it
//! goes live (see `docs/FABRIC.md`). *Gates* on the campaign invariant:
//! every point must drain (unless its intact fabric was already certified
//! `stranded` — the one statically predicted wedge), account for every
//! packet, and record zero static-model violations — i.e. the live
//! wait-graph never observed a deadlock the admitted CDG union called
//! impossible. Any violation exits nonzero, which is what the CI smoke
//! job checks.
//!
//! Usage: `fabric_campaign [--quick]`; writes `results/fabric_campaign.json`.

use spin_experiments::fabric::{
    fabric_campaign_json, run_fabric_campaign_with_threads, FabricPoint,
};
use spin_experiments::{json, num_threads, quick_mode};

fn main() {
    let quick = quick_mode();
    let threads = num_threads();
    let t0 = std::time::Instant::now();
    let points = run_fabric_campaign_with_threads(quick, threads);
    let elapsed = t0.elapsed().as_secs_f64();

    println!(
        "## fabric campaign ({})",
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:>10} {:>20} {:>5} {:>7} {:>22} {:>9} {:>12} {:>7} {:>9} {:>8} {:>6}",
        "topo",
        "routing",
        "seed",
        "events",
        "initial",
        "admitted",
        "quarantined",
        "killed",
        "rewalked",
        "dropped",
        "spins"
    );
    let mut failures: Vec<&FabricPoint> = Vec::new();
    let mut total_events = 0usize;
    for p in &points {
        total_events += p.events.len();
        println!(
            "{:>10} {:>20} {:>5} {:>7} {:>22} {:>9} {:>12} {:>7} {:>9} {:>8} {:>6}{}",
            p.topo,
            p.routing,
            p.seed,
            p.events_scheduled,
            p.initial_verdict.name(),
            p.admitted,
            p.quarantined,
            p.links_killed,
            p.targets_rewalked,
            p.packets_dropped,
            p.spins,
            if p.passes() { "" } else { "  FAIL" }
        );
        if !p.passes() {
            failures.push(p);
        }
    }
    println!(
        "# {} points, {} scheduled kill/heal events, {} admission decisions on {threads} thread(s) in {elapsed:.2}s",
        points.len(),
        points.iter().map(|p| p.events_scheduled).sum::<usize>(),
        total_events
    );

    match json::write_results("fabric_campaign", &fabric_campaign_json(&points, quick)) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("# could not write results/fabric_campaign.json: {e}");
            std::process::exit(1);
        }
    }

    if !failures.is_empty() {
        for p in &failures {
            eprintln!(
                "FAIL: {}/{} seed={}: drained={} created={} delivered={} dropped={} violations={}",
                p.topo,
                p.routing,
                p.seed,
                p.drained,
                p.packets_created,
                p.packets_delivered,
                p.packets_dropped,
                p.model_violations.len(),
            );
            for v in &p.model_violations {
                eprintln!("  uncertified deadlock: {v}");
            }
        }
        std::process::exit(1);
    }
    println!("# all points accounted for every packet and observed no uncertified deadlock");
}
