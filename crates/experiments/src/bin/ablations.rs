//! Ablation study of the SPIN implementation's design choices (quality
//! metrics; the timing counterpart lives in `crates/bench/benches/
//! ablations.rs`). Each row runs the same past-saturation 1-VC mesh
//! workload with one knob toggled and reports accepted throughput, spins,
//! kills and probe-drop behaviour.
//!
//! Usage: `ablations [--quick]`

use spin_core::SpinConfig;
use spin_experiments::quick_mode;
use spin_routing::FavorsMinimal;
use spin_sim::{NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, SyntheticConfig, SyntheticTraffic};
use spin_types::Cycle;

fn run(name: &str, spin: SpinConfig, cycles: Cycle) {
    let topo = Topology::mesh(8, 8);
    let tc = SyntheticConfig::new(Pattern::UniformRandom, 0.25);
    let traffic = SyntheticTraffic::new(tc, &topo, 7);
    let mut net = NetworkBuilder::new(topo)
        .config(SimConfig { vnets: 3, vcs_per_vnet: 1, ..SimConfig::default() })
        .routing(FavorsMinimal)
        .traffic(traffic)
        .spin(spin)
        .build();
    net.run(cycles);
    let s = net.stats();
    let a = net.spin_stats();
    println!(
        "{name:<28} {:>7.3} {:>7} {:>7} {:>7} {:>9} {:>9} {:>8}",
        s.throughput(64),
        a.loops_confirmed,
        a.spins_initiated,
        a.kills_sent,
        a.drop_priority,
        a.drop_dup,
        a.probes_sent
    );
}

fn main() {
    let cycles: Cycle = if quick_mode() { 5_000 } else { 30_000 };
    println!(
        "# SPIN ablations: 8x8 mesh, FAvORS-Min, 1 VC, uniform 0.25 flits/node/cycle, {cycles} cycles\n"
    );
    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "config", "thr", "conf", "spins", "kills", "drop_prio", "drop_dup", "probes"
    );
    run("paper_defaults", SpinConfig::default(), cycles);
    run(
        "no_probe_forking",
        SpinConfig { probe_forking: false, ..SpinConfig::default() },
        cycles,
    );
    run(
        "no_priority_drop",
        SpinConfig { priority_probe_drop: false, ..SpinConfig::default() },
        cycles,
    );
    run(
        "no_probe_move_opt",
        SpinConfig { probe_move_opt: false, ..SpinConfig::default() },
        cycles,
    );
    run(
        "spin_offset_1x",
        SpinConfig { spin_offset: 1, ..SpinConfig::default() },
        cycles,
    );
    run("t_dd_32", SpinConfig { t_dd: 32, ..SpinConfig::default() }, cycles);
    run("t_dd_512", SpinConfig { t_dd: 512, ..SpinConfig::default() }, cycles);
    println!(
        "\n# Reading guide: `conf` = confirmed loops (recoveries), `kills` =\n\
         # cancelled recoveries. Lower t_dd detects faster but probes more;\n\
         # disabling the priority drop multiplies confirmations but also\n\
         # collisions (kills); spin_offset 1x shrinks the kill window."
    );
}
