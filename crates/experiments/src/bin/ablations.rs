//! Ablation study of the SPIN implementation's design choices (quality
//! metrics; the timing counterpart lives in `crates/bench/benches/
//! ablations.rs`). Each row runs the same past-saturation 1-VC mesh
//! workload with one knob toggled and reports accepted throughput, spins,
//! kills and probe-drop behaviour.
//!
//! Usage: `ablations [--quick]`

use spin_core::SpinConfig;
use spin_experiments::{json, quick_mode, run_spec, spec_json, Design, ExperimentSpec, RunParams};
use spin_routing::FavorsMinimal;
use spin_topology::Topology;
use spin_traffic::Pattern;
use spin_types::Cycle;

fn ablation(name: &str, cfg: SpinConfig) -> Design {
    Design::new(name, 1, true, || Box::new(FavorsMinimal)).with_spin_cfg(cfg)
}

fn main() {
    let cycles: Cycle = if quick_mode() { 5_000 } else { 30_000 };
    let spec = ExperimentSpec {
        name: "ablations".into(),
        topo: Topology::mesh(8, 8),
        designs: vec![
            ablation("paper_defaults", SpinConfig::default()),
            ablation(
                "no_probe_forking",
                SpinConfig {
                    probe_forking: false,
                    ..SpinConfig::default()
                },
            ),
            ablation(
                "no_priority_drop",
                SpinConfig {
                    priority_probe_drop: false,
                    ..SpinConfig::default()
                },
            ),
            ablation(
                "no_probe_move_opt",
                SpinConfig {
                    probe_move_opt: false,
                    ..SpinConfig::default()
                },
            ),
            ablation(
                "spin_offset_1x",
                SpinConfig {
                    spin_offset: 1,
                    ..SpinConfig::default()
                },
            ),
            ablation(
                "t_dd_32",
                SpinConfig {
                    t_dd: 32,
                    ..SpinConfig::default()
                },
            ),
            ablation(
                "t_dd_512",
                SpinConfig {
                    t_dd: 512,
                    ..SpinConfig::default()
                },
            ),
        ],
        patterns: vec![Pattern::UniformRandom],
        // A single past-saturation operating point: recovery machinery
        // fully exercised, so the curve must not be cut at saturation.
        rates: vec![0.25],
        params: RunParams {
            warmup: cycles / 5,
            measure: cycles,
            seed: 7,
            ..RunParams::default()
        },
        stop_at_saturation: false,
    };
    println!(
        "# SPIN ablations: 8x8 mesh, FAvORS-Min, 1 VC, uniform 0.25 flits/node/cycle, {cycles} cycles\n"
    );
    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "config", "thr", "conf", "spins", "kills", "drop_prio", "drop_dup", "probes"
    );
    let curves = run_spec(&spec);
    for c in &curves {
        let p = &c.points[0];
        println!(
            "{:<28} {:>7.3} {:>7} {:>7} {:>7} {:>9} {:>9} {:>8}",
            c.design,
            p.throughput,
            p.loops_confirmed,
            p.spins,
            p.kills,
            p.drop_priority,
            p.drop_dup,
            p.probes
        );
    }
    match json::write_results(&spec.name, &spec_json(&spec, &curves)) {
        Ok(path) => println!("\n# wrote {}", path.display()),
        Err(e) => eprintln!("\n# could not write results/{}.json: {e}", spec.name),
    }
    println!(
        "\n# Reading guide: `conf` = confirmed loops (recoveries), `kills` =\n\
         # cancelled recoveries. Lower t_dd detects faster but probes more;\n\
         # disabling the priority drop multiplies confirmations but also\n\
         # collisions (kills); spin_offset 1x shrinks the kill window."
    );
}
