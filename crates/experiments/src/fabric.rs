//! The online fabric-manager campaign: rolling link kill/heal under load
//! with every reconfiguration passing the incremental CDG re-certification
//! admission check (`docs/FABRIC.md`).
//!
//! Each campaign point installs a [`FabricManager`] on one network and
//! drives a seed-driven rolling kill/heal [`FaultPlan`] through warmup,
//! injection and drain. Admitted reroutes go live between cycles;
//! rejected ones quarantine the link with the previous tables retained.
//! A point passes when the network drains (or was statically predicted
//! not to — see [`FabricPoint::passes`]), packets are accounted for, and
//! the live wait-graph never observed a deadlock the admitted CDG union
//! called impossible (zero static-model violations — the "no uncertified
//! deadlock" gate the `fabric_campaign` binary enforces with a nonzero
//! exit).
//!
//! The campaign spans the admission spectrum: deadlock-free up*/down*
//! (every reroute admitted), SPIN-certified recovery on a ring (admitted
//! with certified bounds), cap-truncated ring enumeration on mesh and
//! dragonfly (quarantined — never silently admitted), the ghops-only UGAL
//! Dally discipline whose stranded walk states keep every kill
//! quarantined and whose live run wedges exactly as predicted, and the
//! VC-free full-mesh deroute scheme (admitted, no SPIN at all).

use crate::json::{arr, obj, Json};
use crate::parallel_map_with_threads;
use spin_core::SpinConfig;
use spin_routing::{FavorsMinimal, FullMeshDeroute, Routing, Ugal, UpDown};
use spin_sim::{FabricEventReport, FaultPlan, Network, NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_trace::FabricVerdict;
use spin_traffic::{Pattern, StopAfter, SyntheticConfig, SyntheticTraffic};
use spin_verify::{FabricManager, DEFAULT_RING_CAP};

/// Time structure of one campaign point (same shape as the fault
/// campaign: warmup, kill/heal-bearing injection window, drain gate).
#[derive(Debug, Clone, Copy)]
pub struct FabricRunParams {
    /// Warmup cycles before the measurement window.
    pub warmup: u64,
    /// Injection cycles; all kills and heals land inside this window.
    pub inject: u64,
    /// Drain budget; failing to empty within it counts as wedged.
    pub drain_cap: u64,
    /// Step-kernel shard count (`None` = builder default). Results are
    /// bit-identical at any value; the oracle test pins that.
    pub shards: Option<usize>,
}

impl FabricRunParams {
    /// Campaign scale: paper-shaped by default, smoke-sized with `quick`.
    pub fn new(quick: bool) -> Self {
        if quick {
            FabricRunParams {
                warmup: 300,
                inject: 1_200,
                drain_cap: 50_000,
                shards: None,
            }
        } else {
            FabricRunParams {
                warmup: 1_000,
                inject: 4_000,
                drain_cap: 200_000,
                shards: None,
            }
        }
    }
}

/// One campaign case: a `(topology, routing, VCs)` config with its
/// expected admission behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricCase {
    /// 8x8 mesh, up*/down*: deadlock-free, every reroute admitted (and the
    /// manager exercises the full-re-derivation fallback).
    MeshUpDown,
    /// 8x8 mesh, FAvORS-Min + SPIN: ring enumeration truncates at the cap,
    /// so every reroute is quarantined even though SPIN could recover.
    MeshFavorsMin,
    /// 72-node dragonfly, UGAL free-VC + SPIN: truncated, quarantined.
    DflyUgalSpin,
    /// 72-node dragonfly, up*/down*: deadlock-free, admitted.
    DflyUpDown,
    /// 72-node dragonfly, UGAL with the ghops-only Dally discipline. The
    /// manager's verdict on the *intact* fabric is already `stranded`:
    /// hop-minimal tie paths can chain more global links than the 3-VC
    /// ghops ladder covers, so some reachable positions have no grantable
    /// VC at all. Every kill stays quarantined, and the live run is
    /// expected to wedge — exactly what the static verdict predicts
    /// (recovery cannot help; a stranded packet is not in a cycle).
    DflyUgalDally,
    /// 64-router full mesh, VC-free ascending deroutes: deadlock-free with
    /// no SPIN at all; kills are admitted and fault-derouted around.
    FullMesh64,
    /// 8-ring, FAvORS-Min + SPIN: 2 rings, untruncated, certified spin
    /// bounds — reroutes are admitted as `certified_recovery`.
    Ring8FavorsMin,
}

/// All campaign cases in report order.
pub const FABRIC_CASES: [FabricCase; 7] = [
    FabricCase::MeshUpDown,
    FabricCase::MeshFavorsMin,
    FabricCase::DflyUgalSpin,
    FabricCase::DflyUpDown,
    FabricCase::DflyUgalDally,
    FabricCase::FullMesh64,
    FabricCase::Ring8FavorsMin,
];

impl FabricCase {
    /// `(topology, routing)` labels for tables and JSON.
    pub fn label(self) -> (&'static str, &'static str) {
        match self {
            FabricCase::MeshUpDown => ("mesh8x8", "up_down_1vc"),
            FabricCase::MeshFavorsMin => ("mesh8x8", "favors_min_1vc_spin"),
            FabricCase::DflyUgalSpin => ("dfly72", "ugal_1vc_spin"),
            FabricCase::DflyUpDown => ("dfly72", "up_down_1vc"),
            FabricCase::DflyUgalDally => ("dfly72", "ugal_dally_3vc"),
            FabricCase::FullMesh64 => ("fullmesh64", "fm_deroute_1vc"),
            FabricCase::Ring8FavorsMin => ("ring8", "favors_min_1vc_spin"),
        }
    }

    fn topology(self) -> Topology {
        match self {
            FabricCase::MeshUpDown | FabricCase::MeshFavorsMin => Topology::mesh(8, 8),
            FabricCase::DflyUgalSpin | FabricCase::DflyUpDown | FabricCase::DflyUgalDally => {
                Topology::dragonfly(2, 4, 2, 9)
            }
            FabricCase::FullMesh64 => {
                Topology::full_mesh(64, 1).expect("valid full-mesh parameters")
            }
            FabricCase::Ring8FavorsMin => Topology::ring(8),
        }
    }

    fn routing(self) -> Box<dyn Routing> {
        match self {
            FabricCase::MeshUpDown | FabricCase::DflyUpDown => {
                Box::new(UpDown::new(&self.topology()))
            }
            FabricCase::MeshFavorsMin | FabricCase::Ring8FavorsMin => Box::new(FavorsMinimal),
            FabricCase::DflyUgalSpin => Box::new(Ugal::with_spin()),
            FabricCase::DflyUgalDally => Box::new(Ugal::dally_baseline()),
            FabricCase::FullMesh64 => Box::new(FullMeshDeroute),
        }
    }

    fn vcs(self) -> u8 {
        match self {
            FabricCase::DflyUgalDally => 3,
            _ => 1,
        }
    }

    /// Whether the simulated network runs SPIN — which doubles as what the
    /// manager is told about recovery certification. The Dally-discipline
    /// case runs without SPIN: it models the pure avoidance baseline, and
    /// its live failure mode is stranding (no grantable VC), which no
    /// recovery scheme can resolve anyway.
    fn spin(self) -> bool {
        matches!(
            self,
            FabricCase::MeshFavorsMin | FabricCase::DflyUgalSpin | FabricCase::Ring8FavorsMin
        )
    }

    fn rate(self) -> f64 {
        // Well below every design's saturation knee: the campaign measures
        // admission behaviour and degraded-mode delivery, and the drain
        // gate needs fault-free headroom.
        match self {
            FabricCase::FullMesh64 => 0.05,
            FabricCase::Ring8FavorsMin => 0.06,
            _ => 0.08,
        }
    }

    /// Kills scheduled per seed (each paired with a heal).
    fn kills(self, quick: bool) -> usize {
        let full = match self {
            // A second concurrent ring kill would disconnect the line and
            // be rejected before admission; three still exercises that
            // runtime-rejection path once heals interleave.
            FabricCase::Ring8FavorsMin => 3,
            _ => 8,
        };
        if quick {
            full.min(2)
        } else {
            full
        }
    }
}

/// One measured campaign point.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricPoint {
    /// Topology label.
    pub topo: String,
    /// Routing label.
    pub routing: String,
    /// Seed of traffic and fault schedule.
    pub seed: u64,
    /// Kill/heal events scheduled by the plan.
    pub events_scheduled: usize,
    /// Verdict on the intact starting configuration.
    pub initial_verdict: FabricVerdict,
    /// Reroutes the manager admitted.
    pub admitted: u64,
    /// Reroutes the manager quarantined.
    pub quarantined: u64,
    /// Kills rejected before admission (they would disconnect the fabric).
    pub kills_rejected: u64,
    /// Links actually taken down.
    pub links_killed: u64,
    /// Links actually restored.
    pub links_healed: u64,
    /// Destinations re-walked across all admission events (the
    /// deterministic reconfiguration-downtime total).
    pub targets_rewalked: u64,
    /// Per-event admission log from the manager.
    pub events: Vec<FabricEventReport>,
    /// Packets created / delivered / dropped-by-fault.
    pub packets_created: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Packets destroyed because they were astride an admitted kill.
    pub packets_dropped: u64,
    /// SPIN recoveries over the whole run.
    pub spins: u64,
    /// The network emptied within the drain budget.
    pub drained: bool,
    /// Live wait-graph deadlocks the admitted CDG union could not explain
    /// (the campaign gate: must be zero).
    pub model_violations: Vec<String>,
}

impl FabricPoint {
    /// The campaign invariant: packets accounted for, no uncertified
    /// deadlock, and per-event downtime bounded by one full re-derivation.
    /// A point must drain — except when the manager's verdict on the
    /// *intact* fabric was already [`FabricVerdict::Stranded`]: such a
    /// config has reachable positions with no live route, so wedging is
    /// the statically predicted outcome (packets may be stuck in place,
    /// but never lost).
    pub fn passes(&self) -> bool {
        let accounted = if self.drained {
            self.packets_created == self.packets_delivered + self.packets_dropped
        } else {
            self.initial_verdict == FabricVerdict::Stranded
                && self.packets_delivered + self.packets_dropped <= self.packets_created
        };
        accounted
            && self.model_violations.is_empty()
            && self
                .events
                .iter()
                .all(|e| e.targets_rewalked <= e.total_targets)
    }
}

/// Builds the network of one campaign point: a fabric manager mirroring
/// the same `(topology, routing, VCs)` config, a rolling kill/heal plan
/// inside the injection window, and traffic silenced at its end. Returns
/// the network plus the manager's intact-fabric verdict and the number of
/// scheduled kill/heal events.
pub fn build_fabric_net(
    case: FabricCase,
    seed: u64,
    params: FabricRunParams,
) -> (Network, FabricVerdict, usize) {
    let topo = case.topology();
    let stop_at = params.warmup + params.inject;
    // Short injection windows (smoke tests) get the quick-sized schedule.
    let kills = case.kills(params.inject < 2_000);
    // Kills spread over the first five-eighths of the window, each healed
    // a quarter-window later: the fabric rolls through degraded states and
    // back while traffic still runs.
    let lo = params.warmup + params.inject / 8;
    let hi = params.warmup + (params.inject / 8) * 5;
    let plan = FaultPlan::random_kills(
        &topo,
        kills,
        (lo, hi),
        Some(params.inject / 4),
        seed ^ 0xfab,
    );
    let scheduled = plan.len();
    let (topo_label, routing_label) = case.label();
    let manager = FabricManager::new(
        format!("{topo_label}/{routing_label}"),
        topo.clone(),
        case.routing(),
        case.vcs(),
        case.spin(),
        DEFAULT_RING_CAP,
    );
    let initial_verdict = manager.initial_verdict();
    let traffic = StopAfter::new(
        SyntheticTraffic::new(
            SyntheticConfig::new(Pattern::UniformRandom, case.rate()),
            &topo,
            seed,
        ),
        stop_at,
    );
    let mut builder = NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: case.vcs(),
            seed,
            ..SimConfig::default()
        })
        .routing_box(case.routing())
        .traffic(traffic)
        .faults(plan)
        .fabric(Box::new(manager));
    if case.spin() {
        builder = builder.spin(SpinConfig::default());
    }
    if let Some(shards) = params.shards {
        builder = builder.shards(shards);
    }
    (builder.build(), initial_verdict, scheduled)
}

/// Runs one campaign point to completion and measures it.
pub fn run_fabric_point(case: FabricCase, seed: u64, params: FabricRunParams) -> FabricPoint {
    let (mut net, initial_verdict, scheduled) = build_fabric_net(case, seed, params);
    net.run(params.warmup);
    net.reset_measurement();
    net.run(params.inject);
    let drained = net.drain(params.drain_cap);
    let s = net.stats();
    let events: Vec<FabricEventReport> = net.fabric_events().to_vec();
    let (topo, routing) = case.label();
    FabricPoint {
        topo: topo.to_string(),
        routing: routing.to_string(),
        seed,
        events_scheduled: scheduled,
        initial_verdict,
        admitted: s.reroutes_admitted,
        quarantined: s.reroutes_quarantined,
        kills_rejected: s.link_kills_rejected,
        links_killed: s.links_killed,
        links_healed: s.links_healed,
        targets_rewalked: s.fabric_targets_rewalked,
        events,
        packets_created: s.packets_created,
        packets_delivered: s.packets_delivered,
        packets_dropped: s.packets_dropped_by_fault,
        spins: s.spins,
        drained,
        model_violations: net.static_model_violations().to_vec(),
    }
}

/// The full campaign grid: every case x seeds, fanned out over `threads`
/// workers; output order and content are independent of the thread count.
pub fn run_fabric_campaign_with_threads(quick: bool, threads: usize) -> Vec<FabricPoint> {
    let params = FabricRunParams::new(quick);
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2] };
    let grid: Vec<(FabricCase, u64)> = FABRIC_CASES
        .into_iter()
        .flat_map(|case| seeds.iter().map(move |&s| (case, s)))
        .collect();
    parallel_map_with_threads(&grid, threads, |&(case, s)| {
        run_fabric_point(case, s, params)
    })
}

fn event_json(e: &FabricEventReport) -> Json {
    obj(vec![
        ("at", Json::UInt(e.at)),
        ("action", e.action.name().into()),
        ("router", Json::UInt(e.router.0 as u64)),
        ("port", Json::UInt(e.port.0 as u64)),
        ("admitted", Json::Bool(e.admitted)),
        ("verdict", e.verdict.name().into()),
        ("targets_rewalked", Json::UInt(e.targets_rewalked)),
        ("total_targets", Json::UInt(e.total_targets)),
        ("rings", Json::UInt(e.rings)),
        ("max_spin_bound", Json::UInt(e.max_spin_bound)),
        ("analysis_ns", Json::UInt(e.analysis_ns)),
    ])
}

/// Serialises campaign points as the `results/fabric_campaign.json`
/// document. Everything except the per-event wall-clock `analysis_ns` is
/// deterministic for a given `(quick, seeds)` choice.
pub fn fabric_campaign_json(points: &[FabricPoint], quick: bool) -> Json {
    let rows = points
        .iter()
        .map(|p| {
            obj(vec![
                ("topo", p.topo.as_str().into()),
                ("routing", p.routing.as_str().into()),
                ("seed", Json::UInt(p.seed)),
                ("initial_verdict", p.initial_verdict.name().into()),
                ("events_scheduled", Json::UInt(p.events_scheduled as u64)),
                ("reroutes_admitted", Json::UInt(p.admitted)),
                ("reroutes_quarantined", Json::UInt(p.quarantined)),
                ("kills_rejected", Json::UInt(p.kills_rejected)),
                ("links_killed", Json::UInt(p.links_killed)),
                ("links_healed", Json::UInt(p.links_healed)),
                ("targets_rewalked", Json::UInt(p.targets_rewalked)),
                ("packets_created", Json::UInt(p.packets_created)),
                ("packets_delivered", Json::UInt(p.packets_delivered)),
                ("packets_dropped_by_fault", Json::UInt(p.packets_dropped)),
                ("spins", Json::UInt(p.spins)),
                ("drained", Json::Bool(p.drained)),
                (
                    "model_violations",
                    Json::UInt(p.model_violations.len() as u64),
                ),
                ("passes", Json::Bool(p.passes())),
                ("events", arr(p.events.iter().map(event_json).collect())),
            ])
        })
        .collect();
    obj(vec![
        ("name", "fabric_campaign".into()),
        ("quick", Json::Bool(quick)),
        ("points", arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rolling-failure oracle: quarantine and admission behave as the
    /// static analysis promises, no uncertified deadlock is ever observed,
    /// per-event downtime is bounded, and the whole campaign point is
    /// bit-identical across step-kernel shard counts.
    #[test]
    fn rolling_failures_admit_certify_and_stay_deterministic() {
        let params = FabricRunParams {
            warmup: 200,
            inject: 800,
            drain_cap: 50_000,
            shards: Some(1),
        };
        for case in [
            FabricCase::MeshUpDown,
            FabricCase::MeshFavorsMin,
            FabricCase::Ring8FavorsMin,
        ] {
            let p1 = run_fabric_point(case, 1, params);
            assert!(
                p1.passes(),
                "{}/{} failed: drained={} violations={:?}",
                p1.topo,
                p1.routing,
                p1.drained,
                p1.model_violations
            );
            match case {
                // Deadlock-free: every submitted event admitted.
                FabricCase::MeshUpDown => {
                    assert_eq!(p1.quarantined, 0);
                    assert!(p1.events.iter().all(|e| e.admitted));
                }
                // Truncated enumeration: nothing is ever admitted, the
                // fabric stays intact, so no heal is even submitted.
                FabricCase::MeshFavorsMin => {
                    assert_eq!(p1.admitted, 0);
                    assert!(p1.quarantined > 0);
                    assert_eq!(p1.links_killed, 0);
                    assert!(p1
                        .events
                        .iter()
                        .all(|e| e.verdict == FabricVerdict::UncertifiedTruncated));
                }
                // Certified recovery: kills and heals go live with a
                // certified per-ring spin bound on the healed config.
                FabricCase::Ring8FavorsMin => {
                    assert!(p1.admitted > 0);
                    assert!(p1.links_killed > 0);
                    assert!(p1
                        .events
                        .iter()
                        .filter(|e| e.verdict == FabricVerdict::CertifiedRecovery)
                        .all(|e| e.max_spin_bound > 0));
                }
                _ => unreachable!(),
            }
            let p4 = run_fabric_point(
                case,
                1,
                FabricRunParams {
                    shards: Some(4),
                    ..params
                },
            );
            // Wall-clock analysis time may differ; everything else is
            // bit-identical across shard counts.
            let strip = |p: &FabricPoint| {
                let mut q = p.clone();
                for e in &mut q.events {
                    e.analysis_ns = 0;
                }
                q
            };
            assert_eq!(strip(&p1), strip(&p4), "{case:?} diverged across shards");
        }
    }

    /// The ghops-only Dally discipline end to end: the manager calls the
    /// *intact* dragonfly `stranded` (hop-minimal tie paths outrun the
    /// 3-VC ladder), every kill stays quarantined with the fabric
    /// untouched, and the live network wedges exactly as that verdict
    /// predicts — with zero packets lost and zero model violations.
    #[test]
    fn dally_ugal_quarantine_is_pinned_online() {
        let params = FabricRunParams {
            warmup: 200,
            inject: 800,
            drain_cap: 50_000,
            shards: Some(1),
        };
        let p = run_fabric_point(FabricCase::DflyUgalDally, 1, params);
        assert_eq!(p.initial_verdict, FabricVerdict::Stranded);
        assert!(p.passes());
        assert!(!p.drained, "stranding should wedge the drain, as predicted");
        assert!(p.packets_delivered < p.packets_created);
        assert_eq!(
            p.admitted, 0,
            "no kill may be admitted on a stranded fabric"
        );
        assert!(p.quarantined > 0);
        assert_eq!(p.links_killed, 0, "quarantine must leave the fabric intact");
        assert!(p.model_violations.is_empty());
    }

    #[test]
    fn campaign_json_shape() {
        let params = FabricRunParams {
            warmup: 100,
            inject: 400,
            drain_cap: 50_000,
            shards: Some(1),
        };
        let p = run_fabric_point(FabricCase::MeshUpDown, 1, params);
        let doc = fabric_campaign_json(&[p], true).to_string();
        assert!(doc.contains("\"name\":\"fabric_campaign\""));
        assert!(doc.contains("\"verdict\":\"deadlock_free\""));
        assert!(doc.contains("\"targets_rewalked\""));
    }
}
