//! Emission of the static verification matrix (`spin-verify`) as the
//! golden `results/verify_matrix.json` record CI diffs on every build.
//!
//! The analysis itself lives in `spin-verify`; this module owns the fan-out
//! over the standard configurations and the JSON shape. Each configuration
//! is analysed independently, so the matrix parallelises over the same
//! thread pool the sweep runner uses — and because the analysis is a
//! deterministic walk (no RNG, fixed iteration order) the emitted document
//! is byte-identical at every thread count.

use crate::json::{self, Json};
use crate::parallel_map_with_threads;
use spin_verify::{standard_configs, ConfigReport, DEFAULT_RING_CAP};

/// Analyses every configuration of [`standard_configs`] on `threads`
/// worker threads, preserving matrix order.
pub fn matrix_reports(threads: usize) -> Vec<ConfigReport> {
    let configs = standard_configs();
    parallel_map_with_threads(&configs, threads, spin_verify::MatrixConfig::report)
}

/// The full `verify_matrix.json` document for a set of reports.
pub fn matrix_json(reports: &[ConfigReport]) -> Json {
    json::obj(vec![
        ("experiment", "verify_matrix".into()),
        ("ring_cap", Json::UInt(DEFAULT_RING_CAP as u64)),
        (
            "configs",
            Json::Arr(reports.iter().map(report_json).collect()),
        ),
    ])
}

fn report_json(r: &ConfigReport) -> Json {
    json::obj(vec![
        ("name", r.name.as_str().into()),
        ("topology", r.topology.as_str().into()),
        ("routing", r.routing.as_str().into()),
        ("num_vcs", Json::UInt(u64::from(r.num_vcs))),
        ("misroute_bound", Json::UInt(u64::from(r.misroute_bound))),
        ("classification", r.classification.as_str().into()),
        ("channels", Json::UInt(r.channels as u64)),
        ("dependencies", Json::UInt(r.dependencies as u64)),
        ("rings_enumerated", Json::UInt(r.rings_enumerated as u64)),
        ("rings_truncated", r.rings_truncated.into()),
        (
            "girth",
            r.girth.map_or(Json::Null, |g| Json::UInt(g as u64)),
        ),
        (
            "max_spin_bound",
            r.max_spin_bound.map_or(Json::Null, Json::UInt),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_keeps_matrix_order_and_nulls_df_fields() {
        let reports = vec![
            ConfigReport {
                name: "mesh4x4/xy/1vc".into(),
                topology: "mesh4x4".into(),
                routing: "xy".into(),
                num_vcs: 1,
                misroute_bound: 0,
                classification: "deadlock_free".into(),
                channels: 10,
                dependencies: 12,
                rings_enumerated: 0,
                rings_truncated: false,
                girth: None,
                max_spin_bound: None,
            },
            ConfigReport {
                name: "torus4x4/xy/1vc".into(),
                topology: "torus4x4".into(),
                routing: "xy".into(),
                num_vcs: 1,
                misroute_bound: 0,
                classification: "recovery_required".into(),
                channels: 20,
                dependencies: 40,
                rings_enumerated: 8,
                rings_truncated: false,
                girth: Some(4),
                max_spin_bound: Some(3),
            },
        ];
        let s = matrix_json(&reports).to_string();
        let mesh = s.find("mesh4x4/xy/1vc").expect("first config present");
        let torus = s.find("torus4x4/xy/1vc").expect("second config present");
        assert!(mesh < torus, "configs must keep matrix order");
        assert!(s.contains(r#""girth":null"#));
        assert!(s.contains(r#""girth":4"#));
        assert!(s.contains(r#""max_spin_bound":3"#));
    }
}
