//! The runtime fault-injection campaign: live link kills under load,
//! degraded-mode rerouting, and exact packet accounting.
//!
//! Each campaign point runs one network (8x8 mesh with FAvORS + SPIN, or a
//! 64-node dragonfly with UGAL + SPIN) through warmup, then a measured
//! injection window during which a seed-driven [`FaultPlan`] kills links
//! mid-run, then a full drain. A point passes when the network drains and
//! every created packet is either delivered or explicitly dropped-by-fault
//! (it was physically astride a killed link — see `docs/FAULTS.md`); any
//! silent loss or wedge fails the point, and the `fault_campaign` binary
//! turns that into a nonzero exit for CI.
//!
//! Every point is an independent, deterministically seeded simulation, so
//! the campaign fans out over [`parallel_map_with_threads`] and its output
//! is identical at any thread count (pinned by the determinism suite).

use crate::json::{arr, obj, Json};
use crate::parallel_map_with_threads;
use spin_core::SpinConfig;
use spin_routing::{FavorsMinimal, Routing, Ugal};
use spin_sim::{FaultPlan, Network, NetworkBuilder, SimConfig};
use spin_topology::Topology;
use spin_traffic::{Pattern, StopAfter, SyntheticConfig, SyntheticTraffic};
use spin_types::Cycle;

/// Time structure of one campaign point.
#[derive(Debug, Clone, Copy)]
pub struct FaultRunParams {
    /// Warmup cycles before the measurement window starts.
    pub warmup: Cycle,
    /// Injection cycles after warmup; kills land inside this window.
    pub inject: Cycle,
    /// Drain budget after the traffic stops. A network that cannot empty
    /// within this many cycles counts as wedged.
    pub drain_cap: Cycle,
}

impl FaultRunParams {
    /// Campaign scale: paper-shaped by default, smoke-sized with `quick`.
    pub fn new(quick: bool) -> Self {
        if quick {
            FaultRunParams {
                warmup: 500,
                inject: 1_500,
                drain_cap: 50_000,
            }
        } else {
            FaultRunParams {
                warmup: 1_000,
                inject: 4_000,
                drain_cap: 200_000,
            }
        }
    }
}

/// One measured campaign point.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPoint {
    /// Topology label (`mesh8x8` / `dfly64`).
    pub topo: String,
    /// Routing label.
    pub routing: String,
    /// Link kills scheduled by the plan.
    pub faults_scheduled: usize,
    /// Seed of both the traffic and the fault schedule.
    pub seed: u64,
    /// Kills actually applied.
    pub links_killed: u64,
    /// Kills rejected (they would have disconnected the network).
    pub kills_rejected: u64,
    /// Packets created by the source.
    pub packets_created: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Packets dropped because they were astride a killed link.
    pub packets_dropped: u64,
    /// Packets torn off a dead link and re-routed in place.
    pub packets_rerouted: u64,
    /// Average end-to-end latency (cycles) over the faulted window.
    pub avg_latency: f64,
    /// SPIN recoveries (spins) over the whole run.
    pub spins: u64,
    /// The network emptied within the drain budget.
    pub drained: bool,
}

impl FaultPoint {
    /// The campaign invariant: the run drained and every packet is
    /// accounted for — delivered, or explicitly dropped by a fault.
    pub fn fully_accounted(&self) -> bool {
        self.drained && self.packets_created == self.packets_delivered + self.packets_dropped
    }

    /// Delivered fraction of the packets a fault did not destroy
    /// (exactly 1.0 for a passing point).
    pub fn delivered_fraction(&self) -> f64 {
        let survivors = self.packets_created - self.packets_dropped;
        if survivors == 0 {
            1.0
        } else {
            self.packets_delivered as f64 / survivors as f64
        }
    }
}

/// One campaign case: a topology/routing pair at a fixed injection rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCase {
    /// 8x8 mesh, FAvORS-Min fully adaptive, SPIN, uniform random.
    Mesh8x8,
    /// 64-node dragonfly (p=2, a=4, h=2, g=8), UGAL free-VC, SPIN.
    Dfly64,
}

impl FaultCase {
    fn label(self) -> (&'static str, &'static str) {
        match self {
            FaultCase::Mesh8x8 => ("mesh8x8", "favors_min_1vc"),
            FaultCase::Dfly64 => ("dfly64", "ugal_3vc_spin"),
        }
    }

    fn topology(self) -> Topology {
        match self {
            FaultCase::Mesh8x8 => Topology::mesh(8, 8),
            FaultCase::Dfly64 => Topology::dragonfly(2, 4, 2, 8),
        }
    }

    fn routing(self) -> Box<dyn Routing> {
        match self {
            FaultCase::Mesh8x8 => Box::new(FavorsMinimal),
            FaultCase::Dfly64 => Box::new(Ugal::with_spin()),
        }
    }

    fn vcs(self) -> u8 {
        match self {
            FaultCase::Mesh8x8 => 1,
            FaultCase::Dfly64 => 3,
        }
    }

    fn rate(self) -> f64 {
        // Below each design's saturation knee: the campaign measures
        // degraded-mode delivery after kills, and a network already past
        // saturation cannot drain inside any reasonable budget even
        // fault-free.
        match self {
            FaultCase::Mesh8x8 => 0.12,
            FaultCase::Dfly64 => 0.10,
        }
    }
}

/// Builds the network of one campaign point: `faults` seed-driven kills
/// scheduled inside the injection window, traffic silenced at its end so
/// the drain phase can verify exact conservation.
pub fn build_fault_net(
    case: FaultCase,
    faults: usize,
    seed: u64,
    params: FaultRunParams,
) -> Network {
    let topo = case.topology();
    let stop_at = params.warmup + params.inject;
    let plan = if faults == 0 {
        FaultPlan::new()
    } else {
        // Kills spread over the first three quarters of the injection
        // window: rerouted traffic still runs long enough to measure.
        let lo = params.warmup + params.inject / 8;
        let hi = params.warmup + (params.inject / 4) * 3;
        FaultPlan::random_kills(&topo, faults, (lo, hi), None, seed ^ 0xfau64)
    };
    let traffic = StopAfter::new(
        SyntheticTraffic::new(
            SyntheticConfig::new(Pattern::UniformRandom, case.rate()),
            &topo,
            seed,
        ),
        stop_at,
    );
    NetworkBuilder::new(topo)
        .config(SimConfig {
            vnets: 3,
            vcs_per_vnet: case.vcs(),
            seed,
            ..SimConfig::default()
        })
        .routing_box(case.routing())
        .traffic(traffic)
        .spin(SpinConfig::default())
        .faults(plan)
        .build()
}

/// Runs one campaign point to completion and measures it.
pub fn run_fault_point(
    case: FaultCase,
    faults: usize,
    seed: u64,
    params: FaultRunParams,
) -> FaultPoint {
    let mut net = build_fault_net(case, faults, seed, params);
    net.run(params.warmup);
    net.reset_measurement();
    net.run(params.inject);
    let drained = net.drain(params.drain_cap);
    let s = net.stats();
    let (topo, routing) = case.label();
    FaultPoint {
        topo: topo.to_string(),
        routing: routing.to_string(),
        faults_scheduled: faults,
        seed,
        links_killed: s.links_killed,
        kills_rejected: s.link_kills_rejected,
        packets_created: s.packets_created,
        packets_delivered: s.packets_delivered,
        packets_dropped: s.packets_dropped_by_fault,
        packets_rerouted: s.packets_rerouted_by_fault,
        avg_latency: s.avg_total_latency(),
        spins: s.spins,
        drained,
    }
}

/// The full campaign grid: both cases x failure counts x seeds, fanned
/// out over `threads` workers. Output order (and content) is independent
/// of the thread count.
pub fn run_campaign_with_threads(quick: bool, threads: usize) -> Vec<FaultPoint> {
    let params = FaultRunParams::new(quick);
    let fault_counts: &[usize] = if quick { &[0, 2] } else { &[0, 1, 2, 4] };
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2] };
    let grid: Vec<(FaultCase, usize, u64)> = [FaultCase::Mesh8x8, FaultCase::Dfly64]
        .into_iter()
        .flat_map(|case| {
            fault_counts
                .iter()
                .flat_map(move |&n| seeds.iter().map(move |&s| (case, n, s)))
        })
        .collect();
    parallel_map_with_threads(&grid, threads, |&(case, n, s)| {
        run_fault_point(case, n, s, params)
    })
}

/// Serialises campaign points as the `results/fault_campaign.json`
/// document (field order fixed, so the file is byte-deterministic).
pub fn campaign_json(points: &[FaultPoint], quick: bool) -> Json {
    let rows = points
        .iter()
        .map(|p| {
            obj(vec![
                ("topo", p.topo.as_str().into()),
                ("routing", p.routing.as_str().into()),
                ("faults_scheduled", Json::UInt(p.faults_scheduled as u64)),
                ("seed", Json::UInt(p.seed)),
                ("links_killed", Json::UInt(p.links_killed)),
                ("kills_rejected", Json::UInt(p.kills_rejected)),
                ("packets_created", Json::UInt(p.packets_created)),
                ("packets_delivered", Json::UInt(p.packets_delivered)),
                ("packets_dropped_by_fault", Json::UInt(p.packets_dropped)),
                ("packets_rerouted_by_fault", Json::UInt(p.packets_rerouted)),
                ("delivered_fraction", Json::Num(p.delivered_fraction())),
                ("avg_latency", Json::Num(p.avg_latency)),
                ("spins", Json::UInt(p.spins)),
                ("drained", Json::Bool(p.drained)),
            ])
        })
        .collect();
    obj(vec![
        ("name", "fault_campaign".into()),
        ("quick", Json::Bool(quick)),
        ("points", arr(rows)),
    ])
}
